//! # bpred — correlation and aliasing in dynamic branch predictors
//!
//! A trace-driven branch-prediction simulation library reproducing
//! *Sechrest, Lee & Mudge, "Correlation and Aliasing in Dynamic Branch
//! Predictors" (ISCA 1996)*.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`trace`] — branch records, traces, formats, and statistics;
//! * [`workloads`] — synthetic benchmark models calibrated to the paper's
//!   SPECint92 and IBS-Ultrix characterizations;
//! * [`core`] — the predictor library (address-indexed, GAg, GAs, gshare,
//!   path-based, PAg/PAs, combining) with aliasing instrumentation;
//! * [`sim`] — the simulation engine, configuration sweeps, and the
//!   drivers that regenerate each table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use bpred::core::{BranchPredictor, Gshare};
//! use bpred::sim::Simulator;
//! use bpred::workloads::suite;
//!
//! // Build the espresso-like workload model and a 1024-counter gshare
//! // predictor (8 history bits XORed into the row index, 2 column bits).
//! let trace = suite::espresso().scaled(20_000).trace(42);
//! let mut predictor = Gshare::new(8, 2);
//! let result = Simulator::new().run(&mut predictor, &trace);
//! println!("misprediction rate: {:.2}%", 100.0 * result.misprediction_rate());
//! assert!(result.misprediction_rate() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bpred_core as core;
pub use bpred_sim as sim;
pub use bpred_trace as trace;
pub use bpred_workloads as workloads;
