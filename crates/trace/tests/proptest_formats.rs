//! Property tests: serialization round-trips and statistics
//! invariants over arbitrary traces.

use proptest::prelude::*;

use bpred_trace::stats::{BranchProfile, TraceStats};
use bpred_trace::{
    binfmt, textfmt, BranchKind, BranchRecord, DecodeTraceError, Outcome, ParseTraceErrorKind,
    Trace,
};

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

prop_compose! {
    fn arb_record()(
        pc in 0u64..=0xFFFF_FFFF_FFFFu64,
        target in 0u64..=0xFFFF_FFFF_FFFFu64,
        kind in arb_kind(),
        taken in any::<bool>(),
    ) -> BranchRecord {
        BranchRecord::new(pc, target, kind, Outcome::from(taken))
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_record(), 0..200).prop_map(Trace::from_records)
}

proptest! {
    #[test]
    fn binary_round_trip(trace in arb_trace()) {
        let decoded = binfmt::decode(&binfmt::encode(&trace)).expect("decode");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn text_round_trip(trace in arb_trace()) {
        let parsed = textfmt::parse(&textfmt::emit(&trace)).expect("parse");
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Corrupt input must produce Err, never a panic.
        let _ = binfmt::decode(&bytes);
    }

    #[test]
    fn decode_survives_truncation(trace in arb_trace(), cut in 0usize..64) {
        let bytes = binfmt::encode(&trace);
        let keep = bytes.len().saturating_sub(cut);
        let _ = binfmt::decode(&bytes[..keep]);
    }

    // --- corrupt inputs must surface the matching error variant ---

    #[test]
    fn truncated_record_bytes_report_truncated(
        trace in prop::collection::vec(arb_record(), 1..100).prop_map(Trace::from_records),
        cut in 1usize..32,
    ) {
        let bytes = binfmt::encode(&trace);
        // Keep the 16-byte header intact; cut into the record bytes.
        let keep = bytes.len().saturating_sub(cut).max(16);
        match binfmt::decode(&bytes[..keep]) {
            Err(DecodeTraceError::Truncated { decoded, expected }) => {
                prop_assert!(decoded < expected);
                prop_assert_eq!(expected, trace.len() as u64);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn corrupted_magic_reports_bad_magic(trace in arb_trace(), pos in 0usize..4, flip in 1u8..=255) {
        let mut bytes = binfmt::encode(&trace);
        bytes[pos] ^= flip;
        prop_assert_eq!(binfmt::decode(&bytes), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn short_input_reports_bad_magic(bytes in prop::collection::vec(any::<u8>(), 0..16)) {
        prop_assert_eq!(binfmt::decode(&bytes), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn unknown_version_reports_unsupported(trace in arb_trace(), version in 2u16..1000) {
        let mut bytes = binfmt::encode(&trace);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            binfmt::decode(&bytes),
            Err(DecodeTraceError::UnsupportedVersion { found: version })
        );
    }

    #[test]
    fn reserved_tag_bits_report_bad_tag(
        trace in prop::collection::vec(arb_record(), 1..100).prop_map(Trace::from_records),
        garbage in 0x10u8..=0xF0,
    ) {
        let mut bytes = binfmt::encode(&trace);
        // Byte 16 is the first record's tag; bits above taken<<3 are
        // reserved and must be rejected, not decoded.
        bytes[16] |= garbage & 0xF0;
        prop_assume!(bytes[16] & 0xF0 != 0);
        match binfmt::decode(&bytes) {
            Err(DecodeTraceError::BadTag { tag, index }) => {
                prop_assert_eq!(tag, bytes[16]);
                prop_assert_eq!(index, 0);
            }
            other => prop_assert!(false, "expected BadTag, got {:?}", other),
        }
    }

    #[test]
    fn wrong_field_count_reports_line_and_count(
        trace in arb_trace(),
        extra in 1usize..8,
    ) {
        prop_assume!(extra != 4);
        let mut text = textfmt::emit(&trace);
        text.push_str(&"f ".repeat(extra));
        let err = textfmt::parse(&text).expect_err("bad field count");
        prop_assert_eq!(err.line, trace.len() + 1);
        prop_assert_eq!(err.kind, ParseTraceErrorKind::FieldCount { found: extra });
    }

    #[test]
    fn non_hex_address_reports_bad_address(trace in arb_trace(), which in 0usize..2) {
        let mut text = textfmt::emit(&trace);
        text.push_str(if which == 0 { "xyz 20 C T" } else { "10 xyz C T" });
        let err = textfmt::parse(&text).expect_err("bad address");
        prop_assert_eq!(err.line, trace.len() + 1);
        prop_assert_eq!(
            err.kind,
            ParseTraceErrorKind::BadAddress { field: "xyz".to_owned() }
        );
    }

    #[test]
    fn unknown_kind_mnemonic_reports_bad_kind(
        trace in arb_trace(),
        // Anything outside the C/J/L/R/I mnemonic set.
        c in prop::sample::select("ABDEFGHKMOPQSUVWXYZ".chars().collect::<Vec<char>>()),
    ) {
        let mut text = textfmt::emit(&trace);
        text.push_str(&format!("10 20 {c} T"));
        let err = textfmt::parse(&text).expect_err("bad kind");
        prop_assert_eq!(err.line, trace.len() + 1);
        prop_assert_eq!(err.kind, ParseTraceErrorKind::BadKind { field: c.to_string() });
    }

    #[test]
    fn unknown_outcome_mnemonic_reports_bad_outcome(
        trace in arb_trace(),
        // Anything outside the T/N outcome set.
        c in prop::sample::select("ABCDEFGHIJKLMOPQRSUVWXYZ".chars().collect::<Vec<char>>()),
    ) {
        let mut text = textfmt::emit(&trace);
        text.push_str(&format!("10 20 C {c}"));
        let err = textfmt::parse(&text).expect_err("bad outcome");
        prop_assert_eq!(err.line, trace.len() + 1);
        prop_assert_eq!(err.kind, ParseTraceErrorKind::BadOutcome { field: c.to_string() });
    }

    #[test]
    fn stats_counts_are_consistent(trace in arb_trace()) {
        let stats = TraceStats::measure(&trace);
        prop_assert_eq!(stats.total_records, trace.len());
        prop_assert_eq!(stats.dynamic_conditionals as usize, trace.conditional_len());
        prop_assert!(stats.static_conditionals <= trace.conditional_len());
        prop_assert!((0.0..=1.0).contains(&stats.taken_rate));
        prop_assert!((0.0..=1.0).contains(&stats.highly_biased_fraction));
    }

    #[test]
    fn coverage_buckets_partition_statics(trace in arb_trace()) {
        let stats = TraceStats::measure(&trace);
        prop_assert_eq!(stats.coverage.total(), stats.static_conditionals);
    }

    #[test]
    fn static_for_fraction_is_monotone(trace in arb_trace()) {
        let profile = BranchProfile::measure(&trace);
        let mut previous = 0usize;
        for pct in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let n = profile.static_for_fraction(pct);
            prop_assert!(n >= previous, "{pct}: {n} < {previous}");
            previous = n;
        }
        prop_assert!(previous <= profile.static_conditionals());
    }

    #[test]
    fn profile_execution_counts_sum_to_dynamic(trace in arb_trace()) {
        let profile = BranchProfile::measure(&trace);
        let total: u64 = profile.iter().map(|(_, c)| c.executions).sum();
        prop_assert_eq!(total, profile.dynamic_conditionals());
        for (_, counts) in profile.iter() {
            prop_assert!(counts.taken <= counts.executions);
            prop_assert!((0.5..=1.0).contains(&counts.bias()));
        }
    }

    #[test]
    fn truncation_is_a_prefix(trace in arb_trace(), n in 0usize..250) {
        let head = trace.truncated(n);
        prop_assert_eq!(head.len(), n.min(trace.len()));
        for (i, r) in head.iter().enumerate() {
            prop_assert_eq!(r, &trace[i]);
        }
    }
}
