//! Property tests: serialization round-trips and statistics
//! invariants over arbitrary traces.

use proptest::prelude::*;

use bpred_trace::stats::{BranchProfile, TraceStats};
use bpred_trace::{binfmt, textfmt, BranchKind, BranchRecord, Outcome, Trace};

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

prop_compose! {
    fn arb_record()(
        pc in 0u64..=0xFFFF_FFFF_FFFFu64,
        target in 0u64..=0xFFFF_FFFF_FFFFu64,
        kind in arb_kind(),
        taken in any::<bool>(),
    ) -> BranchRecord {
        BranchRecord::new(pc, target, kind, Outcome::from(taken))
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_record(), 0..200).prop_map(Trace::from_records)
}

proptest! {
    #[test]
    fn binary_round_trip(trace in arb_trace()) {
        let decoded = binfmt::decode(&binfmt::encode(&trace)).expect("decode");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn text_round_trip(trace in arb_trace()) {
        let parsed = textfmt::parse(&textfmt::emit(&trace)).expect("parse");
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Corrupt input must produce Err, never a panic.
        let _ = binfmt::decode(&bytes);
    }

    #[test]
    fn decode_survives_truncation(trace in arb_trace(), cut in 0usize..64) {
        let bytes = binfmt::encode(&trace);
        let keep = bytes.len().saturating_sub(cut);
        let _ = binfmt::decode(&bytes[..keep]);
    }

    #[test]
    fn stats_counts_are_consistent(trace in arb_trace()) {
        let stats = TraceStats::measure(&trace);
        prop_assert_eq!(stats.total_records, trace.len());
        prop_assert_eq!(stats.dynamic_conditionals as usize, trace.conditional_len());
        prop_assert!(stats.static_conditionals <= trace.conditional_len());
        prop_assert!((0.0..=1.0).contains(&stats.taken_rate));
        prop_assert!((0.0..=1.0).contains(&stats.highly_biased_fraction));
    }

    #[test]
    fn coverage_buckets_partition_statics(trace in arb_trace()) {
        let stats = TraceStats::measure(&trace);
        prop_assert_eq!(stats.coverage.total(), stats.static_conditionals);
    }

    #[test]
    fn static_for_fraction_is_monotone(trace in arb_trace()) {
        let profile = BranchProfile::measure(&trace);
        let mut previous = 0usize;
        for pct in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let n = profile.static_for_fraction(pct);
            prop_assert!(n >= previous, "{pct}: {n} < {previous}");
            previous = n;
        }
        prop_assert!(previous <= profile.static_conditionals());
    }

    #[test]
    fn profile_execution_counts_sum_to_dynamic(trace in arb_trace()) {
        let profile = BranchProfile::measure(&trace);
        let total: u64 = profile.iter().map(|(_, c)| c.executions).sum();
        prop_assert_eq!(total, profile.dynamic_conditionals());
        for (_, counts) in profile.iter() {
            prop_assert!(counts.taken <= counts.executions);
            prop_assert!((0.5..=1.0).contains(&counts.bias()));
        }
    }

    #[test]
    fn truncation_is_a_prefix(trace in arb_trace(), n in 0usize..250) {
        let head = trace.truncated(n);
        prop_assert_eq!(head.len(), n.min(trace.len()));
        for (i, r) in head.iter().enumerate() {
            prop_assert_eq!(r, &trace[i]);
        }
    }
}
