//! Workload characterization.
//!
//! These statistics mirror the benchmark-characterization tables of
//! Sechrest, Lee & Mudge (ISCA 1996): Table 1 reports, per benchmark, the
//! dynamic conditional-branch count, the static conditional-branch count,
//! and the number of static branches that together contribute 90% of the
//! dynamic instances; Table 2 breaks the dynamic instances into coverage
//! buckets (the branches supplying the first 50%, the next 40%, the next
//! 9%, and the remaining 1%).
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{stats::TraceStats, BranchRecord, Outcome, Trace};
//!
//! // One hot branch executed 90 times, ten cold ones once each.
//! let mut trace = Trace::new();
//! for _ in 0..90 {
//!     trace.push(BranchRecord::conditional(0x100, 0x80, Outcome::Taken));
//! }
//! for i in 0..10u64 {
//!     trace.push(BranchRecord::conditional(0x200 + 4 * i, 0x80, Outcome::NotTaken));
//! }
//! let stats = TraceStats::measure(&trace);
//! assert_eq!(stats.static_conditionals, 11);
//! assert_eq!(stats.static_for_fraction(0.5), 1);
//! ```

use std::collections::HashMap;

use crate::{Outcome, Trace};

/// Per-static-branch execution profile: how often each distinct branch
/// address executed and how often it was taken.
///
/// The profile is the intermediate result behind [`TraceStats`]; it is
/// exposed because workload calibration and aliasing analyses want the
/// raw per-branch data (C-INTERMEDIATE).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchProfile {
    counts: HashMap<u64, BranchCounts>,
    dynamic_conditionals: u64,
}

/// Execution and taken counts for one static branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounts {
    /// Dynamic executions of this branch.
    pub executions: u64,
    /// Executions resolved taken.
    pub taken: u64,
}

impl BranchCounts {
    /// Fraction of executions that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }

    /// Bias towards the dominant direction, in `[0.5, 1.0]`.
    ///
    /// A branch that is always taken or never taken has bias 1.0; a
    /// 50/50 branch has bias 0.5.
    pub fn bias(&self) -> f64 {
        let t = self.taken_rate();
        t.max(1.0 - t)
    }
}

impl BranchProfile {
    /// Profiles the conditional branches of a trace.
    pub fn measure(trace: &Trace) -> Self {
        let mut counts: HashMap<u64, BranchCounts> = HashMap::new();
        let mut dynamic = 0u64;
        for r in trace.iter().filter(|r| r.is_conditional()) {
            dynamic += 1;
            let entry = counts.entry(r.pc).or_default();
            entry.executions += 1;
            if r.outcome == Outcome::Taken {
                entry.taken += 1;
            }
        }
        BranchProfile {
            counts,
            dynamic_conditionals: dynamic,
        }
    }

    /// Number of distinct conditional branch addresses.
    pub fn static_conditionals(&self) -> usize {
        self.counts.len()
    }

    /// Total dynamic conditional branches profiled.
    pub fn dynamic_conditionals(&self) -> u64 {
        self.dynamic_conditionals
    }

    /// Counts for one branch address, if it executed.
    pub fn get(&self, pc: u64) -> Option<BranchCounts> {
        self.counts.get(&pc).copied()
    }

    /// Iterates over `(pc, counts)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, BranchCounts)> + '_ {
        self.counts.iter().map(|(&pc, &c)| (pc, c))
    }

    /// Execution counts sorted descending — the basis for coverage
    /// bucket computations.
    pub fn sorted_executions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.counts.values().map(|c| c.executions).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The smallest number of static branches whose combined executions
    /// reach `fraction` of all dynamic conditional instances.
    ///
    /// `fraction` is clamped to `[0, 1]`. Returns 0 for an empty profile.
    pub fn static_for_fraction(&self, fraction: f64) -> usize {
        let need = (self.dynamic_conditionals as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
        if need == 0 {
            return 0;
        }
        let mut acc = 0u64;
        for (i, execs) in self.sorted_executions().into_iter().enumerate() {
            acc += execs;
            if acc >= need {
                return i + 1;
            }
        }
        self.counts.len()
    }

    /// Fraction of dynamic conditional instances arising from branches
    /// whose bias is at least `threshold` (e.g. 0.9 for "highly biased").
    pub fn dynamic_fraction_with_bias(&self, threshold: f64) -> f64 {
        if self.dynamic_conditionals == 0 {
            return 0.0;
        }
        let biased: u64 = self
            .counts
            .values()
            .filter(|c| c.bias() >= threshold)
            .map(|c| c.executions)
            .sum();
        biased as f64 / self.dynamic_conditionals as f64
    }

    /// Splits the static branches into the paper's Table 2 coverage
    /// buckets.
    pub fn coverage_buckets(&self) -> CoverageBuckets {
        let b50 = self.static_for_fraction(0.50);
        let b90 = self.static_for_fraction(0.90);
        let b99 = self.static_for_fraction(0.99);
        let total = self.counts.len();
        CoverageBuckets {
            first_50: b50,
            next_40: b90.saturating_sub(b50),
            next_9: b99.saturating_sub(b90),
            last_1: total.saturating_sub(b99),
        }
    }
}

/// Table 2 of the paper: number of static branches contributing each
/// slice of the dynamic conditional instances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageBuckets {
    /// Branches contributing the first 50% of dynamic instances.
    pub first_50: usize,
    /// Branches contributing the next 40% (to 90% cumulative).
    pub next_40: usize,
    /// Branches contributing the next 9% (to 99% cumulative).
    pub next_9: usize,
    /// Branches contributing the remaining 1%.
    pub last_1: usize,
}

impl CoverageBuckets {
    /// Total static branches across all buckets.
    pub fn total(&self) -> usize {
        self.first_50 + self.next_40 + self.next_9 + self.last_1
    }
}

/// Summary statistics for a trace, in the shape of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total records of any kind.
    pub total_records: usize,
    /// Dynamic conditional branch instances.
    pub dynamic_conditionals: u64,
    /// Distinct conditional branch addresses.
    pub static_conditionals: usize,
    /// Static branches contributing 90% of dynamic instances (Table 1's
    /// rightmost column).
    pub static_for_90: usize,
    /// Fraction of dynamic conditional instances that were taken.
    pub taken_rate: f64,
    /// Fraction of dynamic instances from branches with bias ≥ 0.9.
    pub highly_biased_fraction: f64,
    /// Table 2 coverage buckets.
    pub coverage: CoverageBuckets,
    profile: BranchProfile,
}

impl TraceStats {
    /// Measures a trace.
    pub fn measure(trace: &Trace) -> Self {
        let profile = BranchProfile::measure(trace);
        let taken: u64 = profile.counts.values().map(|c| c.taken).sum();
        let dynamic = profile.dynamic_conditionals();
        TraceStats {
            total_records: trace.len(),
            dynamic_conditionals: dynamic,
            static_conditionals: profile.static_conditionals(),
            static_for_90: profile.static_for_fraction(0.90),
            taken_rate: if dynamic == 0 {
                0.0
            } else {
                taken as f64 / dynamic as f64
            },
            highly_biased_fraction: profile.dynamic_fraction_with_bias(0.9),
            coverage: profile.coverage_buckets(),
            profile,
        }
    }

    /// The per-branch profile the summary was computed from.
    pub fn profile(&self) -> &BranchProfile {
        &self.profile
    }

    /// Shorthand for [`BranchProfile::static_for_fraction`].
    pub fn static_for_fraction(&self, fraction: f64) -> usize {
        self.profile.static_for_fraction(fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchRecord;

    /// hot branch ×90 (always taken), 10 cold branches ×1 (not taken)
    fn skewed() -> Trace {
        let mut t = Trace::new();
        for _ in 0..90 {
            t.push(BranchRecord::conditional(0x100, 0x80, Outcome::Taken));
        }
        for i in 0..10u64 {
            t.push(BranchRecord::conditional(
                0x200 + 4 * i,
                0x80,
                Outcome::NotTaken,
            ));
        }
        t
    }

    #[test]
    fn static_and_dynamic_counts() {
        let s = TraceStats::measure(&skewed());
        assert_eq!(s.total_records, 100);
        assert_eq!(s.dynamic_conditionals, 100);
        assert_eq!(s.static_conditionals, 11);
    }

    #[test]
    fn coverage_fractions() {
        let s = TraceStats::measure(&skewed());
        assert_eq!(s.static_for_fraction(0.5), 1);
        assert_eq!(s.static_for_fraction(0.9), 1);
        // 99% needs 99 executions: hot (90) + 9 cold ones
        assert_eq!(s.static_for_fraction(0.99), 10);
        assert_eq!(s.static_for_fraction(1.0), 11);
        assert_eq!(s.static_for_90, 1);
    }

    #[test]
    fn coverage_buckets_partition_static_branches() {
        let s = TraceStats::measure(&skewed());
        let b = s.coverage;
        assert_eq!(b.total(), s.static_conditionals);
        assert_eq!(b.first_50, 1);
        assert_eq!(b.next_40, 0);
        assert_eq!(b.next_9, 9);
        assert_eq!(b.last_1, 1);
    }

    #[test]
    fn taken_rate_and_bias() {
        let s = TraceStats::measure(&skewed());
        assert!((s.taken_rate - 0.9).abs() < 1e-12);
        // every branch here is perfectly biased
        assert!((s.highly_biased_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bias_of_mixed_branch() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x40, 0x20, Outcome::from(i < 3)));
        }
        let p = BranchProfile::measure(&t);
        let c = p.get(0x40).unwrap();
        assert!((c.taken_rate() - 0.3).abs() < 1e-12);
        assert!((c.bias() - 0.7).abs() < 1e-12);
        assert!((p.dynamic_fraction_with_bias(0.9)).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let s = TraceStats::measure(&Trace::new());
        assert_eq!(s.dynamic_conditionals, 0);
        assert_eq!(s.static_conditionals, 0);
        assert_eq!(s.taken_rate, 0.0);
        assert_eq!(s.coverage.total(), 0);
        assert_eq!(s.static_for_fraction(0.5), 0);
    }

    #[test]
    fn non_conditionals_are_ignored_by_profile() {
        let mut t = skewed();
        t.push(BranchRecord::jump(0x900, 0x100));
        let s = TraceStats::measure(&t);
        assert_eq!(s.total_records, 101);
        assert_eq!(s.dynamic_conditionals, 100);
        assert_eq!(s.static_conditionals, 11);
    }

    #[test]
    fn sorted_executions_is_descending() {
        let p = BranchProfile::measure(&skewed());
        let v = p.sorted_executions();
        assert_eq!(v[0], 90);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }
}
