use std::fmt;
use std::ops::Not;

/// The resolved direction of a conditional branch.
///
/// `Outcome` is deliberately a two-variant enum rather than a bare `bool`
/// so that call sites read unambiguously (`Outcome::Taken` instead of
/// `true`), per the custom-type argument convention. Cheap conversions to
/// and from `bool` are provided for predictor arithmetic.
///
/// # Examples
///
/// ```
/// use bpred_trace::Outcome;
///
/// let o = Outcome::Taken;
/// assert!(o.is_taken());
/// assert_eq!(!o, Outcome::NotTaken);
/// assert_eq!(Outcome::from(true), Outcome::Taken);
/// assert_eq!(bool::from(Outcome::NotTaken), false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The branch was not taken (fell through).
    NotTaken,
    /// The branch was taken.
    Taken,
}

impl Outcome {
    /// Returns `true` if the branch was taken.
    ///
    /// ```
    /// # use bpred_trace::Outcome;
    /// assert!(Outcome::Taken.is_taken());
    /// assert!(!Outcome::NotTaken.is_taken());
    /// ```
    #[inline]
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }

    /// Returns `true` if the branch was not taken.
    ///
    /// ```
    /// # use bpred_trace::Outcome;
    /// assert!(Outcome::NotTaken.is_not_taken());
    /// ```
    #[inline]
    pub fn is_not_taken(self) -> bool {
        matches!(self, Outcome::NotTaken)
    }

    /// The outcome as a single history bit: taken = 1, not taken = 0.
    ///
    /// This is the convention used throughout the workspace for history
    /// registers and pattern tables.
    ///
    /// ```
    /// # use bpred_trace::Outcome;
    /// assert_eq!(Outcome::Taken.as_bit(), 1);
    /// assert_eq!(Outcome::NotTaken.as_bit(), 0);
    /// ```
    #[inline]
    pub fn as_bit(self) -> u64 {
        self.is_taken() as u64
    }

    /// Builds an outcome from a history bit; any non-zero value is taken.
    ///
    /// ```
    /// # use bpred_trace::Outcome;
    /// assert_eq!(Outcome::from_bit(1), Outcome::Taken);
    /// assert_eq!(Outcome::from_bit(0), Outcome::NotTaken);
    /// ```
    #[inline]
    pub fn from_bit(bit: u64) -> Self {
        if bit != 0 {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// Single-character mnemonic used by the text trace format:
    /// `'T'` for taken, `'N'` for not taken.
    #[inline]
    pub fn mnemonic(self) -> char {
        match self {
            Outcome::Taken => 'T',
            Outcome::NotTaken => 'N',
        }
    }

    /// Parses the text-format mnemonic produced by [`Outcome::mnemonic`].
    ///
    /// Returns `None` for any character other than `'T'` or `'N'`.
    #[inline]
    pub fn from_mnemonic(c: char) -> Option<Self> {
        match c {
            'T' => Some(Outcome::Taken),
            'N' => Some(Outcome::NotTaken),
            _ => None,
        }
    }
}

impl From<bool> for Outcome {
    #[inline]
    fn from(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }
}

impl From<Outcome> for bool {
    #[inline]
    fn from(o: Outcome) -> bool {
        o.is_taken()
    }
}

impl Not for Outcome {
    type Output = Outcome;

    #[inline]
    fn not(self) -> Outcome {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Taken => f.write_str("taken"),
            Outcome::NotTaken => f.write_str("not-taken"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert!(bool::from(Outcome::from(true)));
        assert!(!bool::from(Outcome::from(false)));
    }

    #[test]
    fn bit_round_trip() {
        for o in [Outcome::Taken, Outcome::NotTaken] {
            assert_eq!(Outcome::from_bit(o.as_bit()), o);
        }
    }

    #[test]
    fn from_bit_accepts_any_nonzero() {
        assert_eq!(Outcome::from_bit(42), Outcome::Taken);
        assert_eq!(Outcome::from_bit(u64::MAX), Outcome::Taken);
    }

    #[test]
    fn negation_is_involutive() {
        for o in [Outcome::Taken, Outcome::NotTaken] {
            assert_eq!(!!o, o);
            assert_ne!(!o, o);
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for o in [Outcome::Taken, Outcome::NotTaken] {
            assert_eq!(Outcome::from_mnemonic(o.mnemonic()), Some(o));
        }
        assert_eq!(Outcome::from_mnemonic('x'), None);
    }

    #[test]
    fn display_is_lowercase_prose() {
        assert_eq!(Outcome::Taken.to_string(), "taken");
        assert_eq!(Outcome::NotTaken.to_string(), "not-taken");
    }

    #[test]
    fn ordering_puts_not_taken_first() {
        assert!(Outcome::NotTaken < Outcome::Taken);
    }
}
