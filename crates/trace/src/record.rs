use std::fmt;

use crate::Outcome;

/// Classification of a dynamic branch instance.
///
/// The ISCA 1996 study predicts *conditional* branches only, but real
/// traces interleave unconditional jumps, calls, and returns; keeping the
/// kind in the record lets the simulation engine skip or specially handle
/// them (for example, path-based predictors shift target bits for every
/// control transfer they observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional direct branch (the object of prediction).
    Conditional,
    /// An unconditional direct jump.
    Unconditional,
    /// A direct function call.
    Call,
    /// A function return (indirect).
    Return,
    /// Any other indirect control transfer.
    Indirect,
}

impl BranchKind {
    /// Returns `true` for the kinds whose direction a conditional-branch
    /// predictor is asked to guess.
    ///
    /// ```
    /// # use bpred_trace::BranchKind;
    /// assert!(BranchKind::Conditional.is_conditional());
    /// assert!(!BranchKind::Call.is_conditional());
    /// ```
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Single-character mnemonic used by the text trace format.
    #[inline]
    pub fn mnemonic(self) -> char {
        match self {
            BranchKind::Conditional => 'C',
            BranchKind::Unconditional => 'J',
            BranchKind::Call => 'L',
            BranchKind::Return => 'R',
            BranchKind::Indirect => 'I',
        }
    }

    /// Parses the mnemonic produced by [`BranchKind::mnemonic`].
    #[inline]
    pub fn from_mnemonic(c: char) -> Option<Self> {
        match c {
            'C' => Some(BranchKind::Conditional),
            'J' => Some(BranchKind::Unconditional),
            'L' => Some(BranchKind::Call),
            'R' => Some(BranchKind::Return),
            'I' => Some(BranchKind::Indirect),
            _ => None,
        }
    }

    /// All kinds, in mnemonic order. Useful for exhaustive tests.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "conditional",
            BranchKind::Unconditional => "unconditional",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
            BranchKind::Indirect => "indirect",
        };
        f.write_str(s)
    }
}

/// One dynamic branch instance in an execution trace.
///
/// Addresses follow MIPS conventions: instructions are 4-byte aligned, so
/// predictors index tables with bits of `pc >> 2`.
///
/// # Examples
///
/// ```
/// use bpred_trace::{BranchRecord, BranchKind, Outcome};
///
/// let r = BranchRecord::conditional(0x0040_01a8, 0x0040_0100, Outcome::Taken);
/// assert_eq!(r.kind, BranchKind::Conditional);
/// assert!(r.is_backward());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Address the branch transfers control to when taken.
    pub target: u64,
    /// Kind of control transfer.
    pub kind: BranchKind,
    /// Resolved direction. Non-conditional kinds are always `Taken`.
    pub outcome: Outcome,
}

impl BranchRecord {
    /// Creates a record of any kind.
    ///
    /// ```
    /// # use bpred_trace::{BranchRecord, BranchKind, Outcome};
    /// let r = BranchRecord::new(0x1000, 0x2000, BranchKind::Call, Outcome::Taken);
    /// assert_eq!(r.target, 0x2000);
    /// ```
    #[inline]
    pub fn new(pc: u64, target: u64, kind: BranchKind, outcome: Outcome) -> Self {
        BranchRecord {
            pc,
            target,
            kind,
            outcome,
        }
    }

    /// Creates a conditional-branch record.
    #[inline]
    pub fn conditional(pc: u64, target: u64, outcome: Outcome) -> Self {
        Self::new(pc, target, BranchKind::Conditional, outcome)
    }

    /// Creates an unconditional-jump record (always taken).
    #[inline]
    pub fn jump(pc: u64, target: u64) -> Self {
        Self::new(pc, target, BranchKind::Unconditional, Outcome::Taken)
    }

    /// Returns `true` if this is a conditional branch, i.e. a prediction
    /// target for the schemes in this workspace.
    #[inline]
    pub fn is_conditional(&self) -> bool {
        self.kind.is_conditional()
    }

    /// Returns `true` if the branch target precedes the branch itself
    /// (a loop-shaped, backward branch).
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.target < self.pc
    }

    /// The word address (`pc >> 2`) from which table index bits are drawn.
    #[inline]
    pub fn word_pc(&self) -> u64 {
        self.pc >> 2
    }
}

impl Default for BranchRecord {
    /// A not-taken conditional branch at address zero; never empty in
    /// `Debug` output and convenient for buffer initialisation.
    fn default() -> Self {
        BranchRecord::conditional(0, 0, Outcome::NotTaken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_mnemonics_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in BranchKind::ALL {
            let c = kind.mnemonic();
            assert!(seen.insert(c), "duplicate mnemonic {c}");
            assert_eq!(BranchKind::from_mnemonic(c), Some(kind));
        }
        assert_eq!(BranchKind::from_mnemonic('?'), None);
    }

    #[test]
    fn conditional_constructor_sets_kind() {
        let r = BranchRecord::conditional(8, 4, Outcome::Taken);
        assert!(r.is_conditional());
        assert!(r.is_backward());
    }

    #[test]
    fn jump_is_always_taken() {
        let r = BranchRecord::jump(0x10, 0x20);
        assert_eq!(r.outcome, Outcome::Taken);
        assert!(!r.is_conditional());
        assert!(!r.is_backward());
    }

    #[test]
    fn word_pc_drops_alignment_bits() {
        let r = BranchRecord::conditional(0x0040_01a8, 0, Outcome::Taken);
        assert_eq!(r.word_pc(), 0x0040_01a8 >> 2);
    }

    #[test]
    fn default_is_harmless() {
        let r = BranchRecord::default();
        assert_eq!(r.pc, 0);
        assert!(r.is_conditional());
        assert_eq!(r.outcome, Outcome::NotTaken);
    }

    #[test]
    fn display_names_are_prose() {
        assert_eq!(BranchKind::Return.to_string(), "return");
        assert_eq!(BranchKind::Conditional.to_string(), "conditional");
    }
}
