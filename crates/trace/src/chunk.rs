//! Structure-of-arrays record chunks.
//!
//! A [`TraceChunk`] holds a fixed-size run of branch records as
//! parallel arrays — branch addresses, taken-targets, and bit-packed
//! outcome/kind metadata words — instead of an array of
//! [`BranchRecord`] structs. The replay engine's inner loop walks the
//! arrays directly: consecutive `pc` loads share cache lines, and the
//! outcome and kind of sixteen records fit in one metadata word, so a
//! chunk of [`TraceChunk::DEFAULT_LEN`] records stays resident in L2
//! while every predictor lane of a sweep shard consumes it.
//!
//! Chunks are also the unit of *sharing*: the chunked sweep pipeline
//! in `bpred-sim` generates (or decodes) each chunk once, wraps it in
//! an `Arc`, and lets every shard worker replay the same chunk
//! sequence, so trace production is paid once per sweep instead of
//! once per shard. Any [`TraceSource`](crate::TraceSource) can be
//! viewed as a chunk sequence through
//! [`TraceSource::chunks`](crate::TraceSource::chunks).
//!
//! # Layout
//!
//! Per record `i`:
//!
//! * `pcs[i]` — branch instruction address;
//! * `targets[i]` — taken-target address;
//! * four bits of `meta[i / 16]` at `4 * (i % 16)` — bit 0 is the
//!   resolved outcome (taken = 1), bits 1–3 the [`BranchKind`] code.
//!
//! The packing is an in-memory layout only, not a persistence format;
//! the on-disk formats stay in [`binfmt`](crate::binfmt) and
//! [`textfmt`](crate::textfmt).
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{BranchRecord, Outcome, TraceChunk};
//!
//! let mut chunk = TraceChunk::with_capacity(4);
//! for i in 0..4 {
//!     chunk.push(&BranchRecord::conditional(0x40 + 4 * i, 0x20, Outcome::Taken));
//! }
//! assert_eq!(chunk.len(), 4);
//! assert_eq!(chunk.record(2).pc, 0x48);
//! assert!(chunk.iter().all(|r| r.outcome.is_taken()));
//! ```

use crate::{BranchKind, BranchRecord, Outcome};

/// Records packed per metadata word (4 bits each in a `u64`).
const RECORDS_PER_META_WORD: usize = 16;
/// Bits of metadata per record: 1 outcome bit + 3 kind bits.
const META_BITS: usize = 4;
/// Mask of one record's metadata field.
const META_MASK: u64 = (1 << META_BITS) - 1;

/// Three-bit code of a [`BranchKind`], the packing used inside
/// metadata words (the kind's index in [`BranchKind::ALL`]).
#[inline]
fn kind_code(kind: BranchKind) -> u64 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

/// Inverse of [`kind_code`].
#[inline]
fn kind_from_code(code: u64) -> BranchKind {
    match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        _ => BranchKind::Indirect,
    }
}

/// A run of branch records in structure-of-arrays layout.
///
/// See the [module docs](self) for the layout and the role chunks play
/// in the sweep pipeline. Chunks grow by [`push`](TraceChunk::push) /
/// [`fill_from`](TraceChunk::fill_from) and are consumed positionally
/// ([`record`](TraceChunk::record)) or sequentially
/// ([`iter`](TraceChunk::iter)); both directions round-trip records
/// bit-exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceChunk {
    /// Branch instruction addresses, one per record.
    pcs: Vec<u64>,
    /// Taken-target addresses, one per record.
    targets: Vec<u64>,
    /// Bit-packed outcome/kind words, sixteen records each.
    meta: Vec<u64>,
}

impl TraceChunk {
    /// Default records per chunk used by the sweep pipeline: at 8 Ki
    /// records a chunk is ~132 KiB of arrays — big enough to amortise
    /// per-chunk dispatch and ring traffic, small enough to stay
    /// cache-resident alongside one predictor's tables.
    pub const DEFAULT_LEN: usize = 8 * 1024;

    /// Records packed per [`meta_words`](TraceChunk::meta_words) word.
    pub const META_RECORDS_PER_WORD: usize = RECORDS_PER_META_WORD;

    /// Metadata bits per record inside a
    /// [`meta_words`](TraceChunk::meta_words) word: the outcome bit
    /// (taken = 1) followed by the three-bit [`BranchKind`] code
    /// (conditional = 0).
    pub const META_BITS_PER_RECORD: usize = META_BITS;

    /// An empty chunk.
    pub fn new() -> Self {
        TraceChunk::default()
    }

    /// An empty chunk with room for `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceChunk {
            pcs: Vec::with_capacity(capacity),
            targets: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity.div_ceil(RECORDS_PER_META_WORD)),
        }
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Removes every record, keeping the allocated capacity — so a
    /// buffer-reusing producer (see
    /// [`TraceSource::chunk_feeder`](crate::TraceSource::chunk_feeder))
    /// refills the same arrays chunk after chunk without touching the
    /// allocator.
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.targets.clear();
        self.meta.clear();
    }

    /// Returns `true` when the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, record: &BranchRecord) {
        let i = self.pcs.len();
        self.pcs.push(record.pc);
        self.targets.push(record.target);
        let bits = record.outcome.as_bit() | (kind_code(record.kind) << 1);
        if i.is_multiple_of(RECORDS_PER_META_WORD) {
            self.meta.push(bits);
        } else {
            let shift = (i % RECORDS_PER_META_WORD) * META_BITS;
            self.meta[i / RECORDS_PER_META_WORD] |= bits << shift;
        }
    }

    /// Drains up to `max` records from `records` into the chunk,
    /// returning how many were taken. The iterator is taken by
    /// mutable reference so a generator can fill chunk after chunk
    /// from one pass; because the parameter is generic, the fill loop
    /// monomorphizes over the concrete iterator — a workload generator
    /// writes straight into the arrays with no boxed per-record call.
    pub fn fill_from<I: Iterator<Item = BranchRecord>>(
        &mut self,
        records: &mut I,
        max: usize,
    ) -> usize {
        let mut taken = 0;
        while taken < max {
            let Some(record) = records.next() else { break };
            self.push(&record);
            taken += 1;
        }
        taken
    }

    /// The branch instruction addresses as a flat slice, one per
    /// record — the raw column record-parallel replay kernels walk.
    #[inline]
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// The taken-target addresses as a flat slice, one per record.
    #[inline]
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// The bit-packed metadata words:
    /// [`META_RECORDS_PER_WORD`](TraceChunk::META_RECORDS_PER_WORD)
    /// records of
    /// [`META_BITS_PER_RECORD`](TraceChunk::META_BITS_PER_RECORD) bits
    /// each, record `i` at bits `4 * (i % 16)` of word `i / 16`, unused
    /// high fields of the final word zero. Exposed so record-parallel
    /// kernels can classify sixteen records per word op (e.g. popcount
    /// the conditional-and-taken fields) instead of decoding records
    /// one at a time.
    #[inline]
    pub fn meta_words(&self) -> &[u64] {
        &self.meta
    }

    /// The metadata bits of record `i` (outcome bit 0, kind code in
    /// bits 1–3).
    #[inline]
    fn meta_bits(&self, i: usize) -> u64 {
        let shift = (i % RECORDS_PER_META_WORD) * META_BITS;
        (self.meta[i / RECORDS_PER_META_WORD] >> shift) & META_MASK
    }

    /// Reassembles record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn record(&self, i: usize) -> BranchRecord {
        let bits = self.meta_bits(i);
        BranchRecord {
            pc: self.pcs[i],
            target: self.targets[i],
            kind: kind_from_code(bits >> 1),
            outcome: Outcome::from_bit(bits & 1),
        }
    }

    /// Returns `true` if record `i` is a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn is_conditional(&self, i: usize) -> bool {
        self.meta_bits(i) >> 1 == kind_code(BranchKind::Conditional)
    }

    /// The resolved outcome of record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn outcome(&self, i: usize) -> Outcome {
        Outcome::from_bit(self.meta_bits(i) & 1)
    }

    /// Iterates the chunk's records in order, walking the parallel
    /// arrays directly (a concrete iterator — no boxing, so replay
    /// loops over it monomorphize).
    pub fn iter(&self) -> ChunkRecords<'_> {
        ChunkRecords {
            pairs: self.pcs.iter().zip(self.targets.iter()),
            meta: self.meta.iter(),
            word: 0,
            in_word: 0,
        }
    }
}

impl<'a> IntoIterator for &'a TraceChunk {
    type Item = BranchRecord;
    type IntoIter = ChunkRecords<'a>;

    fn into_iter(self) -> ChunkRecords<'a> {
        self.iter()
    }
}

impl Extend<BranchRecord> for TraceChunk {
    fn extend<I: IntoIterator<Item = BranchRecord>>(&mut self, iter: I) {
        for record in iter {
            self.push(&record);
        }
    }
}

impl FromIterator<BranchRecord> for TraceChunk {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        let mut chunk = TraceChunk::new();
        chunk.extend(iter);
        chunk
    }
}

/// Sequential iterator over a [`TraceChunk`]'s records.
///
/// Walks the pc/target arrays through a slice zip (no per-record
/// bounds checks) and holds the current metadata word in a register,
/// refilling it once every sixteen records — this is the replay
/// engine's inner-loop decode, so every load it avoids counts.
#[derive(Debug, Clone)]
pub struct ChunkRecords<'a> {
    pairs: std::iter::Zip<std::slice::Iter<'a, u64>, std::slice::Iter<'a, u64>>,
    meta: std::slice::Iter<'a, u64>,
    /// Unconsumed metadata fields of the current word, low field next.
    word: u64,
    /// Records left in `word` before the next refill.
    in_word: u32,
}

impl Iterator for ChunkRecords<'_> {
    type Item = BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<BranchRecord> {
        let (&pc, &target) = self.pairs.next()?;
        if self.in_word == 0 {
            self.word = self.meta.next().copied().unwrap_or(0);
            self.in_word = RECORDS_PER_META_WORD as u32;
        }
        let bits = self.word & META_MASK;
        self.word >>= META_BITS;
        self.in_word -= 1;
        Some(BranchRecord {
            pc,
            target,
            kind: kind_from_code(bits >> 1),
            outcome: Outcome::from_bit(bits & 1),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.pairs.size_hint()
    }
}

impl ExactSizeIterator for ChunkRecords<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Trace, TraceSource};

    fn every_kind() -> Vec<BranchRecord> {
        BranchKind::ALL
            .into_iter()
            .enumerate()
            .flat_map(|(i, kind)| {
                [
                    BranchRecord::new(0x1000 + 4 * i as u64, 0x40, kind, Outcome::Taken),
                    BranchRecord::new(0x2000 + 4 * i as u64, 0x8000, kind, Outcome::NotTaken),
                ]
            })
            .collect()
    }

    #[test]
    fn push_and_record_round_trip_every_kind_and_outcome() {
        let records = every_kind();
        let chunk: TraceChunk = records.iter().copied().collect();
        assert_eq!(chunk.len(), records.len());
        for (i, want) in records.iter().enumerate() {
            assert_eq!(&chunk.record(i), want, "record {i}");
            assert_eq!(chunk.is_conditional(i), want.is_conditional());
            assert_eq!(chunk.outcome(i), want.outcome);
        }
    }

    #[test]
    fn iter_matches_positional_access_across_word_boundaries() {
        // More than one metadata word, not a multiple of sixteen.
        let records: Vec<BranchRecord> = (0..37)
            .map(|i| BranchRecord::conditional(4 * i, 0x10, Outcome::from(i % 3 == 0)))
            .collect();
        let chunk: TraceChunk = records.iter().copied().collect();
        let iterated: Vec<BranchRecord> = chunk.iter().collect();
        assert_eq!(iterated, records);
        assert_eq!(chunk.iter().len(), 37);
    }

    #[test]
    fn fill_from_stops_at_max_and_at_exhaustion() {
        let records = every_kind();
        let mut stream = records.iter().copied();
        let mut chunk = TraceChunk::with_capacity(4);
        assert_eq!(chunk.fill_from(&mut stream, 4), 4);
        assert_eq!(chunk.len(), 4);
        let mut rest = TraceChunk::new();
        assert_eq!(rest.fill_from(&mut stream, 100), records.len() - 4);
        let mut empty = TraceChunk::new();
        assert_eq!(empty.fill_from(&mut stream, 8), 0);
        assert!(empty.is_empty());
        // The two chunks partition the sequence in order.
        let rejoined: Vec<BranchRecord> = chunk.iter().chain(rest.iter()).collect();
        assert_eq!(rejoined, records);
    }

    #[test]
    fn chunked_source_view_round_trips() {
        let trace: Trace = every_kind().into_iter().collect();
        for chunk_len in [1, 3, trace.len() - 1, trace.len(), trace.len() + 1] {
            let rejoined: Vec<BranchRecord> = trace
                .chunks(chunk_len)
                .flat_map(|chunk| chunk.iter().collect::<Vec<_>>())
                .collect();
            assert_eq!(rejoined, trace.records(), "chunk_len {chunk_len}");
            for chunk in trace.chunks(chunk_len) {
                assert!(chunk.len() <= chunk_len);
                assert!(!chunk.is_empty());
            }
        }
    }

    #[test]
    fn raw_columns_match_positional_access() {
        let records = every_kind();
        let chunk: TraceChunk = records.iter().copied().collect();
        assert_eq!(chunk.pcs().len(), records.len());
        assert_eq!(chunk.targets().len(), records.len());
        assert_eq!(
            chunk.meta_words().len(),
            records.len().div_ceil(TraceChunk::META_RECORDS_PER_WORD)
        );
        for (i, want) in records.iter().enumerate() {
            assert_eq!(chunk.pcs()[i], want.pc);
            assert_eq!(chunk.targets()[i], want.target);
            let word = chunk.meta_words()[i / TraceChunk::META_RECORDS_PER_WORD];
            let bits = (word >> ((i % TraceChunk::META_RECORDS_PER_WORD) * META_BITS)) & META_MASK;
            assert_eq!(bits & 1, want.outcome.as_bit());
            assert_eq!(bits >> 1, kind_code(want.kind));
        }
        // Unused high fields of the final metadata word stay zero.
        let tail = records.len() % TraceChunk::META_RECORDS_PER_WORD;
        if tail != 0 {
            let last = *chunk.meta_words().last().unwrap();
            assert_eq!(last >> (tail * META_BITS), 0);
        }
    }

    #[test]
    fn default_len_is_a_power_of_two_of_whole_meta_words() {
        assert_eq!(TraceChunk::DEFAULT_LEN % RECORDS_PER_META_WORD, 0);
        assert!(TraceChunk::DEFAULT_LEN.is_power_of_two());
    }
}
