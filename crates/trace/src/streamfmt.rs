//! Streaming binary trace I/O.
//!
//! [`crate::binfmt`] works on whole in-memory buffers; these types
//! stream the same format incrementally over any `Read`/`Write`, so
//! traces larger than memory (the paper's real traces ran to 1.4B
//! instructions) can be produced and consumed record by record.
//!
//! # Examples
//!
//! ```
//! use bpred_trace::streamfmt::{TraceReader, TraceWriter};
//! use bpred_trace::{BranchRecord, Outcome};
//!
//! let mut buffer = Vec::new();
//! let mut writer = TraceWriter::new(&mut buffer, 3)?;
//! for i in 0..3u64 {
//!     writer.write(&BranchRecord::conditional(0x40 + 4 * i, 0x20, Outcome::Taken))?;
//! }
//! writer.finish()?;
//!
//! let mut reader = TraceReader::new(buffer.as_slice())?;
//! assert_eq!(reader.remaining(), 3);
//! let first = reader.next_record()?.unwrap();
//! assert_eq!(first.pc, 0x40);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{Error, ErrorKind, Read, Write};

use crate::{BranchKind, BranchRecord, Outcome};

const MAGIC: &[u8; 4] = b"BPRT";
const VERSION: u16 = 1;

fn invalid(message: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, message.into())
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn kind_from_code(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

/// Streams records into the binary trace format.
///
/// The record count is part of the header, so it must be declared up
/// front; [`TraceWriter::finish`] verifies the promise was kept.
#[derive(Debug)]
pub struct TraceWriter<W> {
    sink: W,
    declared: u64,
    written: u64,
    prev_pc: i64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header for a trace of exactly `records` records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, records: u64) -> Result<Self, Error> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&0u16.to_le_bytes())?;
        sink.write_all(&records.to_le_bytes())?;
        Ok(TraceWriter {
            sink,
            declared: records,
            written: 0,
            prev_pc: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Fails with [`ErrorKind::InvalidInput`] when more records are
    /// written than declared, and propagates sink errors.
    pub fn write(&mut self, record: &BranchRecord) -> Result<(), Error> {
        if self.written == self.declared {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!("trace declared {} records", self.declared),
            ));
        }
        let tag = kind_code(record.kind) | (u8::from(record.outcome.is_taken()) << 3);
        self.sink.write_all(&[tag])?;
        write_varint(&mut self.sink, zigzag(record.pc as i64 - self.prev_pc))?;
        write_varint(
            &mut self.sink,
            zigzag(record.target as i64 - record.pc as i64),
        )?;
        self.prev_pc = record.pc as i64;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink, verifying the declared count.
    ///
    /// # Errors
    ///
    /// Fails with [`ErrorKind::InvalidInput`] if fewer records were
    /// written than declared.
    pub fn finish(mut self) -> Result<W, Error> {
        if self.written != self.declared {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "trace declared {} records but only {} were written",
                    self.declared, self.written
                ),
            ));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn write_varint<W: Write>(sink: &mut W, mut v: u64) -> Result<(), Error> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return sink.write_all(&[byte]);
        }
        sink.write_all(&[byte | 0x80])?;
    }
}

/// Streams records out of the binary trace format.
#[derive(Debug)]
pub struct TraceReader<R> {
    source: R,
    remaining: u64,
    prev_pc: i64,
    index: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// Fails with [`ErrorKind::InvalidData`] on a bad magic or
    /// unsupported version, and propagates source errors.
    pub fn new(mut source: R) -> Result<Self, Error> {
        let mut header = [0u8; 16];
        source.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(invalid("buffer is not a bpred trace (bad magic)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(invalid(format!(
                "unsupported trace format version {version}"
            )));
        }
        let remaining = u64::from_le_bytes(header[8..16].try_into().expect("eight bytes"));
        Ok(TraceReader {
            source,
            remaining,
            prev_pc: 0,
            index: 0,
        })
    }

    /// Records not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Fails with [`ErrorKind::InvalidData`] on a malformed record and
    /// propagates source errors (including truncation, reported as
    /// [`ErrorKind::UnexpectedEof`]).
    pub fn next_record(&mut self) -> Result<Option<BranchRecord>, Error> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        self.source.read_exact(&mut tag)?;
        let tag = tag[0];
        let kind = kind_from_code(tag & 0x07)
            .filter(|_| tag & !0x0f == 0)
            .ok_or_else(|| invalid(format!("record {} has invalid tag {tag:#04x}", self.index)))?;
        let outcome = Outcome::from(tag & 0x08 != 0);
        let pc_delta = read_varint(&mut self.source)?;
        let target_delta = read_varint(&mut self.source)?;
        let pc = self.prev_pc.wrapping_add(unzigzag(pc_delta));
        let target = pc.wrapping_add(unzigzag(target_delta));
        self.prev_pc = pc;
        self.remaining -= 1;
        self.index += 1;
        Ok(Some(BranchRecord::new(
            pc as u64,
            target as u64,
            kind,
            outcome,
        )))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

fn read_varint<R: Read>(source: &mut R) -> Result<u64, Error> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if shift >= 64 {
            return Err(invalid("varint is longer than 64 bits"));
        }
        let mut byte = [0u8; 1];
        source.read_exact(&mut byte)?;
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binfmt, Trace};

    fn sample() -> Trace {
        (0..200u64)
            .map(|i| {
                BranchRecord::new(
                    0x1000 + 4 * (i % 37),
                    0x2000 + 4 * i,
                    match i % 4 {
                        0 => BranchKind::Conditional,
                        1 => BranchKind::Call,
                        2 => BranchKind::Return,
                        _ => BranchKind::Unconditional,
                    },
                    Outcome::from(i % 3 == 0),
                )
            })
            .collect()
    }

    #[test]
    fn streaming_round_trip() {
        let trace = sample();
        let mut buffer = Vec::new();
        let mut writer = TraceWriter::new(&mut buffer, trace.len() as u64).unwrap();
        for r in trace.iter() {
            writer.write(r).unwrap();
        }
        writer.finish().unwrap();

        let reader = TraceReader::new(buffer.as_slice()).unwrap();
        let records: Result<Vec<BranchRecord>, Error> = reader.collect();
        assert_eq!(Trace::from_records(records.unwrap()), trace);
    }

    #[test]
    fn stream_format_is_identical_to_batch_format() {
        // The streaming writer must produce byte-for-byte what
        // binfmt::encode produces, so the formats interoperate.
        let trace = sample();
        let mut streamed = Vec::new();
        let mut writer = TraceWriter::new(&mut streamed, trace.len() as u64).unwrap();
        for r in trace.iter() {
            writer.write(r).unwrap();
        }
        writer.finish().unwrap();
        assert_eq!(streamed, binfmt::encode(&trace).to_vec());
        // And the streaming reader consumes batch output.
        let reader = TraceReader::new(streamed.as_slice()).unwrap();
        assert_eq!(reader.remaining(), trace.len() as u64);
    }

    #[test]
    fn over_writing_is_rejected() {
        let mut buffer = Vec::new();
        let mut writer = TraceWriter::new(&mut buffer, 1).unwrap();
        writer.write(&BranchRecord::default()).unwrap();
        let err = writer.write(&BranchRecord::default()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn under_writing_is_rejected_at_finish() {
        let mut buffer = Vec::new();
        let writer = TraceWriter::new(&mut buffer, 5).unwrap();
        let err = writer.finish().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        assert!(err.to_string().contains("declared 5"));
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let trace = sample();
        let bytes = binfmt::encode(&trace);
        let cut = &bytes[..bytes.len() / 2];
        let mut reader = TraceReader::new(cut).unwrap();
        let mut last = Ok(None);
        for _ in 0..trace.len() {
            last = reader.next_record();
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.unwrap_err().kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"XXXXxxxxxxxxxxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn iterator_ends_cleanly() {
        let trace = sample();
        let bytes = binfmt::encode(&trace);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut count = 0;
        for result in reader.by_ref() {
            result.unwrap();
            count += 1;
        }
        assert_eq!(count, trace.len());
        assert_eq!(reader.remaining(), 0);
        assert!(reader.next_record().unwrap().is_none());
    }
}
