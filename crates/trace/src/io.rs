//! Trace file I/O.
//!
//! Thin filesystem wrappers over [`crate::binfmt`] and
//! [`crate::textfmt`], choosing the format by file extension: `.bpt`
//! (and anything unrecognised) is the binary format, `.txt`/`.trace`
//! the text format.
//!
//! # Examples
//!
//! ```no_run
//! use bpred_trace::{io, BranchRecord, Outcome, Trace};
//!
//! let trace: Trace = (0..10)
//!     .map(|i| BranchRecord::conditional(0x40 + 4 * i, 0x20, Outcome::Taken))
//!     .collect();
//! io::save("run.bpt", &trace)?;
//! let back = io::load("run.bpt")?;
//! assert_eq!(back, trace);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs;
use std::io::{Error, ErrorKind};
use std::path::Path;

use crate::{binfmt, textfmt, Trace};

fn is_text_path(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("txt") | Some("trace")
    )
}

/// Writes a trace to `path`, in the text format for `.txt`/`.trace`
/// extensions and the binary format otherwise.
///
/// # Errors
///
/// Returns any filesystem error from writing the file.
pub fn save<P: AsRef<Path>>(path: P, trace: &Trace) -> Result<(), Error> {
    let path = path.as_ref();
    if is_text_path(path) {
        fs::write(path, textfmt::emit(trace))
    } else {
        fs::write(path, binfmt::encode(trace))
    }
}

/// Reads a trace from `path`, choosing the decoder by extension.
///
/// # Errors
///
/// Returns filesystem errors as-is; decode/parse failures are
/// reported as [`ErrorKind::InvalidData`] with the underlying format
/// error as the source.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, Error> {
    let path = path.as_ref();
    if is_text_path(path) {
        let text = fs::read_to_string(path)?;
        textfmt::parse(&text).map_err(|e| Error::new(ErrorKind::InvalidData, e))
    } else {
        let bytes = fs::read(path)?;
        binfmt::decode(&bytes).map_err(|e| Error::new(ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchRecord, Outcome};

    fn sample() -> Trace {
        (0..50u64)
            .map(|i| BranchRecord::conditional(0x400 + 4 * i, 0x100, Outcome::from(i % 3 == 0)))
            .collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bpred-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_save_load_round_trip() {
        let path = temp_path("roundtrip.bpt");
        let trace = sample();
        save(&path, &trace).unwrap();
        assert_eq!(load(&path).unwrap(), trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn text_save_load_round_trip() {
        let path = temp_path("roundtrip.txt");
        let trace = sample();
        save(&path, &trace).unwrap();
        // Text files are human-readable.
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.lines().next().unwrap().ends_with("C T"));
        assert_eq!(load(&path).unwrap(), trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_binary_is_invalid_data() {
        let path = temp_path("corrupt.bpt");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load(temp_path("does-not-exist.bpt")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
    }

    #[test]
    fn extension_detection() {
        assert!(is_text_path(Path::new("a.txt")));
        assert!(is_text_path(Path::new("a.trace")));
        assert!(!is_text_path(Path::new("a.bpt")));
        assert!(!is_text_path(Path::new("a")));
    }
}
