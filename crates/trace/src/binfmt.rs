//! Compact binary trace format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   : 4 bytes  b"BPRT"
//! version : u16      currently 1
//! reserved: u16      zero
//! count   : u64      number of records
//! records : count × { tag: u8, pc_delta: zigzag-varint, target_delta: zigzag-varint }
//! ```
//!
//! The tag byte packs the [`BranchKind`] (low 3 bits) and the
//! [`Outcome`] (bit 3). Addresses are delta-encoded: `pc_delta` is the
//! signed difference from the previous record's `pc` (zero for the first
//! record), and `target_delta` is the signed difference from the record's
//! own `pc`. Branches are local in address space, so deltas are small and
//! the LEB128 varints keep typical records at 3–5 bytes.
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{binfmt, BranchRecord, Outcome, Trace};
//!
//! let trace: Trace = (0..100u64)
//!     .map(|i| BranchRecord::conditional(0x1000 + 4 * i, 0x1000, Outcome::from(i % 3 == 0)))
//!     .collect();
//! let bytes = binfmt::encode(&trace);
//! let back = binfmt::decode(&bytes)?;
//! assert_eq!(back, trace);
//! # Ok::<(), bpred_trace::DecodeTraceError>(())
//! ```

use crate::{BranchKind, BranchRecord, DecodeTraceError, Outcome, Trace};

const MAGIC: &[u8; 4] = b"BPRT";
const VERSION: u16 = 1;

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn kind_from_code(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Pops the first byte off the front of `buf`, advancing it.
fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&byte, rest) = buf.split_first()?;
    *buf = rest;
    Some(byte)
}

fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if shift >= 64 {
            return None;
        }
        let byte = get_u8(buf)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encodes a trace into the binary format.
///
/// The returned bytes can be written to disk verbatim and later read
/// back with [`decode`].
pub fn encode(trace: &Trace) -> Vec<u8> {
    // Typical record is ~4 bytes; reserve generously to avoid re-allocation.
    let mut buf = Vec::with_capacity(16 + trace.len() * 6);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    let mut prev_pc = 0i64;
    for r in trace.iter() {
        let tag = kind_code(r.kind) | (u8::from(r.outcome.is_taken()) << 3);
        buf.push(tag);
        put_varint(&mut buf, zigzag(r.pc as i64 - prev_pc));
        put_varint(&mut buf, zigzag(r.target as i64 - r.pc as i64));
        prev_pc = r.pc as i64;
    }
    buf
}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if the magic or version is wrong, the
/// buffer is truncated, or a record carries an invalid tag byte.
pub fn decode(mut buf: &[u8]) -> Result<Trace, DecodeTraceError> {
    if buf.len() < 16 {
        return Err(DecodeTraceError::BadMagic);
    }
    let (header, rest) = buf.split_at(16);
    buf = rest;
    if &header[0..4] != MAGIC {
        return Err(DecodeTraceError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(DecodeTraceError::UnsupportedVersion { found: version });
    }
    // header[6..8] is the reserved field.
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    let mut trace = Trace::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut prev_pc = 0i64;
    for index in 0..count {
        let truncated = DecodeTraceError::Truncated {
            decoded: index,
            expected: count,
        };
        let tag = get_u8(&mut buf).ok_or_else(|| truncated.clone())?;
        let kind = kind_from_code(tag & 0x07)
            .filter(|_| tag & !0x0f == 0)
            .ok_or(DecodeTraceError::BadTag { tag, index })?;
        let outcome = Outcome::from(tag & 0x08 != 0);
        let pc_delta = get_varint(&mut buf).ok_or_else(|| truncated.clone())?;
        let target_delta = get_varint(&mut buf).ok_or(truncated)?;
        let pc = prev_pc.wrapping_add(unzigzag(pc_delta));
        let target = pc.wrapping_add(unzigzag(target_delta));
        prev_pc = pc;
        trace.push(BranchRecord::new(pc as u64, target as u64, kind, outcome));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            BranchRecord::conditional(0x0040_0100, 0x0040_00c0, Outcome::Taken),
            BranchRecord::jump(0x0040_0104, 0x0041_0000),
            BranchRecord::new(0x0041_0000, 0x0040_0108, BranchKind::Return, Outcome::Taken),
            BranchRecord::conditional(0x0040_0108, 0x0040_0200, Outcome::NotTaken),
            BranchRecord::new(0x0040_020c, 0x0100_0000, BranchKind::Call, Outcome::Taken),
            BranchRecord::new(
                0x0100_0040,
                0x0200_0000,
                BranchKind::Indirect,
                Outcome::Taken,
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let t = sample();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn round_trip_empty() {
        let t = Trace::new();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn encoding_is_compact_for_local_branches() {
        let t: Trace = (0..1000u64)
            .map(|i| BranchRecord::conditional(0x1000 + 4 * (i % 64), 0x1000, Outcome::Taken))
            .collect();
        let bytes = encode(&t);
        // header + <=4 bytes per record for branches within one page
        assert!(bytes.len() <= 16 + 4 * 1000, "got {}", bytes.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode(b"nope").unwrap_err(), DecodeTraceError::BadMagic);
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), DecodeTraceError::BadMagic);
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 9;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            DecodeTraceError::UnsupportedVersion { found: 9 }
        );
    }

    #[test]
    fn truncation_is_detected_with_progress() {
        let bytes = encode(&sample());
        let cut = &bytes[..bytes.len() - 1];
        match decode(cut).unwrap_err() {
            DecodeTraceError::Truncated { decoded, expected } => {
                assert_eq!(expected, 6);
                assert!(decoded < 6);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_tag_is_detected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[16] = 0x07; // kind code 7 does not exist
        match decode(&bytes).unwrap_err() {
            DecodeTraceError::BadTag { tag, index } => {
                assert_eq!(tag, 0x07);
                assert_eq!(index, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn high_tag_bits_are_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[16] |= 0xf0;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            DecodeTraceError::BadTag { .. }
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 123_456, -987_654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice), Some(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_empty() {
        let mut empty: &[u8] = &[];
        assert_eq!(get_varint(&mut empty), None);
        let mut unterminated: &[u8] = &[0x80, 0x80];
        assert_eq!(get_varint(&mut unterminated), None);
    }
}
