use std::error::Error;
use std::fmt;

/// Error produced when parsing the line-oriented text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// What was wrong with the line.
    pub kind: ParseTraceErrorKind,
}

/// The specific problem behind a [`ParseTraceError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceErrorKind {
    /// The line did not have the expected number of fields.
    FieldCount {
        /// Number of whitespace-separated fields found.
        found: usize,
    },
    /// A hexadecimal address field failed to parse.
    BadAddress {
        /// The offending field text.
        field: String,
    },
    /// The branch-kind mnemonic was not recognised.
    BadKind {
        /// The offending mnemonic character, if the field was one char.
        field: String,
    },
    /// The outcome mnemonic was not recognised.
    BadOutcome {
        /// The offending field text.
        field: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseTraceErrorKind::FieldCount { found } => {
                write!(f, "expected 4 fields, found {found}")
            }
            ParseTraceErrorKind::BadAddress { field } => {
                write!(f, "invalid hexadecimal address {field:?}")
            }
            ParseTraceErrorKind::BadKind { field } => {
                write!(f, "unknown branch kind mnemonic {field:?}")
            }
            ParseTraceErrorKind::BadOutcome { field } => {
                write!(f, "unknown outcome mnemonic {field:?}")
            }
        }
    }
}

impl Error for ParseTraceError {}

/// Error produced when decoding the binary trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeTraceError {
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u16,
    },
    /// The buffer ended before the declared number of records.
    Truncated {
        /// Records successfully decoded before the buffer ran out.
        decoded: u64,
        /// Records the header promised.
        expected: u64,
    },
    /// A record contained an invalid kind/outcome tag byte.
    BadTag {
        /// The offending tag byte.
        tag: u8,
        /// Index of the record in which it appeared.
        index: u64,
    },
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::BadMagic => f.write_str("buffer is not a bpred trace (bad magic)"),
            DecodeTraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            DecodeTraceError::Truncated { decoded, expected } => {
                write!(
                    f,
                    "trace truncated: decoded {decoded} of {expected} records"
                )
            }
            DecodeTraceError::BadTag { tag, index } => {
                write!(f, "record {index} has invalid tag byte {tag:#04x}")
            }
        }
    }
}

impl Error for DecodeTraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_messages_are_specific() {
        let e = ParseTraceError {
            line: 3,
            kind: ParseTraceErrorKind::FieldCount { found: 2 },
        };
        assert_eq!(e.to_string(), "line 3: expected 4 fields, found 2");
        let e = ParseTraceError {
            line: 1,
            kind: ParseTraceErrorKind::BadAddress { field: "zz".into() },
        };
        assert!(e.to_string().contains("\"zz\""));
    }

    #[test]
    fn decode_error_messages_are_specific() {
        assert!(DecodeTraceError::BadMagic.to_string().contains("magic"));
        let e = DecodeTraceError::Truncated {
            decoded: 5,
            expected: 9,
        };
        assert!(e.to_string().contains("5 of 9"));
        let e = DecodeTraceError::BadTag {
            tag: 0xff,
            index: 2,
        };
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseTraceError>();
        assert_error::<DecodeTraceError>();
    }
}
