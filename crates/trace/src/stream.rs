use std::fmt;
use std::ops::Index;

use crate::{BranchRecord, Outcome};

/// An in-memory branch trace: an ordered sequence of [`BranchRecord`]s.
///
/// `Trace` is the unit of work for the simulation engine: workload
/// generators produce one, the engine replays it against a predictor, and
/// sweeps share a single immutable trace across worker threads.
///
/// # Examples
///
/// ```
/// use bpred_trace::{BranchRecord, Outcome, Trace};
///
/// let mut trace = Trace::new();
/// trace.push(BranchRecord::conditional(0x40, 0x20, Outcome::Taken));
/// trace.push(BranchRecord::conditional(0x44, 0x60, Outcome::NotTaken));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.conditional_len(), 2);
/// assert_eq!(trace[0].pc, 0x40);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<BranchRecord>,
}

impl Trace {
    /// Creates an empty trace.
    #[inline]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` records.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing record vector without copying.
    #[inline]
    pub fn from_records(records: Vec<BranchRecord>) -> Self {
        Trace { records }
    }

    /// Appends a record.
    #[inline]
    pub fn push(&mut self, record: BranchRecord) {
        self.records.push(record);
    }

    /// Number of records (all kinds).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of conditional-branch records.
    pub fn conditional_len(&self) -> usize {
        self.records.iter().filter(|r| r.is_conditional()).count()
    }

    /// Fraction of conditional branches that were taken, or `None` for a
    /// trace without conditional branches.
    pub fn taken_rate(&self) -> Option<f64> {
        let mut cond = 0u64;
        let mut taken = 0u64;
        for r in self.records.iter().filter(|r| r.is_conditional()) {
            cond += 1;
            if r.outcome == Outcome::Taken {
                taken += 1;
            }
        }
        (cond > 0).then(|| taken as f64 / cond as f64)
    }

    /// The records as a slice.
    #[inline]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over records by reference.
    #[inline]
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            inner: self.records.iter(),
        }
    }

    /// Extracts the underlying record vector.
    #[inline]
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }

    /// A new trace holding only the first `n` records (or all of them if
    /// the trace is shorter).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            records: self.records[..n.min(self.records.len())].to_vec(),
        }
    }

    /// A stable content fingerprint of the record sequence.
    ///
    /// Two traces have the same fingerprint exactly when they hold the
    /// same records in the same order (up to 64-bit hash collisions).
    /// The value is an FNV-1a hash over the canonical binary encoding
    /// ([`binfmt`](crate::binfmt)), so it is identical across
    /// platforms and releases and can key persistent caches of
    /// simulation results for on-disk traces.
    pub fn fingerprint(&self) -> u64 {
        crate::fnv::fnv64(&crate::binfmt::encode(self))
    }
}

impl Index<usize> for Trace {
    type Output = BranchRecord;

    #[inline]
    fn index(&self, index: usize) -> &BranchRecord {
        &self.records[index]
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = BranchRecord;
    type IntoIter = std::vec::IntoIter<BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl From<Vec<BranchRecord>> for Trace {
    fn from(records: Vec<BranchRecord>) -> Self {
        Trace::from_records(records)
    }
}

/// Borrowing iterator over a [`Trace`], produced by [`Trace::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    inner: std::slice::Iter<'a, BranchRecord>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<&'a BranchRecord> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace of {} records ({} conditional)",
            self.len(),
            self.conditional_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchKind;

    fn sample() -> Trace {
        vec![
            BranchRecord::conditional(0x40, 0x20, Outcome::Taken),
            BranchRecord::jump(0x44, 0x80),
            BranchRecord::conditional(0x80, 0x40, Outcome::NotTaken),
            BranchRecord::conditional(0x84, 0xc0, Outcome::Taken),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn collect_and_len() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.conditional_len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn taken_rate_counts_only_conditionals() {
        let t = sample();
        let rate = t.taken_rate().unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn taken_rate_empty_is_none() {
        assert_eq!(Trace::new().taken_rate(), None);
        let only_jumps: Trace = std::iter::once(BranchRecord::jump(0, 4)).collect();
        assert_eq!(only_jumps.taken_rate(), None);
    }

    #[test]
    fn indexing_and_iteration_agree() {
        let t = sample();
        let via_iter: Vec<_> = t.iter().copied().collect();
        for (i, r) in via_iter.iter().enumerate() {
            assert_eq!(&t[i], r);
        }
        assert_eq!(t.iter().len(), t.len());
    }

    #[test]
    fn extend_appends_in_order() {
        let mut t = Trace::new();
        t.extend(sample());
        t.extend(std::iter::once(BranchRecord::new(
            0x100,
            0x104,
            BranchKind::Return,
            Outcome::Taken,
        )));
        assert_eq!(t.len(), 5);
        assert_eq!(t[4].kind, BranchKind::Return);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = sample();
        let head = t.truncated(2);
        assert_eq!(head.len(), 2);
        assert_eq!(head[1], t[1]);
        assert_eq!(t.truncated(100).len(), t.len());
        assert!(t.truncated(0).is_empty());
    }

    #[test]
    fn into_records_round_trips() {
        let t = sample();
        let records = t.clone().into_records();
        assert_eq!(Trace::from_records(records), t);
    }

    #[test]
    fn display_summarises() {
        assert_eq!(sample().to_string(), "trace of 4 records (3 conditional)");
    }

    #[test]
    fn fingerprint_tracks_content() {
        let t = sample();
        assert_eq!(t.fingerprint(), t.clone().fingerprint());
        assert_ne!(t.fingerprint(), t.truncated(2).fingerprint());
        let mut reordered = t.clone().into_records();
        reordered.swap(0, 1);
        assert_ne!(
            t.fingerprint(),
            Trace::from_records(reordered).fingerprint()
        );
        assert_eq!(Trace::new().fingerprint(), Trace::new().fingerprint());
    }
}
