//! Stable FNV-1a hashing.
//!
//! The result store and the sweep cache persist hashes to disk: cache
//! keys are FNV-1a digests of canonical key strings, and cached
//! objects carry FNV-1a checksums. These values must therefore be
//! *stable* — identical across platforms, Rust versions, and releases
//! — which rules out [`std::hash`] (whose hashers are explicitly
//! allowed to change). This module pins the exact FNV-1a parameters
//! the workspace relies on; the constants here must never change (a
//! change silently invalidates every cache on disk — bump the cache's
//! own version instead).
//!
//! # Examples
//!
//! ```
//! use bpred_trace::fnv;
//!
//! assert_eq!(fnv::fnv64(b""), 0xcbf2_9ce4_8422_2325);
//! // The IETF test vector for "a".
//! assert_eq!(fnv::fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
//! assert_eq!(fnv::fnv128_hex(b"").len(), 32);
//! ```

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a 128-bit offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// FNV-1a 128-bit hash of a byte slice.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// FNV-1a 128-bit hash rendered as 32 lowercase hex digits — the
/// content-address format of the result store.
pub fn fnv128_hex(bytes: &[u8]) -> String {
    format!("{:032x}", fnv128(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_hold() {
        // Published FNV-1a test vectors; these pin the constants.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv128(b""), FNV128_OFFSET);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn hex_digest_is_fixed_width() {
        for input in [&b""[..], b"x", b"a longer input with spaces"] {
            let hex = fnv128_hex(input);
            assert_eq!(hex.len(), 32);
            assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv128_hex(b"cell|a"), fnv128_hex(b"cell|b"));
        assert_ne!(fnv64(b"espresso"), fnv64(b"mpeg_play"));
    }
}
