//! Streaming trace sources.
//!
//! A [`TraceSource`] yields branch records one at a time, so consumers
//! (notably the batched replay engine in `bpred-sim`) can process a
//! workload in a single pass without materialising it in memory first.
//! Every source is restartable: [`TraceSource::stream`] takes `&self`
//! and returns a fresh iterator over the same record sequence, which is
//! what lets several worker threads replay the same workload
//! concurrently, and lets a deterministic generator serve as a source
//! directly (each call re-seeds and replays).
//!
//! [`Trace`] implements the trait by iterating its records, so any API
//! accepting `&impl TraceSource` still accepts an in-memory trace.
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{BranchRecord, Outcome, Trace, TraceSource};
//!
//! let trace: Trace = (0..4)
//!     .map(|i| BranchRecord::conditional(0x40 + 4 * i, 0x20, Outcome::Taken))
//!     .collect();
//! let source: &dyn TraceSource = &trace;
//! assert_eq!(source.stream().count(), 4);
//! assert_eq!(source.len_hint(), Some(4));
//! // Streams restart from the beginning on every call.
//! assert_eq!(source.stream().next(), source.stream().next());
//! ```

use crate::{BranchRecord, Trace, TraceChunk};

/// A restartable stream of branch records.
///
/// Implementors promise that every call to [`stream`](Self::stream)
/// yields the *same* record sequence: sources are replayable, which the
/// simulation layers rely on both for sharded parallel replay and for
/// bit-identical batched-vs-serial comparisons.
pub trait TraceSource {
    /// Opens a fresh iterator over the full record sequence.
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_>;

    /// Total number of records the stream will yield, when cheaply
    /// known. Used only for capacity hints.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Materialises the source into an in-memory [`Trace`].
    fn collect_trace(&self) -> Trace {
        let mut trace = Trace::with_capacity(self.len_hint().unwrap_or(0));
        trace.extend(self.stream());
        trace
    }

    /// Opens the record sequence as structure-of-arrays
    /// [`TraceChunk`]s of up to `chunk_len` records each.
    ///
    /// The chunk sequence carries exactly the records of
    /// [`stream`](Self::stream), in order: every chunk except possibly
    /// the last holds `chunk_len` records, empty chunks are never
    /// yielded, and concatenating the chunks reproduces the stream
    /// bit-for-bit. The default implementation drains the boxed
    /// stream; sources with a concrete generator (an in-memory
    /// [`Trace`], a workload model) override it to fill the chunk
    /// arrays monomorphically, without a per-record virtual call.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    fn chunks(&self, chunk_len: usize) -> Box<dyn Iterator<Item = TraceChunk> + '_> {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut stream = self.stream();
        Box::new(std::iter::from_fn(move || {
            let mut chunk = TraceChunk::with_capacity(chunk_len);
            chunk.fill_from(&mut stream, chunk_len);
            (!chunk.is_empty()).then_some(chunk)
        }))
    }

    /// Opens a refill cursor over the record sequence, for consumers
    /// that reuse one chunk buffer instead of collecting owned chunks.
    ///
    /// Where [`chunks`](Self::chunks) allocates a fresh chunk per call,
    /// a feeder writes into a caller-provided buffer: the single-worker
    /// sweep path drives its whole replay from one chunk's worth of
    /// memory, touching the allocator only once. The record sequence is
    /// exactly [`stream`](Self::stream)'s, split at `max`-record
    /// boundaries by the caller's refill sizes. The default drains the
    /// boxed stream; generator-backed sources override it to fill the
    /// arrays monomorphically.
    fn chunk_feeder(&self) -> Box<dyn ChunkFeeder + '_> {
        struct StreamFeeder<'a>(Box<dyn Iterator<Item = BranchRecord> + 'a>);
        impl ChunkFeeder for StreamFeeder<'_> {
            fn refill(&mut self, chunk: &mut TraceChunk, max: usize) -> usize {
                chunk.clear();
                chunk.fill_from(&mut self.0, max)
            }
        }
        Box::new(StreamFeeder(self.stream()))
    }
}

/// A cursor that refills a caller-provided [`TraceChunk`] with the
/// next run of records from a [`TraceSource`]; see
/// [`TraceSource::chunk_feeder`].
pub trait ChunkFeeder {
    /// Clears `chunk` and fills it with up to `max` records, returning
    /// how many were written — zero exactly when the sequence is
    /// exhausted.
    fn refill(&mut self, chunk: &mut TraceChunk, max: usize) -> usize;
}

impl TraceSource for Trace {
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
        Box::new(self.iter().copied())
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.len())
    }

    fn collect_trace(&self) -> Trace {
        self.clone()
    }

    fn chunks(&self, chunk_len: usize) -> Box<dyn Iterator<Item = TraceChunk> + '_> {
        assert!(chunk_len > 0, "chunk length must be positive");
        Box::new(self.records().chunks(chunk_len).map(|run| {
            let mut chunk = TraceChunk::with_capacity(run.len());
            for record in run {
                chunk.push(record);
            }
            chunk
        }))
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
        (**self).stream()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }

    fn collect_trace(&self) -> Trace {
        (**self).collect_trace()
    }

    fn chunks(&self, chunk_len: usize) -> Box<dyn Iterator<Item = TraceChunk> + '_> {
        (**self).chunks(chunk_len)
    }

    fn chunk_feeder(&self) -> Box<dyn ChunkFeeder + '_> {
        (**self).chunk_feeder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    fn sample() -> Trace {
        (0..10u64)
            .map(|i| BranchRecord::conditional(0x100 + 4 * i, 0x80, Outcome::from(i % 2 == 0)))
            .collect()
    }

    #[test]
    fn trace_streams_its_records_in_order() {
        let t = sample();
        let streamed: Vec<BranchRecord> = t.stream().collect();
        assert_eq!(streamed, t.records());
    }

    #[test]
    fn streams_restart() {
        let t = sample();
        let a: Vec<BranchRecord> = t.stream().collect();
        let b: Vec<BranchRecord> = t.stream().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn len_hint_matches() {
        let t = sample();
        assert_eq!(t.len_hint(), Some(10));
        assert_eq!(t.len_hint(), Some(10));
    }

    #[test]
    fn collect_trace_round_trips() {
        let t = sample();
        assert_eq!(t.collect_trace(), t);
        assert_eq!((&&t).collect_trace(), t);
    }

    #[test]
    fn works_as_a_trait_object() {
        let t = sample();
        let dynamic: &dyn TraceSource = &t;
        assert_eq!(dynamic.stream().count(), 10);
        assert_eq!(dynamic.collect_trace(), t);
        assert_eq!(dynamic.chunks(4).count(), 3);
    }

    #[test]
    fn chunk_view_concatenates_back_to_the_stream() {
        let t = sample();
        for chunk_len in [1, 3, 9, 10, 11, 64] {
            let rejoined: Vec<BranchRecord> = t
                .chunks(chunk_len)
                .flat_map(|chunk| chunk.iter().collect::<Vec<_>>())
                .collect();
            assert_eq!(rejoined, t.records(), "chunk_len {chunk_len}");
        }
        // The specialised Trace override agrees with the generic
        // stream-draining default (exercised through a plain wrapper).
        struct Wrapped(Trace);
        impl TraceSource for Wrapped {
            fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
                self.0.stream()
            }
        }
        let wrapped = Wrapped(t.clone());
        let a: Vec<TraceChunk> = t.chunks(4).collect();
        let b: Vec<TraceChunk> = wrapped.chunks(4).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "chunk length must be positive")]
    fn zero_chunk_len_panics() {
        let _ = sample().chunks(0);
    }
}
