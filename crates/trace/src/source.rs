//! Streaming trace sources.
//!
//! A [`TraceSource`] yields branch records one at a time, so consumers
//! (notably the batched replay engine in `bpred-sim`) can process a
//! workload in a single pass without materialising it in memory first.
//! Every source is restartable: [`TraceSource::stream`] takes `&self`
//! and returns a fresh iterator over the same record sequence, which is
//! what lets several worker threads replay the same workload
//! concurrently, and lets a deterministic generator serve as a source
//! directly (each call re-seeds and replays).
//!
//! [`Trace`] implements the trait by iterating its records, so any API
//! accepting `&impl TraceSource` still accepts an in-memory trace.
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{BranchRecord, Outcome, Trace, TraceSource};
//!
//! let trace: Trace = (0..4)
//!     .map(|i| BranchRecord::conditional(0x40 + 4 * i, 0x20, Outcome::Taken))
//!     .collect();
//! let source: &dyn TraceSource = &trace;
//! assert_eq!(source.stream().count(), 4);
//! assert_eq!(source.len_hint(), Some(4));
//! // Streams restart from the beginning on every call.
//! assert_eq!(source.stream().next(), source.stream().next());
//! ```

use crate::{BranchRecord, Trace};

/// A restartable stream of branch records.
///
/// Implementors promise that every call to [`stream`](Self::stream)
/// yields the *same* record sequence: sources are replayable, which the
/// simulation layers rely on both for sharded parallel replay and for
/// bit-identical batched-vs-serial comparisons.
pub trait TraceSource {
    /// Opens a fresh iterator over the full record sequence.
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_>;

    /// Total number of records the stream will yield, when cheaply
    /// known. Used only for capacity hints.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Materialises the source into an in-memory [`Trace`].
    fn collect_trace(&self) -> Trace {
        let mut trace = Trace::with_capacity(self.len_hint().unwrap_or(0));
        trace.extend(self.stream());
        trace
    }
}

impl TraceSource for Trace {
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
        Box::new(self.iter().copied())
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.len())
    }

    fn collect_trace(&self) -> Trace {
        self.clone()
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
        (**self).stream()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }

    fn collect_trace(&self) -> Trace {
        (**self).collect_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    fn sample() -> Trace {
        (0..10u64)
            .map(|i| BranchRecord::conditional(0x100 + 4 * i, 0x80, Outcome::from(i % 2 == 0)))
            .collect()
    }

    #[test]
    fn trace_streams_its_records_in_order() {
        let t = sample();
        let streamed: Vec<BranchRecord> = t.stream().collect();
        assert_eq!(streamed, t.records());
    }

    #[test]
    fn streams_restart() {
        let t = sample();
        let a: Vec<BranchRecord> = t.stream().collect();
        let b: Vec<BranchRecord> = t.stream().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn len_hint_matches() {
        let t = sample();
        assert_eq!(t.len_hint(), Some(10));
        assert_eq!(t.len_hint(), Some(10));
    }

    #[test]
    fn collect_trace_round_trips() {
        let t = sample();
        assert_eq!(t.collect_trace(), t);
        assert_eq!((&&t).collect_trace(), t);
    }

    #[test]
    fn works_as_a_trait_object() {
        let t = sample();
        let dynamic: &dyn TraceSource = &t;
        assert_eq!(dynamic.stream().count(), 10);
        assert_eq!(dynamic.collect_trace(), t);
    }
}
