//! Branch trace model for trace-driven branch-prediction simulation.
//!
//! This crate provides the vocabulary types shared by the whole `bpred`
//! workspace:
//!
//! * [`Outcome`] — a resolved conditional-branch direction;
//! * [`BranchRecord`] — one dynamic branch instance (program counter,
//!   target, kind, outcome);
//! * [`Trace`] — an in-memory sequence of branch records with iteration,
//!   slicing, and collection support;
//! * [`TraceSource`] — a restartable streaming view of a record
//!   sequence, letting generators feed the simulation engine without
//!   materialising a full trace;
//! * [`TraceChunk`] — a structure-of-arrays run of records (parallel
//!   address/target arrays, bit-packed outcome/kind words), the unit
//!   the chunked sweep pipeline decodes once and shares across shard
//!   workers;
//! * [`binfmt`] / [`textfmt`] — a compact binary format and a line-oriented
//!   text format for storing traces on disk;
//! * [`stats`] — workload characterization (static/dynamic branch counts,
//!   bias, and dynamic-coverage buckets) mirroring Tables 1–2 of
//!   Sechrest, Lee & Mudge (ISCA 1996).
//!
//! # Examples
//!
//! ```
//! use bpred_trace::{BranchRecord, Outcome, Trace};
//!
//! let trace: Trace = (0..8)
//!     .map(|i| BranchRecord::conditional(0x400_000 + 4 * i, 0x400_100, Outcome::from(i % 2 == 0)))
//!     .collect();
//! assert_eq!(trace.len(), 8);
//! let taken = trace.iter().filter(|r| r.outcome.is_taken()).count();
//! assert_eq!(taken, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binfmt;
mod chunk;
mod error;
pub mod fnv;
pub mod io;
mod outcome;
mod record;
mod source;
pub mod stats;
mod stream;
pub mod streamfmt;
pub mod textfmt;

pub use chunk::{ChunkRecords, TraceChunk};
pub use error::{DecodeTraceError, ParseTraceError, ParseTraceErrorKind};
pub use outcome::Outcome;
pub use record::{BranchKind, BranchRecord};
pub use source::{ChunkFeeder, TraceSource};
pub use stream::{Iter, Trace};
