//! Line-oriented text trace format.
//!
//! Each record is one line of four whitespace-separated fields:
//!
//! ```text
//! <pc-hex> <target-hex> <kind-mnemonic> <outcome-mnemonic>
//! ```
//!
//! for example `00400100 004000c0 C T`. Blank lines and lines starting
//! with `#` are ignored, so traces can carry comments. The format is
//! intended for small hand-written fixtures and interoperability with
//! shell tooling; bulk storage should use [`crate::binfmt`].
//!
//! # Examples
//!
//! ```
//! use bpred_trace::textfmt;
//!
//! let text = "# two branches\n00400100 004000c0 C T\n00400104 00400200 C N\n";
//! let trace = textfmt::parse(text)?;
//! assert_eq!(trace.len(), 2);
//! assert_eq!(textfmt::parse(&textfmt::emit(&trace))?, trace);
//! # Ok::<(), bpred_trace::ParseTraceError>(())
//! ```

use std::fmt::Write as _;

use crate::error::ParseTraceErrorKind;
use crate::{BranchKind, BranchRecord, Outcome, ParseTraceError, Trace};

/// Renders a trace in the text format, one record per line.
pub fn emit(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 24);
    for r in trace.iter() {
        // Addresses are fixed-width for column alignment in editors.
        let _ = writeln!(
            out,
            "{:08x} {:08x} {} {}",
            r.pc,
            r.target,
            r.kind.mnemonic(),
            r.outcome.mnemonic()
        );
    }
    out
}

/// Parses the text format produced by [`emit`].
///
/// Blank lines and `#` comments are skipped. Field widths are not
/// significant; any hexadecimal address (with or without a `0x` prefix)
/// is accepted.
///
/// # Errors
///
/// Returns [`ParseTraceError`] identifying the first offending line.
pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseTraceError {
                line,
                kind: ParseTraceErrorKind::FieldCount {
                    found: fields.len(),
                },
            });
        }
        let pc = parse_addr(fields[0]).ok_or_else(|| ParseTraceError {
            line,
            kind: ParseTraceErrorKind::BadAddress {
                field: fields[0].to_owned(),
            },
        })?;
        let target = parse_addr(fields[1]).ok_or_else(|| ParseTraceError {
            line,
            kind: ParseTraceErrorKind::BadAddress {
                field: fields[1].to_owned(),
            },
        })?;
        let kind = single_char(fields[2])
            .and_then(BranchKind::from_mnemonic)
            .ok_or_else(|| ParseTraceError {
                line,
                kind: ParseTraceErrorKind::BadKind {
                    field: fields[2].to_owned(),
                },
            })?;
        let outcome = single_char(fields[3])
            .and_then(Outcome::from_mnemonic)
            .ok_or_else(|| ParseTraceError {
                line,
                kind: ParseTraceErrorKind::BadOutcome {
                    field: fields[3].to_owned(),
                },
            })?;
        trace.push(BranchRecord::new(pc, target, kind, outcome));
    }
    Ok(trace)
}

fn parse_addr(field: &str) -> Option<u64> {
    let digits = field
        .strip_prefix("0x")
        .or_else(|| field.strip_prefix("0X"))
        .unwrap_or(field);
    u64::from_str_radix(digits, 16).ok()
}

fn single_char(field: &str) -> Option<char> {
    let mut chars = field.chars();
    let c = chars.next()?;
    chars.next().is_none().then_some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            BranchRecord::conditional(0x0040_0100, 0x0040_00c0, Outcome::Taken),
            BranchRecord::jump(0x0040_0104, 0x0041_0000),
            BranchRecord::new(0x0041_0000, 0x0040_0108, BranchKind::Return, Outcome::Taken),
            BranchRecord::conditional(0x0040_0108, 0x0040_0200, Outcome::NotTaken),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        assert_eq!(parse(&emit(&t)).unwrap(), t);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "\n# header\n  \n00400100 004000c0 C T\n\n# trailing\n";
        let t = parse(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].pc, 0x0040_0100);
    }

    #[test]
    fn hex_prefix_is_accepted() {
        let t = parse("0x10 0X20 C N").unwrap();
        assert_eq!(t[0].pc, 0x10);
        assert_eq!(t[0].target, 0x20);
    }

    #[test]
    fn field_count_error_reports_line() {
        let err = parse("00400100 004000c0 C T\n00400104 C T").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ParseTraceErrorKind::FieldCount { found: 3 });
    }

    #[test]
    fn bad_address_error() {
        let err = parse("zz 004000c0 C T").unwrap_err();
        assert!(matches!(err.kind, ParseTraceErrorKind::BadAddress { .. }));
    }

    #[test]
    fn bad_kind_error() {
        let err = parse("10 20 Q T").unwrap_err();
        assert!(matches!(err.kind, ParseTraceErrorKind::BadKind { .. }));
        let err = parse("10 20 CC T").unwrap_err();
        assert!(matches!(err.kind, ParseTraceErrorKind::BadKind { .. }));
    }

    #[test]
    fn bad_outcome_error() {
        let err = parse("10 20 C X").unwrap_err();
        assert!(matches!(err.kind, ParseTraceErrorKind::BadOutcome { .. }));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse("").unwrap().is_empty());
    }
}
