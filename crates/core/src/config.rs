//! Declarative predictor configurations.
//!
//! [`PredictorConfig`] names every scheme the workspace can simulate,
//! builds boxed predictors for sweep harnesses, and round-trips through
//! a compact text syntax (`"gshare:h=8,c=4"`) so experiment binaries can
//! take predictors on the command line.

use std::fmt;
use std::str::FromStr;

use crate::{
    AddressIndexed, Agree, AlwaysNotTaken, AlwaysTaken, BiMode, BranchPredictor, Btfn, Combining,
    Gas, Gshare, Gskew, LastTime, Pas, PathBased, Sas, Yags,
};

/// A buildable description of one predictor configuration.
///
/// # Examples
///
/// ```
/// use bpred_core::PredictorConfig;
///
/// let cfg: PredictorConfig = "gshare:h=8,c=4".parse()?;
/// assert_eq!(cfg.counters(), 4096);
/// let mut predictor = cfg.build();
/// assert_eq!(predictor.name(), "gshare(2^8 x 2^4)");
/// assert_eq!(cfg.to_string(), "gshare:h=8,c=4");
/// # Ok::<(), bpred_core::ParseConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PredictorConfig {
    /// Static always-taken.
    AlwaysTaken,
    /// Static always-not-taken.
    AlwaysNotTaken,
    /// Static backward-taken/forward-not-taken.
    Btfn,
    /// One-bit last-time table of `2^addr_bits` entries.
    LastTime {
        /// log2 of the table size.
        addr_bits: u32,
    },
    /// Address-indexed two-bit counters (`2^addr_bits` of them).
    AddressIndexed {
        /// log2 of the table size.
        addr_bits: u32,
    },
    /// GAs (GAg when `col_bits == 0`).
    Gas {
        /// Global-history length = log2 of the row count.
        history_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
    },
    /// gshare.
    Gshare {
        /// Global-history length = log2 of the row count.
        history_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
    },
    /// Nair's path-based scheme.
    Path {
        /// log2 of the row count (total path-register bits).
        row_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
        /// Bits contributed by each destination address.
        bits_per_target: u32,
    },
    /// PAs with an unbounded first-level table (PAg when
    /// `col_bits == 0`).
    PasInfinite {
        /// Per-branch history length = log2 of the row count.
        history_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
    },
    /// PAs with a finite set-associative first-level table.
    PasFinite {
        /// Per-branch history length = log2 of the row count.
        history_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
        /// First-level entries (power of two).
        entries: u32,
        /// First-level associativity.
        ways: u32,
    },
    /// McFarling tournament: address-indexed + gshare components with a
    /// per-address chooser.
    Tournament {
        /// log2 of the bimodal component's table.
        addr_bits: u32,
        /// gshare component history length (single column).
        history_bits: u32,
        /// log2 of the chooser table size.
        chooser_bits: u32,
    },
    /// Per-set history (SAg when `col_bits == 0`).
    Sas {
        /// Per-set history length = log2 of the row count.
        history_bits: u32,
        /// log2 of the number of history sets.
        set_bits: u32,
        /// log2 of the column count.
        col_bits: u32,
    },
    /// Agree predictor (Sprangle et al. 1997): gshare-indexed
    /// agreement counters against BTB-resident bias bits.
    Agree {
        /// Global-history length.
        history_bits: u32,
        /// log2 of the agreement-counter table.
        index_bits: u32,
    },
    /// Bi-mode predictor (Lee, Chen & Mudge 1997).
    BiMode {
        /// Global-history length.
        history_bits: u32,
        /// log2 of each direction table.
        direction_bits: u32,
        /// log2 of the choice table.
        choice_bits: u32,
    },
    /// gskew predictor (Michaud, Seznec & Uhlig 1997): three banks
    /// with a majority vote.
    Gskew {
        /// Global-history length.
        history_bits: u32,
        /// log2 of each bank.
        bank_bits: u32,
    },
    /// YAGS (Eden & Mudge 1998): bias PHT + tagged exception caches.
    Yags {
        /// log2 of the choice PHT.
        choice_bits: u32,
        /// log2 of each direction cache (also the history length).
        cache_bits: u32,
        /// Tag width (1..=8).
        tag_bits: u32,
    },
}

impl PredictorConfig {
    /// Builds the predictor this configuration describes.
    pub fn build(&self) -> Box<dyn BranchPredictor> {
        match *self {
            PredictorConfig::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorConfig::AlwaysNotTaken => Box::new(AlwaysNotTaken),
            PredictorConfig::Btfn => Box::new(Btfn),
            PredictorConfig::LastTime { addr_bits } => Box::new(LastTime::new(addr_bits)),
            PredictorConfig::AddressIndexed { addr_bits } => {
                Box::new(AddressIndexed::new(addr_bits))
            }
            PredictorConfig::Gas {
                history_bits,
                col_bits,
            } => Box::new(Gas::new(history_bits, col_bits)),
            PredictorConfig::Gshare {
                history_bits,
                col_bits,
            } => Box::new(Gshare::new(history_bits, col_bits)),
            PredictorConfig::Path {
                row_bits,
                col_bits,
                bits_per_target,
            } => Box::new(PathBased::new(row_bits, col_bits, bits_per_target)),
            PredictorConfig::PasInfinite {
                history_bits,
                col_bits,
            } => Box::new(Pas::perfect(history_bits, col_bits)),
            PredictorConfig::PasFinite {
                history_bits,
                col_bits,
                entries,
                ways,
            } => Box::new(Pas::with_bht(
                history_bits,
                col_bits,
                entries as usize,
                ways as usize,
            )),
            PredictorConfig::Tournament {
                addr_bits,
                history_bits,
                chooser_bits,
            } => Box::new(Combining::new(
                AddressIndexed::new(addr_bits),
                Gshare::new(history_bits, 0),
                chooser_bits,
            )),
            PredictorConfig::Sas {
                history_bits,
                set_bits,
                col_bits,
            } => Box::new(Sas::new(history_bits, set_bits, col_bits)),
            PredictorConfig::Agree {
                history_bits,
                index_bits,
            } => Box::new(Agree::new(history_bits, index_bits)),
            PredictorConfig::BiMode {
                history_bits,
                direction_bits,
                choice_bits,
            } => Box::new(BiMode::new(history_bits, direction_bits, choice_bits)),
            PredictorConfig::Gskew {
                history_bits,
                bank_bits,
            } => Box::new(Gskew::new(history_bits, bank_bits)),
            PredictorConfig::Yags {
                choice_bits,
                cache_bits,
                tag_bits,
            } => Box::new(Yags::new(choice_bits, cache_bits, tag_bits)),
        }
    }

    /// The configuration's stable canonical identifier.
    ///
    /// This is the compact `scheme:k=v,...` syntax (the same text
    /// [`Display`](fmt::Display) renders and [`FromStr`] parses), with
    /// every structural parameter spelled out. It is injective — two
    /// distinct configurations never share an id — and stable across
    /// releases, which makes it the canonical label for report rows
    /// and the configuration component of persistent cache keys
    /// (`bpred-serve` hashes it into its content addresses, so
    /// changing the format requires an engine-version bump there).
    ///
    /// Prefer this over the built predictor's `name()` when the label
    /// must round-trip: `name()` is a human-readable description
    /// (`"gshare(2^8 x 2^4)"`), while `config_id()` parses back into
    /// the configuration (`"gshare:h=8,c=4"`).
    ///
    /// # Examples
    ///
    /// ```
    /// use bpred_core::PredictorConfig;
    ///
    /// let cfg = PredictorConfig::Gshare { history_bits: 8, col_bits: 4 };
    /// assert_eq!(cfg.config_id(), "gshare:h=8,c=4");
    /// assert_eq!(cfg.config_id().parse::<PredictorConfig>().unwrap(), cfg);
    /// ```
    pub fn config_id(&self) -> String {
        self.to_string()
    }

    /// Number of second-level two-bit counters (0 for static schemes;
    /// for the tournament, the sum over components and chooser). The
    /// tier key of the paper's constant-cost comparisons.
    pub fn counters(&self) -> u64 {
        match *self {
            PredictorConfig::AlwaysTaken
            | PredictorConfig::AlwaysNotTaken
            | PredictorConfig::Btfn => 0,
            PredictorConfig::LastTime { addr_bits } => 1u64 << addr_bits,
            PredictorConfig::AddressIndexed { addr_bits } => 1u64 << addr_bits,
            PredictorConfig::Gas {
                history_bits,
                col_bits,
            }
            | PredictorConfig::Gshare {
                history_bits,
                col_bits,
            }
            | PredictorConfig::PasInfinite {
                history_bits,
                col_bits,
            } => 1u64 << (history_bits + col_bits),
            PredictorConfig::PasFinite {
                history_bits,
                col_bits,
                ..
            } => 1u64 << (history_bits + col_bits),
            PredictorConfig::Path {
                row_bits, col_bits, ..
            } => 1u64 << (row_bits + col_bits),
            PredictorConfig::Tournament {
                addr_bits,
                history_bits,
                chooser_bits,
            } => (1u64 << addr_bits) + (1u64 << history_bits) + (1u64 << chooser_bits),
            PredictorConfig::Sas {
                history_bits,
                col_bits,
                ..
            } => 1u64 << (history_bits + col_bits),
            PredictorConfig::Agree { index_bits, .. } => 1u64 << index_bits,
            PredictorConfig::BiMode {
                direction_bits,
                choice_bits,
                ..
            } => 2 * (1u64 << direction_bits) + (1u64 << choice_bits),
            PredictorConfig::Gskew { bank_bits, .. } => 3 * (1u64 << bank_bits),
            PredictorConfig::Yags {
                choice_bits,
                cache_bits,
                ..
            } => (1u64 << choice_bits) + 2 * (1u64 << cache_bits),
        }
    }
}

impl fmt::Display for PredictorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PredictorConfig::AlwaysTaken => f.write_str("taken"),
            PredictorConfig::AlwaysNotTaken => f.write_str("not-taken"),
            PredictorConfig::Btfn => f.write_str("btfn"),
            PredictorConfig::LastTime { addr_bits } => write!(f, "last:a={addr_bits}"),
            PredictorConfig::AddressIndexed { addr_bits } => write!(f, "bimodal:a={addr_bits}"),
            PredictorConfig::Gas {
                history_bits,
                col_bits,
            } => write!(f, "gas:h={history_bits},c={col_bits}"),
            PredictorConfig::Gshare {
                history_bits,
                col_bits,
            } => write!(f, "gshare:h={history_bits},c={col_bits}"),
            PredictorConfig::Path {
                row_bits,
                col_bits,
                bits_per_target,
            } => write!(f, "path:r={row_bits},c={col_bits},q={bits_per_target}"),
            PredictorConfig::PasInfinite {
                history_bits,
                col_bits,
            } => write!(f, "pas:h={history_bits},c={col_bits}"),
            PredictorConfig::PasFinite {
                history_bits,
                col_bits,
                entries,
                ways,
            } => write!(f, "pas:h={history_bits},c={col_bits},e={entries},w={ways}"),
            PredictorConfig::Tournament {
                addr_bits,
                history_bits,
                chooser_bits,
            } => write!(
                f,
                "tournament:a={addr_bits},h={history_bits},k={chooser_bits}"
            ),
            PredictorConfig::Sas {
                history_bits,
                set_bits,
                col_bits,
            } => write!(f, "sas:h={history_bits},s={set_bits},c={col_bits}"),
            PredictorConfig::Agree {
                history_bits,
                index_bits,
            } => write!(f, "agree:h={history_bits},i={index_bits}"),
            PredictorConfig::BiMode {
                history_bits,
                direction_bits,
                choice_bits,
            } => write!(
                f,
                "bimode:h={history_bits},d={direction_bits},k={choice_bits}"
            ),
            PredictorConfig::Gskew {
                history_bits,
                bank_bits,
            } => write!(f, "gskew:h={history_bits},b={bank_bits}"),
            PredictorConfig::Yags {
                choice_bits,
                cache_bits,
                tag_bits,
            } => write!(f, "yags:k={choice_bits},b={cache_bits},t={tag_bits}"),
        }
    }
}

/// Error returned when parsing a [`PredictorConfig`] string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    message: String,
}

impl ParseConfigError {
    fn new(message: impl Into<String>) -> Self {
        ParseConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid predictor config: {}", self.message)
    }
}

impl std::error::Error for ParseConfigError {}

/// Key-value parameter list like `h=8,c=4`.
#[derive(Debug, Default)]
struct Params {
    pairs: Vec<(char, u32)>,
}

impl Params {
    fn parse(text: &str) -> Result<Self, ParseConfigError> {
        let mut pairs = Vec::new();
        if text.is_empty() {
            return Ok(Params { pairs });
        }
        for part in text.split(',') {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                ParseConfigError::new(format!("expected key=value, got {part:?}"))
            })?;
            let key = single_char(key).ok_or_else(|| {
                ParseConfigError::new(format!("parameter key {key:?} must be one letter"))
            })?;
            let value: u32 = value.parse().map_err(|_| {
                ParseConfigError::new(format!("parameter {key}={value:?} is not a number"))
            })?;
            pairs.push((key, value));
        }
        Ok(Params { pairs })
    }

    fn get(&self, key: char) -> Option<u32> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn require(&self, key: char, scheme: &str) -> Result<u32, ParseConfigError> {
        self.get(key)
            .ok_or_else(|| ParseConfigError::new(format!("{scheme} requires parameter {key}=<n>")))
    }
}

fn single_char(s: &str) -> Option<char> {
    let mut chars = s.chars();
    let c = chars.next()?;
    chars.next().is_none().then_some(c)
}

impl FromStr for PredictorConfig {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = match s.split_once(':') {
            Some((scheme, rest)) => (scheme, rest),
            None => (s, ""),
        };
        let params = Params::parse(rest)?;
        match scheme {
            "taken" => Ok(PredictorConfig::AlwaysTaken),
            "not-taken" => Ok(PredictorConfig::AlwaysNotTaken),
            "btfn" => Ok(PredictorConfig::Btfn),
            "last" => Ok(PredictorConfig::LastTime {
                addr_bits: params.require('a', scheme)?,
            }),
            "bimodal" => Ok(PredictorConfig::AddressIndexed {
                addr_bits: params.require('a', scheme)?,
            }),
            "gag" => Ok(PredictorConfig::Gas {
                history_bits: params.require('h', scheme)?,
                col_bits: 0,
            }),
            "gas" => Ok(PredictorConfig::Gas {
                history_bits: params.require('h', scheme)?,
                col_bits: params.get('c').unwrap_or(0),
            }),
            "gshare" => Ok(PredictorConfig::Gshare {
                history_bits: params.require('h', scheme)?,
                col_bits: params.get('c').unwrap_or(0),
            }),
            "path" => Ok(PredictorConfig::Path {
                row_bits: params.require('r', scheme)?,
                col_bits: params.get('c').unwrap_or(0),
                bits_per_target: params.get('q').unwrap_or(2),
            }),
            "pas" | "pag" => {
                let history_bits = params.require('h', scheme)?;
                let col_bits = if scheme == "pag" {
                    0
                } else {
                    params.get('c').unwrap_or(0)
                };
                match (params.get('e'), params.get('w')) {
                    (None, None) => Ok(PredictorConfig::PasInfinite {
                        history_bits,
                        col_bits,
                    }),
                    (Some(entries), ways) => Ok(PredictorConfig::PasFinite {
                        history_bits,
                        col_bits,
                        entries,
                        ways: ways.unwrap_or(4),
                    }),
                    (None, Some(_)) => Err(ParseConfigError::new(
                        "pas with w=<ways> also requires e=<entries>",
                    )),
                }
            }
            "tournament" => Ok(PredictorConfig::Tournament {
                addr_bits: params.require('a', scheme)?,
                history_bits: params.require('h', scheme)?,
                chooser_bits: params.require('k', scheme)?,
            }),
            "sas" | "sag" => Ok(PredictorConfig::Sas {
                history_bits: params.require('h', scheme)?,
                set_bits: params.require('s', scheme)?,
                col_bits: if scheme == "sag" {
                    0
                } else {
                    params.get('c').unwrap_or(0)
                },
            }),
            "agree" => {
                let history_bits = params.require('h', scheme)?;
                Ok(PredictorConfig::Agree {
                    history_bits,
                    index_bits: params.get('i').unwrap_or(history_bits),
                })
            }
            "bimode" => {
                let history_bits = params.require('h', scheme)?;
                Ok(PredictorConfig::BiMode {
                    history_bits,
                    direction_bits: params.get('d').unwrap_or(history_bits),
                    choice_bits: params.get('k').unwrap_or(history_bits),
                })
            }
            "gskew" => {
                let history_bits = params.require('h', scheme)?;
                Ok(PredictorConfig::Gskew {
                    history_bits,
                    bank_bits: params.get('b').unwrap_or(history_bits),
                })
            }
            "yags" => {
                let choice_bits = params.require('k', scheme)?;
                Ok(PredictorConfig::Yags {
                    choice_bits,
                    cache_bits: params.get('b').unwrap_or(choice_bits),
                    tag_bits: params.get('t').unwrap_or(6),
                })
            }
            other => Err(ParseConfigError::new(format!("unknown scheme {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let configs = [
            PredictorConfig::AlwaysTaken,
            PredictorConfig::AlwaysNotTaken,
            PredictorConfig::Btfn,
            PredictorConfig::LastTime { addr_bits: 9 },
            PredictorConfig::AddressIndexed { addr_bits: 12 },
            PredictorConfig::Gas {
                history_bits: 8,
                col_bits: 4,
            },
            PredictorConfig::Gshare {
                history_bits: 13,
                col_bits: 2,
            },
            PredictorConfig::Path {
                row_bits: 6,
                col_bits: 4,
                bits_per_target: 2,
            },
            PredictorConfig::PasInfinite {
                history_bits: 12,
                col_bits: 0,
            },
            PredictorConfig::PasFinite {
                history_bits: 10,
                col_bits: 0,
                entries: 1024,
                ways: 4,
            },
            PredictorConfig::Tournament {
                addr_bits: 10,
                history_bits: 10,
                chooser_bits: 10,
            },
            PredictorConfig::Sas {
                history_bits: 8,
                set_bits: 4,
                col_bits: 2,
            },
            PredictorConfig::Agree {
                history_bits: 8,
                index_bits: 10,
            },
            PredictorConfig::BiMode {
                history_bits: 9,
                direction_bits: 10,
                choice_bits: 11,
            },
            PredictorConfig::Gskew {
                history_bits: 7,
                bank_bits: 9,
            },
            PredictorConfig::Yags {
                choice_bits: 10,
                cache_bits: 9,
                tag_bits: 6,
            },
        ];
        for cfg in configs {
            let text = cfg.to_string();
            let parsed: PredictorConfig = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, cfg, "{text}");
        }
    }

    #[test]
    fn built_predictors_report_matching_structure() {
        let cfg = PredictorConfig::Gas {
            history_bits: 8,
            col_bits: 4,
        };
        assert_eq!(cfg.build().name(), "GAs(2^8 x 2^4)");
        assert_eq!(cfg.counters(), 4096);
        let cfg: PredictorConfig = "pas:h=10,c=0,e=1024,w=4".parse().unwrap();
        assert_eq!(cfg.build().name(), "PAg[1024x4](2^10)");
    }

    #[test]
    fn gag_parses_as_zero_column_gas() {
        let cfg: PredictorConfig = "gag:h=10".parse().unwrap();
        assert_eq!(
            cfg,
            PredictorConfig::Gas {
                history_bits: 10,
                col_bits: 0
            }
        );
    }

    #[test]
    fn pas_without_entries_is_infinite() {
        let cfg: PredictorConfig = "pas:h=8,c=2".parse().unwrap();
        assert!(matches!(cfg, PredictorConfig::PasInfinite { .. }));
    }

    #[test]
    fn pag_forces_single_column() {
        let cfg: PredictorConfig = "pag:h=8".parse().unwrap();
        assert_eq!(
            cfg,
            PredictorConfig::PasInfinite {
                history_bits: 8,
                col_bits: 0
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let cfg: PredictorConfig = "path:r=6".parse().unwrap();
        assert_eq!(
            cfg,
            PredictorConfig::Path {
                row_bits: 6,
                col_bits: 0,
                bits_per_target: 2
            }
        );
        let cfg: PredictorConfig = "pas:h=8,e=512".parse().unwrap();
        assert_eq!(
            cfg,
            PredictorConfig::PasFinite {
                history_bits: 8,
                col_bits: 0,
                entries: 512,
                ways: 4
            }
        );
    }

    #[test]
    fn parse_errors_are_informative() {
        let err = "warp-drive:x=1".parse::<PredictorConfig>().unwrap_err();
        assert!(err.to_string().contains("unknown scheme"));
        let err = "gas:c=4".parse::<PredictorConfig>().unwrap_err();
        assert!(err.to_string().contains("requires parameter h"));
        let err = "gas:h=abc".parse::<PredictorConfig>().unwrap_err();
        assert!(err.to_string().contains("not a number"));
        let err = "gas:h".parse::<PredictorConfig>().unwrap_err();
        assert!(err.to_string().contains("key=value"));
        let err = "pas:h=8,w=4".parse::<PredictorConfig>().unwrap_err();
        assert!(err.to_string().contains("requires e="));
    }

    #[test]
    fn dealiased_defaults_apply() {
        let cfg: PredictorConfig = "agree:h=10".parse().unwrap();
        assert_eq!(
            cfg,
            PredictorConfig::Agree {
                history_bits: 10,
                index_bits: 10
            }
        );
        let cfg: PredictorConfig = "gskew:h=8,b=11".parse().unwrap();
        assert_eq!(cfg.counters(), 3 * 2048);
        let cfg: PredictorConfig = "sag:h=6,s=3".parse().unwrap();
        assert!(matches!(cfg, PredictorConfig::Sas { col_bits: 0, .. }));
        assert_eq!(cfg.build().name(), "SAg[2^3 sets](2^6)");
    }

    #[test]
    fn config_ids_are_injective_and_round_trip() {
        // A broad grid of configurations: every id must be unique and
        // parse back to the configuration that produced it.
        let mut configs: Vec<PredictorConfig> = vec![
            PredictorConfig::AlwaysTaken,
            PredictorConfig::AlwaysNotTaken,
            PredictorConfig::Btfn,
        ];
        for n in 0..6u32 {
            configs.push(PredictorConfig::LastTime { addr_bits: n });
            configs.push(PredictorConfig::AddressIndexed { addr_bits: n });
            for c in 0..4u32 {
                configs.push(PredictorConfig::Gas {
                    history_bits: n,
                    col_bits: c,
                });
                configs.push(PredictorConfig::Gshare {
                    history_bits: n,
                    col_bits: c,
                });
                configs.push(PredictorConfig::PasInfinite {
                    history_bits: n,
                    col_bits: c,
                });
                configs.push(PredictorConfig::Sas {
                    history_bits: n,
                    set_bits: 2,
                    col_bits: c,
                });
            }
            configs.push(PredictorConfig::PasFinite {
                history_bits: n,
                col_bits: 1,
                entries: 256,
                ways: 2,
            });
            configs.push(PredictorConfig::Yags {
                choice_bits: n + 1,
                cache_bits: n,
                tag_bits: 4,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for cfg in configs {
            let id = cfg.config_id();
            assert!(seen.insert(id.clone()), "duplicate config id {id}");
            let parsed: PredictorConfig = id.parse().unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(parsed, cfg, "{id}");
        }
    }

    #[test]
    fn counters_for_static_schemes_is_zero() {
        assert_eq!(PredictorConfig::Btfn.counters(), 0);
        assert_eq!(PredictorConfig::AlwaysTaken.counters(), 0);
    }

    #[test]
    fn tournament_counters_sum_components() {
        let cfg = PredictorConfig::Tournament {
            addr_bits: 3,
            history_bits: 4,
            chooser_bits: 5,
        };
        assert_eq!(cfg.counters(), 8 + 16 + 32);
    }
}
