//! Delayed-update modeling.
//!
//! The paper (like most trace studies) updates predictor state
//! immediately after each prediction. Real pipelines resolve branches
//! several cycles later, so the predictor may answer the next few
//! lookups with stale tables and stale history. [`DelayedUpdate`]
//! wraps any predictor and holds each update in a queue until `delay`
//! further branches have been predicted — an evaluation axis Yeh &
//! Patt flagged (MICRO 1992) and a standard realism knob in later
//! simulators.

use std::collections::VecDeque;

use bpred_trace::{BranchRecord, Outcome};

use crate::{AliasStats, BhtStats, BranchPredictor};

/// Wraps a predictor so that `update` calls take effect only after
/// `delay` subsequent predictions, modeling branch-resolution latency.
///
/// With `delay == 0` the wrapper is transparent.
///
/// # Examples
///
/// ```
/// use bpred_core::{AddressIndexed, BranchPredictor, DelayedUpdate};
/// use bpred_trace::Outcome;
///
/// let mut p = DelayedUpdate::new(AddressIndexed::new(4), 3);
/// let _ = p.predict(0x40, 0x10);
/// p.update(0x40, 0x10, Outcome::Taken); // queued, not yet applied
/// assert!(p.name().starts_with("delayed(3"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayedUpdate<P> {
    inner: P,
    delay: usize,
    pending: VecDeque<(u64, u64, Outcome)>,
}

impl<P: BranchPredictor> DelayedUpdate<P> {
    /// Wraps `inner` with an update latency of `delay` branches.
    pub fn new(inner: P, delay: usize) -> Self {
        DelayedUpdate {
            inner,
            delay,
            pending: VecDeque::with_capacity(delay + 1),
        }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The configured latency in branches.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Applies every queued update immediately (end-of-trace drain).
    pub fn flush(&mut self) {
        while let Some((pc, target, outcome)) = self.pending.pop_front() {
            self.inner.update(pc, target, outcome);
        }
    }
}

impl<P: BranchPredictor> BranchPredictor for DelayedUpdate<P> {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        // Updates older than `delay` predictions have resolved by now.
        while self.pending.len() > self.delay {
            let (u_pc, u_target, outcome) = self.pending.pop_front().expect("non-empty");
            self.inner.update(u_pc, u_target, outcome);
        }
        self.inner.predict(pc, target)
    }

    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        if self.delay == 0 {
            self.inner.update(pc, target, outcome);
        } else {
            self.pending.push_back((pc, target, outcome));
        }
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        self.inner.note_control_transfer(record);
    }

    fn name(&self) -> String {
        format!("delayed({}, {})", self.delay, self.inner.name())
    }

    fn state_bits(&self) -> u64 {
        self.inner.state_bits()
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        self.inner.alias_stats()
    }

    fn bht_stats(&self) -> Option<BhtStats> {
        self.inner.bht_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressIndexed;

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn zero_delay_is_transparent() {
        let mut wrapped = DelayedUpdate::new(AddressIndexed::new(4), 0);
        let mut plain = AddressIndexed::new(4);
        for i in 0..200u64 {
            let pc = 0x40 + 4 * (i % 7);
            let out = Outcome::from(i % 3 == 0);
            assert_eq!(step(&mut wrapped, pc, out), step(&mut plain, pc, out));
        }
    }

    #[test]
    fn updates_are_invisible_until_the_delay_passes() {
        // Counter starts weak-taken. With delay 2, the first
        // not-taken update cannot influence the second or third
        // prediction.
        let mut p = DelayedUpdate::new(AddressIndexed::new(2), 2);
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::Taken);
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::Taken);
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::Taken);
        // By now the first update has drained: weak-not-taken.
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::NotTaken);
    }

    #[test]
    fn delay_hurts_a_tight_alternating_branch() {
        // Alternation is learnable immediately, but a stale history
        // lags: the delayed predictor must mispredict more.
        let run = |delay: usize| {
            let mut p = DelayedUpdate::new(crate::Gas::gag(2), delay);
            let mut wrong = 0u32;
            for i in 0..400u32 {
                let out = Outcome::from(i % 2 == 0);
                if step(&mut p, 0x40, out) != out {
                    wrong += 1;
                }
            }
            wrong
        };
        assert!(run(0) < run(4), "{} vs {}", run(0), run(4));
    }

    #[test]
    fn flush_applies_everything() {
        let mut p = DelayedUpdate::new(AddressIndexed::new(2), 8);
        p.update(0x40, 0x100, Outcome::NotTaken);
        p.update(0x40, 0x100, Outcome::NotTaken);
        p.flush();
        assert_eq!(p.predict(0x40, 0x100), Outcome::NotTaken);
    }

    #[test]
    fn stats_pass_through() {
        let mut p = DelayedUpdate::new(AddressIndexed::new(2), 1);
        let _ = step(&mut p, 0x40, Outcome::Taken);
        assert!(BranchPredictor::alias_stats(&p).is_some());
        assert!(p.bht_stats().is_none());
        assert_eq!(p.state_bits(), 8);
        assert_eq!(p.delay(), 1);
    }
}
