//! Enum-dispatched predictor kernels.
//!
//! [`PredictorKernel`] is the replay loop's view of a predictor: one
//! enum variant per concrete scheme a [`PredictorConfig`] can build,
//! plus a [`Boxed`](PredictorKernel::Boxed) escape hatch for exotic
//! wrappers (delayed update, speculative history) that only exist
//! behind the [`BranchPredictor`] trait. The hot loop matches on the
//! variant once per call and then runs the scheme's *monomorphized*
//! predict/update — a single predictable branch instead of two virtual
//! calls per record — while everything outside the loop keeps using
//! the trait ([`PredictorKernel`] implements [`BranchPredictor`]
//! itself, so the two worlds compose).
//!
//! Kernels are built with [`PredictorConfig::kernel`]; prediction
//! behaviour is bit-identical to the boxed predictor
//! [`PredictorConfig::build`] returns, which the sweep determinism
//! tests enforce.
//!
//! # Examples
//!
//! ```
//! use bpred_core::{BranchPredictor, PredictorConfig};
//! use bpred_trace::Outcome;
//!
//! let config = PredictorConfig::Gshare { history_bits: 8, col_bits: 2 };
//! let mut kernel = config.kernel();
//! let predicted = kernel.predict(0x400, 0x200);
//! kernel.update(0x400, 0x200, Outcome::Taken);
//! assert_eq!(kernel.name(), config.build().name());
//! # let _ = predicted;
//! ```

use bpred_trace::{BranchRecord, Outcome};

use std::fmt;

use crate::{
    AddressIndexed, Agree, AliasStats, AlwaysNotTaken, AlwaysTaken, BhtStats, BiMode,
    BranchPredictor, Btfn, Combining, Gas, Gshare, Gskew, LastTime, Pas, PathBased, PerfectBht,
    PredictorConfig, Sas, SetAssocBht, Yags,
};

/// The tournament pairing [`PredictorConfig::Tournament`] builds:
/// address-indexed bimodal + single-column gshare under a chooser.
pub type TournamentKernel = Combining<AddressIndexed, Gshare>;

/// A predictor with enum dispatch on the hot path.
///
/// One variant per concrete scheme, each holding the scheme's own type
/// so `predict`/`update` monomorphize inside a `match`; the
/// [`Boxed`](Self::Boxed) variant folds any other [`BranchPredictor`]
/// into the same interface at the old virtual-call cost.
#[non_exhaustive]
pub enum PredictorKernel {
    /// Static always-taken.
    AlwaysTaken(AlwaysTaken),
    /// Static always-not-taken.
    AlwaysNotTaken(AlwaysNotTaken),
    /// Static backward-taken/forward-not-taken.
    Btfn(Btfn),
    /// One-bit last-time table.
    LastTime(LastTime),
    /// Address-indexed two-bit counters.
    AddressIndexed(AddressIndexed),
    /// GAg/GAs global-history scheme.
    Gas(Gas),
    /// gshare.
    Gshare(Gshare),
    /// Nair's path-based scheme.
    Path(PathBased),
    /// PAg/PAs with an unbounded first-level table.
    PasPerfect(Pas<PerfectBht>),
    /// PAg/PAs with a finite set-associative first-level table.
    PasFinite(Pas<SetAssocBht>),
    /// McFarling tournament (bimodal + gshare + chooser).
    Tournament(TournamentKernel),
    /// SAg/SAs per-set scheme.
    Sas(Sas),
    /// Agree predictor.
    Agree(Agree),
    /// Bi-mode predictor.
    BiMode(BiMode),
    /// gskew predictor.
    Gskew(Gskew),
    /// YAGS predictor.
    Yags(Yags),
    /// Fallback: any other predictor, at trait-object dispatch cost.
    Boxed(Box<dyn BranchPredictor>),
}

/// Dispatches one method call to the concrete scheme in each variant.
macro_rules! dispatch {
    ($kernel:expr, $p:ident => $body:expr) => {
        match $kernel {
            PredictorKernel::AlwaysTaken($p) => $body,
            PredictorKernel::AlwaysNotTaken($p) => $body,
            PredictorKernel::Btfn($p) => $body,
            PredictorKernel::LastTime($p) => $body,
            PredictorKernel::AddressIndexed($p) => $body,
            PredictorKernel::Gas($p) => $body,
            PredictorKernel::Gshare($p) => $body,
            PredictorKernel::Path($p) => $body,
            PredictorKernel::PasPerfect($p) => $body,
            PredictorKernel::PasFinite($p) => $body,
            PredictorKernel::Tournament($p) => $body,
            PredictorKernel::Sas($p) => $body,
            PredictorKernel::Agree($p) => $body,
            PredictorKernel::BiMode($p) => $body,
            PredictorKernel::Gskew($p) => $body,
            PredictorKernel::Yags($p) => $body,
            PredictorKernel::Boxed($p) => $body,
        }
    };
}

impl PredictorKernel {
    /// Wraps an arbitrary boxed predictor in the fallback variant.
    pub fn boxed(predictor: Box<dyn BranchPredictor>) -> Self {
        PredictorKernel::Boxed(predictor)
    }

    /// Predicts the branch at `pc` (see [`BranchPredictor::predict`]).
    #[inline]
    pub fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        dispatch!(self, p => p.predict(pc, target))
    }

    /// Trains with the resolved outcome (see
    /// [`BranchPredictor::update`]).
    #[inline]
    pub fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        dispatch!(self, p => p.update(pc, target, outcome))
    }

    /// Fused predict-and-train (see
    /// [`BranchPredictor::predict_then_update`]) — one variant match
    /// instead of two, and the concrete scheme's own fused path inside.
    #[inline]
    pub fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        dispatch!(self, p => p.predict_then_update(pc, target, outcome))
    }

    /// Reports a non-conditional control transfer (see
    /// [`BranchPredictor::note_control_transfer`]).
    #[inline]
    pub fn note_control_transfer(&mut self, record: &BranchRecord) {
        dispatch!(self, p => p.note_control_transfer(record))
    }

    /// The scheme's report name (see [`BranchPredictor::name`]).
    pub fn name(&self) -> String {
        dispatch!(self, p => p.name())
    }

    /// Total predictor state in bits (see
    /// [`BranchPredictor::state_bits`]).
    pub fn state_bits(&self) -> u64 {
        dispatch!(self, p => p.state_bits())
    }

    /// Second-level aliasing statistics, when tracked (see
    /// [`BranchPredictor::alias_stats`]).
    pub fn alias_stats(&self) -> Option<AliasStats> {
        dispatch!(self, p => p.alias_stats())
    }

    /// First-level table statistics, when present (see
    /// [`BranchPredictor::bht_stats`]).
    pub fn bht_stats(&self) -> Option<BhtStats> {
        dispatch!(self, p => p.bht_stats())
    }
}

/// Rank-2 visitor over a kernel's concrete scheme.
///
/// [`PredictorKernel::visit`] resolves the enum variant *once* and
/// hands the visitor the owned concrete predictor, so code generic
/// over [`BranchPredictor`] — a whole replay loop, say — monomorphizes
/// per scheme instead of re-dispatching per call. `rewrap` is the
/// variant's own constructor, for handing the predictor back when the
/// visitor is done with it.
pub trait KernelVisitor {
    /// What the visit produces.
    type Output;

    /// Receives the kernel's concrete scheme.
    fn visit<P: BranchPredictor>(
        self,
        predictor: P,
        rewrap: fn(P) -> PredictorKernel,
    ) -> Self::Output;
}

impl PredictorKernel {
    /// Consumes the kernel, resolving its variant once and handing the
    /// concrete scheme to `visitor` — the hoisted dispatch that lets a
    /// replay loop run fully monomorphized (see
    /// `ReplayCore::replay_dispatched` in `bpred-sim`).
    pub fn visit<V: KernelVisitor>(self, visitor: V) -> V::Output {
        match self {
            PredictorKernel::AlwaysTaken(p) => visitor.visit(p, PredictorKernel::AlwaysTaken),
            PredictorKernel::AlwaysNotTaken(p) => visitor.visit(p, PredictorKernel::AlwaysNotTaken),
            PredictorKernel::Btfn(p) => visitor.visit(p, PredictorKernel::Btfn),
            PredictorKernel::LastTime(p) => visitor.visit(p, PredictorKernel::LastTime),
            PredictorKernel::AddressIndexed(p) => visitor.visit(p, PredictorKernel::AddressIndexed),
            PredictorKernel::Gas(p) => visitor.visit(p, PredictorKernel::Gas),
            PredictorKernel::Gshare(p) => visitor.visit(p, PredictorKernel::Gshare),
            PredictorKernel::Path(p) => visitor.visit(p, PredictorKernel::Path),
            PredictorKernel::PasPerfect(p) => visitor.visit(p, PredictorKernel::PasPerfect),
            PredictorKernel::PasFinite(p) => visitor.visit(p, PredictorKernel::PasFinite),
            PredictorKernel::Tournament(p) => visitor.visit(p, PredictorKernel::Tournament),
            PredictorKernel::Sas(p) => visitor.visit(p, PredictorKernel::Sas),
            PredictorKernel::Agree(p) => visitor.visit(p, PredictorKernel::Agree),
            PredictorKernel::BiMode(p) => visitor.visit(p, PredictorKernel::BiMode),
            PredictorKernel::Gskew(p) => visitor.visit(p, PredictorKernel::Gskew),
            PredictorKernel::Yags(p) => visitor.visit(p, PredictorKernel::Yags),
            PredictorKernel::Boxed(p) => visitor.visit(p, PredictorKernel::Boxed),
        }
    }
}

impl fmt::Debug for PredictorKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredictorKernel({})", self.name())
    }
}

impl From<Box<dyn BranchPredictor>> for PredictorKernel {
    fn from(predictor: Box<dyn BranchPredictor>) -> Self {
        PredictorKernel::boxed(predictor)
    }
}

/// A kernel is itself a predictor, so observer code and legacy
/// harnesses can treat both uniformly.
impl BranchPredictor for PredictorKernel {
    #[inline]
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        PredictorKernel::predict(self, pc, target)
    }

    #[inline]
    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        PredictorKernel::update(self, pc, target, outcome)
    }

    #[inline]
    fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        PredictorKernel::predict_then_update(self, pc, target, outcome)
    }

    #[inline]
    fn note_control_transfer(&mut self, record: &BranchRecord) {
        PredictorKernel::note_control_transfer(self, record)
    }

    fn name(&self) -> String {
        PredictorKernel::name(self)
    }

    fn state_bits(&self) -> u64 {
        PredictorKernel::state_bits(self)
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        PredictorKernel::alias_stats(self)
    }

    fn bht_stats(&self) -> Option<BhtStats> {
        PredictorKernel::bht_stats(self)
    }
}

impl PredictorConfig {
    /// Builds this configuration as an enum-dispatched kernel.
    ///
    /// Behaviour is bit-identical to [`build`](Self::build); the only
    /// difference is dispatch cost in the replay loop.
    pub fn kernel(&self) -> PredictorKernel {
        match *self {
            PredictorConfig::AlwaysTaken => PredictorKernel::AlwaysTaken(AlwaysTaken),
            PredictorConfig::AlwaysNotTaken => PredictorKernel::AlwaysNotTaken(AlwaysNotTaken),
            PredictorConfig::Btfn => PredictorKernel::Btfn(Btfn),
            PredictorConfig::LastTime { addr_bits } => {
                PredictorKernel::LastTime(LastTime::new(addr_bits))
            }
            PredictorConfig::AddressIndexed { addr_bits } => {
                PredictorKernel::AddressIndexed(AddressIndexed::new(addr_bits))
            }
            PredictorConfig::Gas {
                history_bits,
                col_bits,
            } => PredictorKernel::Gas(Gas::new(history_bits, col_bits)),
            PredictorConfig::Gshare {
                history_bits,
                col_bits,
            } => PredictorKernel::Gshare(Gshare::new(history_bits, col_bits)),
            PredictorConfig::Path {
                row_bits,
                col_bits,
                bits_per_target,
            } => PredictorKernel::Path(PathBased::new(row_bits, col_bits, bits_per_target)),
            PredictorConfig::PasInfinite {
                history_bits,
                col_bits,
            } => PredictorKernel::PasPerfect(Pas::perfect(history_bits, col_bits)),
            PredictorConfig::PasFinite {
                history_bits,
                col_bits,
                entries,
                ways,
            } => PredictorKernel::PasFinite(Pas::with_bht(
                history_bits,
                col_bits,
                entries as usize,
                ways as usize,
            )),
            PredictorConfig::Tournament {
                addr_bits,
                history_bits,
                chooser_bits,
            } => PredictorKernel::Tournament(Combining::new(
                AddressIndexed::new(addr_bits),
                Gshare::new(history_bits, 0),
                chooser_bits,
            )),
            PredictorConfig::Sas {
                history_bits,
                set_bits,
                col_bits,
            } => PredictorKernel::Sas(Sas::new(history_bits, set_bits, col_bits)),
            PredictorConfig::Agree {
                history_bits,
                index_bits,
            } => PredictorKernel::Agree(Agree::new(history_bits, index_bits)),
            PredictorConfig::BiMode {
                history_bits,
                direction_bits,
                choice_bits,
            } => PredictorKernel::BiMode(BiMode::new(history_bits, direction_bits, choice_bits)),
            PredictorConfig::Gskew {
                history_bits,
                bank_bits,
            } => PredictorKernel::Gskew(Gskew::new(history_bits, bank_bits)),
            PredictorConfig::Yags {
                choice_bits,
                cache_bits,
                tag_bits,
            } => PredictorKernel::Yags(Yags::new(choice_bits, cache_bits, tag_bits)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::Outcome;

    fn every_config() -> Vec<PredictorConfig> {
        vec![
            PredictorConfig::AlwaysTaken,
            PredictorConfig::AlwaysNotTaken,
            PredictorConfig::Btfn,
            PredictorConfig::LastTime { addr_bits: 4 },
            PredictorConfig::AddressIndexed { addr_bits: 4 },
            PredictorConfig::Gas {
                history_bits: 5,
                col_bits: 2,
            },
            PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 2,
            },
            PredictorConfig::Path {
                row_bits: 5,
                col_bits: 2,
                bits_per_target: 2,
            },
            PredictorConfig::PasInfinite {
                history_bits: 4,
                col_bits: 1,
            },
            PredictorConfig::PasFinite {
                history_bits: 4,
                col_bits: 1,
                entries: 32,
                ways: 2,
            },
            PredictorConfig::Tournament {
                addr_bits: 4,
                history_bits: 4,
                chooser_bits: 4,
            },
            PredictorConfig::Sas {
                history_bits: 4,
                set_bits: 2,
                col_bits: 1,
            },
            PredictorConfig::Agree {
                history_bits: 5,
                index_bits: 6,
            },
            PredictorConfig::BiMode {
                history_bits: 5,
                direction_bits: 5,
                choice_bits: 5,
            },
            PredictorConfig::Gskew {
                history_bits: 5,
                bank_bits: 5,
            },
            PredictorConfig::Yags {
                choice_bits: 5,
                cache_bits: 4,
                tag_bits: 4,
            },
        ]
    }

    /// A little deterministic branch workload touching several pcs.
    fn drive(p: &mut impl BranchPredictor) -> (Vec<Outcome>, String, u64) {
        let mut outcomes = Vec::new();
        for i in 0..600u64 {
            let pc = 0x400 + 4 * (i % 13);
            let outcome = Outcome::from((i * 7) % 5 < 3);
            outcomes.push(p.predict(pc, 0x100 + 8 * (i % 3)));
            p.update(pc, 0x100 + 8 * (i % 3), outcome);
            if i % 9 == 0 {
                p.note_control_transfer(&BranchRecord::jump(pc + 4, 0x900 + 16 * (i % 4)));
            }
        }
        (outcomes, p.name(), p.state_bits())
    }

    #[test]
    fn kernel_matches_boxed_for_every_variant() {
        for config in every_config() {
            let mut kernel = config.kernel();
            let mut boxed = config.build();
            assert_eq!(drive(&mut kernel), drive(&mut boxed), "{config}");
            assert_eq!(kernel.alias_stats(), boxed.alias_stats(), "{config}");
            assert_eq!(kernel.bht_stats(), boxed.bht_stats(), "{config}");
        }
    }

    #[test]
    fn no_config_built_kernel_pays_for_the_boxed_fallback() {
        for config in every_config() {
            assert!(
                !matches!(config.kernel(), PredictorKernel::Boxed(_)),
                "{config} fell back to virtual dispatch"
            );
        }
    }

    #[test]
    fn boxed_fallback_wraps_arbitrary_predictors() {
        let inner = PredictorConfig::Gshare {
            history_bits: 4,
            col_bits: 1,
        };
        let mut kernel = PredictorKernel::boxed(inner.build());
        let mut reference = inner.build();
        assert_eq!(drive(&mut kernel), drive(&mut reference));
        let via_from: PredictorKernel = inner.build().into();
        assert_eq!(via_from.name(), reference.name());
    }

    #[test]
    fn kernel_is_a_branch_predictor() {
        // The trait impl delegates to the inherent methods, so a kernel
        // can sit behind `&mut dyn BranchPredictor` too.
        let mut kernel = PredictorConfig::AddressIndexed { addr_bits: 3 }.kernel();
        let p: &mut dyn BranchPredictor = &mut kernel;
        let _ = p.predict(0x40, 0x20);
        p.update(0x40, 0x20, Outcome::Taken);
        assert_eq!(p.name(), "address-indexed(2^3)");
    }
}
