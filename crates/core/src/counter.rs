use std::fmt;

use bpred_trace::Outcome;

/// The four states of the classic two-bit saturating counter
/// (Smith 1981), ordered from strongly not-taken to strongly taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterState {
    /// 00 — predict not taken; a taken outcome moves to weakly not-taken.
    StrongNotTaken,
    /// 01 — predict not taken.
    WeakNotTaken,
    /// 10 — predict taken.
    WeakTaken,
    /// 11 — predict taken; a not-taken outcome moves to weakly taken.
    StrongTaken,
}

impl CounterState {
    /// All states in numeric order.
    pub const ALL: [CounterState; 4] = [
        CounterState::StrongNotTaken,
        CounterState::WeakNotTaken,
        CounterState::WeakTaken,
        CounterState::StrongTaken,
    ];

    /// The state's two-bit encoding (0–3).
    #[inline]
    pub fn bits(self) -> u8 {
        match self {
            CounterState::StrongNotTaken => 0,
            CounterState::WeakNotTaken => 1,
            CounterState::WeakTaken => 2,
            CounterState::StrongTaken => 3,
        }
    }

    /// Decodes a two-bit encoding. Values above 3 return `None`.
    #[inline]
    pub fn from_bits(bits: u8) -> Option<Self> {
        Some(match bits {
            0 => CounterState::StrongNotTaken,
            1 => CounterState::WeakNotTaken,
            2 => CounterState::WeakTaken,
            3 => CounterState::StrongTaken,
            _ => return None,
        })
    }
}

impl fmt::Display for CounterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CounterState::StrongNotTaken => "strong-not-taken",
            CounterState::WeakNotTaken => "weak-not-taken",
            CounterState::WeakTaken => "weak-taken",
            CounterState::StrongTaken => "strong-taken",
        };
        f.write_str(s)
    }
}

/// A two-bit saturating counter — the adaptive state machine in the
/// second-level table of every "A" scheme in the Yeh–Patt taxonomy.
///
/// # Examples
///
/// ```
/// use bpred_core::{CounterState, TwoBitCounter};
/// use bpred_trace::Outcome;
///
/// let mut c = TwoBitCounter::new(CounterState::WeakNotTaken);
/// assert_eq!(c.predict(), Outcome::NotTaken);
/// c.train(Outcome::Taken);
/// assert_eq!(c.predict(), Outcome::Taken); // weak taken now
/// c.train(Outcome::Taken);
/// c.train(Outcome::Taken); // saturates at strong taken
/// assert_eq!(c.state(), CounterState::StrongTaken);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoBitCounter {
    bits: u8,
}

/// The saturating two-bit transition, branch-free: `bits` moves one
/// step toward the outcome and clamps at the strong states. Shared by
/// [`TwoBitCounter`] and the packed-cell
/// [`CounterTable`](crate::CounterTable) hot path, which stores raw
/// counter bits instead of a state enum.
#[inline]
pub(crate) fn next_counter_bits(bits: u8, outcome: Outcome) -> u8 {
    let step = (outcome.is_taken() as i8) * 2 - 1;
    (bits as i8 + step).clamp(0, 3) as u8
}

impl TwoBitCounter {
    /// Creates a counter in the given initial state.
    #[inline]
    pub fn new(state: CounterState) -> Self {
        TwoBitCounter { bits: state.bits() }
    }

    /// The current state.
    #[inline]
    pub fn state(self) -> CounterState {
        CounterState::from_bits(self.bits).expect("two-bit value")
    }

    /// The direction this counter currently predicts.
    #[inline]
    pub fn predict(self) -> Outcome {
        Outcome::from(self.bits >= 2)
    }

    /// Advances the state machine with an observed outcome, saturating
    /// at the strong states.
    #[inline]
    pub fn train(&mut self, outcome: Outcome) {
        self.bits = next_counter_bits(self.bits, outcome);
    }
}

impl Default for TwoBitCounter {
    /// Weakly taken — the workspace default initial state. Most dynamic
    /// branches are taken (loops), so this trains fastest; it is also
    /// what the ablation harness varies.
    fn default() -> Self {
        TwoBitCounter::new(CounterState::WeakTaken)
    }
}

/// An `n`-bit saturating up/down counter predicting taken when in the
/// upper half of its range. Generalises [`TwoBitCounter`] for ablation
/// studies of counter width.
///
/// # Examples
///
/// ```
/// use bpred_core::SaturatingCounter;
/// use bpred_trace::Outcome;
///
/// let mut c = SaturatingCounter::new(3, 4); // 3-bit counter starting at 4
/// assert_eq!(c.predict(), Outcome::Taken);
/// for _ in 0..10 {
///     c.train(Outcome::NotTaken);
/// }
/// assert_eq!(c.value(), 0); // saturated low
/// assert_eq!(c.predict(), Outcome::NotTaken);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates an `n`-bit counter (`1 ≤ n ≤ 16`) starting at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, or if `value` does not
    /// fit in `bits` bits.
    pub fn new(bits: u32, value: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "counter width {bits} out of range 1..=16"
        );
        let max = (1u32 << bits) - 1;
        assert!(value <= max, "initial value {value} exceeds {max}");
        SaturatingCounter { value, max }
    }

    /// The current counter value.
    #[inline]
    pub fn value(self) -> u32 {
        self.value
    }

    /// The maximum (saturated) value, `2^bits - 1`.
    #[inline]
    pub fn max(self) -> u32 {
        self.max
    }

    /// Predicts taken when the value is in the upper half of the range.
    #[inline]
    pub fn predict(self) -> Outcome {
        Outcome::from(2 * self.value > self.max)
    }

    /// Counts up on taken, down on not-taken, saturating at the ends.
    #[inline]
    pub fn train(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Taken => {
                if self.value < self.max {
                    self.value += 1;
                }
            }
            Outcome::NotTaken => {
                self.value = self.value.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip() {
        for s in CounterState::ALL {
            assert_eq!(CounterState::from_bits(s.bits()), Some(s));
        }
        assert_eq!(CounterState::from_bits(4), None);
    }

    #[test]
    fn prediction_threshold() {
        assert_eq!(
            TwoBitCounter::new(CounterState::StrongNotTaken).predict(),
            Outcome::NotTaken
        );
        assert_eq!(
            TwoBitCounter::new(CounterState::WeakNotTaken).predict(),
            Outcome::NotTaken
        );
        assert_eq!(
            TwoBitCounter::new(CounterState::WeakTaken).predict(),
            Outcome::Taken
        );
        assert_eq!(
            TwoBitCounter::new(CounterState::StrongTaken).predict(),
            Outcome::Taken
        );
    }

    #[test]
    fn saturates_at_both_ends() {
        let mut c = TwoBitCounter::new(CounterState::StrongTaken);
        c.train(Outcome::Taken);
        assert_eq!(c.state(), CounterState::StrongTaken);
        let mut c = TwoBitCounter::new(CounterState::StrongNotTaken);
        c.train(Outcome::NotTaken);
        assert_eq!(c.state(), CounterState::StrongNotTaken);
    }

    #[test]
    fn hysteresis_requires_two_misses_to_flip() {
        let mut c = TwoBitCounter::new(CounterState::StrongTaken);
        c.train(Outcome::NotTaken);
        assert_eq!(c.predict(), Outcome::Taken); // still predicts taken
        c.train(Outcome::NotTaken);
        assert_eq!(c.predict(), Outcome::NotTaken);
    }

    #[test]
    fn transitions_are_adjacent() {
        for s in CounterState::ALL {
            for o in [Outcome::Taken, Outcome::NotTaken] {
                let mut c = TwoBitCounter::new(s);
                c.train(o);
                let diff = (c.state().bits() as i8 - s.bits() as i8).abs();
                assert!(diff <= 1);
            }
        }
    }

    #[test]
    fn default_is_weak_taken() {
        assert_eq!(TwoBitCounter::default().state(), CounterState::WeakTaken);
    }

    #[test]
    fn wide_counter_matches_two_bit_semantics() {
        // A 2-bit SaturatingCounter behaves exactly like TwoBitCounter.
        for init in 0..4u32 {
            let mut wide = SaturatingCounter::new(2, init);
            let mut narrow = TwoBitCounter::new(CounterState::from_bits(init as u8).unwrap());
            for o in [
                Outcome::Taken,
                Outcome::Taken,
                Outcome::NotTaken,
                Outcome::Taken,
                Outcome::NotTaken,
                Outcome::NotTaken,
                Outcome::NotTaken,
            ] {
                assert_eq!(wide.predict(), narrow.predict(), "init {init}");
                wide.train(o);
                narrow.train(o);
            }
        }
    }

    #[test]
    fn saturating_counter_bounds() {
        let mut c = SaturatingCounter::new(3, 7);
        c.train(Outcome::Taken);
        assert_eq!(c.value(), 7);
        for _ in 0..20 {
            c.train(Outcome::NotTaken);
        }
        assert_eq!(c.value(), 0);
        assert_eq!(c.max(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_counter_panics() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_init_panics() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn one_bit_counter_is_last_time() {
        let mut c = SaturatingCounter::new(1, 0);
        assert_eq!(c.predict(), Outcome::NotTaken);
        c.train(Outcome::Taken);
        assert_eq!(c.predict(), Outcome::Taken);
        c.train(Outcome::NotTaken);
        assert_eq!(c.predict(), Outcome::NotTaken);
    }
}
