//! Branch target buffer.
//!
//! Direction prediction is only half the fetch problem: the paper's §2
//! lists "the availability or lack of availability of the branch
//! target instruction" among the penalty factors, and §5 notes that
//! real designs "integrate the branch history cache with a branch
//! target buffer" to avoid paying for first-level tags twice. This
//! module provides that substrate: a set-associative, tagged BTB with
//! LRU replacement and hit/mispredicted-target statistics, so
//! fetch-path studies can charge target misses alongside direction
//! misses.

use crate::bht::BhtStats;

/// Statistics for a [`BranchTargetBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found an entry for the branch.
    pub hits: u64,
    /// Hits whose stored target differed from the branch's actual
    /// target this execution (stale targets, e.g. indirect branches).
    pub wrong_target: u64,
}

impl BtbStats {
    /// Fraction of lookups that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of hits that supplied a stale target.
    pub fn wrong_target_rate(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.wrong_target as f64 / self.hits as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    /// `u64::MAX` marks an invalid entry.
    tag: u64,
    target: u64,
    last_use: u64,
}

impl BtbEntry {
    const INVALID: BtbEntry = BtbEntry {
        tag: u64::MAX,
        target: 0,
        last_use: 0,
    };
}

/// A set-associative branch target buffer with LRU replacement.
///
/// # Examples
///
/// ```
/// use bpred_core::BranchTargetBuffer;
///
/// let mut btb = BranchTargetBuffer::new(64, 4);
/// assert_eq!(btb.lookup(0x400), None);
/// btb.record(0x400, 0x1200);
/// assert_eq!(btb.lookup(0x400), Some(0x1200));
/// assert!(btb.stats().hit_rate() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    sets: usize,
    ways: usize,
    entries: Vec<BtbEntry>,
    clock: u64,
    stats: BtbStats,
}

impl BranchTargetBuffer {
    /// Creates a BTB of `entries` total entries with `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `ways` does not
    /// divide it, or the set count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        BranchTargetBuffer {
            sets,
            ways,
            entries: vec![BtbEntry::INVALID; entries],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Storage cost in bits, counting the target field (30 bits of
    /// word address) and tag per entry.
    pub fn state_bits(&self) -> u64 {
        // 30-bit stored target + (30 - index bits) tag per entry.
        let tag_bits = 30 - self.sets.trailing_zeros() as u64;
        (self.sets * self.ways) as u64 * (30 + tag_bits)
    }

    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        let word = pc >> 2;
        (
            (word as usize) & (self.sets - 1),
            word >> self.sets.trailing_zeros(),
        )
    }

    /// Looks up the predicted target for the branch at `pc`, updating
    /// hit statistics and LRU state.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stats.lookups += 1;
        self.clock += 1;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        for entry in &mut self.entries[base..base + self.ways] {
            if entry.tag == tag {
                entry.last_use = self.clock;
                self.stats.hits += 1;
                return Some(entry.target);
            }
        }
        None
    }

    /// Records the resolved `target` of a taken branch at `pc`,
    /// allocating (LRU) on a miss and counting stale targets on hits.
    pub fn record(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let clock = self.clock;
        // Hit: refresh the target.
        for entry in &mut self.entries[base..base + self.ways] {
            if entry.tag == tag {
                if entry.target != target {
                    self.stats.wrong_target += 1;
                    entry.target = target;
                }
                entry.last_use = clock;
                return;
            }
        }
        // Miss: evict LRU.
        let victim = self.entries[base..base + self.ways]
            .iter_mut()
            .min_by_key(|e| e.last_use)
            .expect("at least one way");
        *victim = BtbEntry {
            tag,
            target,
            last_use: clock,
        };
    }

    /// Convenience view of the BTB as a first-level-tag provider: the
    /// hit/miss statistics in [`BhtStats`] form, for comparison with
    /// [`SetAssocBht`](crate::SetAssocBht) miss rates when studying
    /// integrated designs.
    pub fn as_bht_stats(&self) -> BhtStats {
        BhtStats {
            accesses: self.stats.lookups,
            misses: self.stats.lookups - self.stats.hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = BranchTargetBuffer::new(16, 2);
        assert_eq!(btb.lookup(0x400), None);
        btb.record(0x400, 0x900);
        assert_eq!(btb.lookup(0x400), Some(0x900));
        let s = btb.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn stale_targets_are_counted_and_replaced() {
        let mut btb = BranchTargetBuffer::new(8, 1);
        btb.record(0x40, 0x100);
        btb.record(0x40, 0x200); // indirect branch changed target
        assert_eq!(btb.stats().wrong_target, 1);
        assert_eq!(btb.lookup(0x40), Some(0x200));
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // 2-way, 2 sets: words 0,2,4 all map to set 0.
        let mut btb = BranchTargetBuffer::new(4, 2);
        btb.record(0x00, 0xA);
        btb.record(0x08, 0xB);
        let _ = btb.lookup(0x00); // A is MRU
        btb.record(0x10, 0xC); // evicts B
        assert_eq!(btb.lookup(0x00), Some(0xA));
        assert_eq!(btb.lookup(0x08), None);
        assert_eq!(btb.lookup(0x10), Some(0xC));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut btb = BranchTargetBuffer::new(4, 1);
        btb.record(0x00, 0xA); // set 0
        btb.record(0x04, 0xB); // set 1
        btb.record(0x08, 0xC); // set 2
        assert_eq!(btb.lookup(0x00), Some(0xA));
        assert_eq!(btb.lookup(0x04), Some(0xB));
        assert_eq!(btb.lookup(0x08), Some(0xC));
    }

    #[test]
    fn rates_are_fractions() {
        let mut btb = BranchTargetBuffer::new(8, 2);
        for i in 0..20u64 {
            let pc = 0x40 + 4 * (i % 5);
            if btb.lookup(pc).is_none() {
                btb.record(pc, 0x100 + pc);
            }
        }
        let s = btb.stats();
        assert!(s.hits <= s.lookups);
        assert!((0.0..=1.0).contains(&s.hit_rate()));
        assert!((0.0..=1.0).contains(&s.wrong_target_rate()));
        let bht_view = btb.as_bht_stats();
        assert_eq!(bht_view.accesses, s.lookups);
        assert_eq!(bht_view.misses, s.lookups - s.hits);
    }

    #[test]
    fn state_bits_include_tags() {
        let btb = BranchTargetBuffer::new(64, 4); // 16 sets -> 4 index bits
        assert_eq!(btb.state_bits(), 64 * (30 + 26));
        assert_eq!(btb.entries(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_sized_btb_panics() {
        let _ = BranchTargetBuffer::new(12, 2);
    }
}
