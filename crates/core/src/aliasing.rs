//! Aliasing accounting.
//!
//! The paper's central measurement: an *aliasing conflict* occurs when
//! "consecutive branch instances accessing a particular counter arise
//! from distinct branches" — the analogue of a conflict miss in a
//! direct-mapped cache (§3). Conflicts are *harmless* when the competing
//! branches would train the counter identically; the paper singles out
//! the all-ones global-history pattern (every recorded branch taken,
//! i.e. tight loops), observing that "approximately a fifth of the
//! aliasing for the larger benchmarks was for the pattern with all
//! recorded branches taken" (§3).

use std::fmt;
use std::ops::AddAssign;

/// Aliasing counters accumulated by an instrumented predictor table.
///
/// # Examples
///
/// ```
/// use bpred_core::AliasStats;
///
/// let mut stats = AliasStats::default();
/// stats.record_access(true, false);
/// stats.record_access(true, true);
/// stats.record_access(false, false);
/// assert_eq!(stats.accesses, 3);
/// assert_eq!(stats.conflicts, 2);
/// assert_eq!(stats.harmless_conflicts, 1);
/// assert!((stats.conflict_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasStats {
    /// Total accesses to the table (one per predicted branch).
    pub accesses: u64,
    /// Accesses whose counter was last touched by a different branch.
    pub conflicts: u64,
    /// Conflicts that occurred under the all-taken history pattern —
    /// the paper's harmless tight-loop aliasing.
    pub harmless_conflicts: u64,
}

impl AliasStats {
    /// Records one table access.
    ///
    /// `conflict` is true when the previous access to the same counter
    /// came from a different branch address; `all_taken_pattern` is true
    /// when the row was selected by an all-ones history pattern.
    #[inline]
    pub fn record_access(&mut self, conflict: bool, all_taken_pattern: bool) {
        // Branch-free: this sits on the per-record replay path, where a
        // data-dependent branch per access costs more than two adds.
        self.accesses += 1;
        self.conflicts += conflict as u64;
        self.harmless_conflicts += (conflict & all_taken_pattern) as u64;
    }

    /// Fraction of accesses that conflicted (the paper's "aliasing
    /// rate", the z-axis of Figure 5). Zero for an untouched table.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses with a *harmful* (non-all-ones) conflict.
    pub fn harmful_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.conflicts - self.harmless_conflicts) as f64 / self.accesses as f64
        }
    }

    /// Share of conflicts that were harmless, or 0 when there were no
    /// conflicts.
    pub fn harmless_share(&self) -> f64 {
        if self.conflicts == 0 {
            0.0
        } else {
            self.harmless_conflicts as f64 / self.conflicts as f64
        }
    }
}

impl AddAssign for AliasStats {
    fn add_assign(&mut self, rhs: AliasStats) {
        self.accesses += rhs.accesses;
        self.conflicts += rhs.conflicts;
        self.harmless_conflicts += rhs.harmless_conflicts;
    }
}

impl fmt::Display for AliasStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} conflicts ({:.2}%, {:.0}% harmless)",
            self.accesses,
            self.conflicts,
            100.0 * self.conflict_rate(),
            100.0 * self.harmless_share()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = AliasStats::default();
        assert_eq!(s.conflict_rate(), 0.0);
        assert_eq!(s.harmful_rate(), 0.0);
        assert_eq!(s.harmless_share(), 0.0);
    }

    #[test]
    fn harmless_only_counted_on_conflict() {
        let mut s = AliasStats::default();
        s.record_access(false, true); // all-ones but no conflict
        assert_eq!(s.harmless_conflicts, 0);
        s.record_access(true, true);
        assert_eq!(s.harmless_conflicts, 1);
    }

    #[test]
    fn invariants_hold() {
        let mut s = AliasStats::default();
        for i in 0..100u64 {
            s.record_access(i % 3 == 0, i % 6 == 0);
        }
        assert!(s.conflicts <= s.accesses);
        assert!(s.harmless_conflicts <= s.conflicts);
        let total = s.harmful_rate() + s.harmless_conflicts as f64 / s.accesses as f64;
        assert!((total - s.conflict_rate()).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = AliasStats {
            accesses: 10,
            conflicts: 4,
            harmless_conflicts: 1,
        };
        a += AliasStats {
            accesses: 5,
            conflicts: 2,
            harmless_conflicts: 2,
        };
        assert_eq!(a.accesses, 15);
        assert_eq!(a.conflicts, 6);
        assert_eq!(a.harmless_conflicts, 3);
    }

    #[test]
    fn display_mentions_percentages() {
        let s = AliasStats {
            accesses: 200,
            conflicts: 50,
            harmless_conflicts: 10,
        };
        let text = s.to_string();
        assert!(text.contains("25.00%"));
        assert!(text.contains("20% harmless"));
    }
}
