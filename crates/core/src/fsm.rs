//! Arbitrary two-bit predictor state machines.
//!
//! The saturating counter is only one of the 2-bit FSMs; Nair's
//! exhaustive search ("Optimal 2-bit branch predictors", 1995 — the
//! same author as the path scheme in Figure 8) showed several
//! alternatives match or beat it on particular workloads. [`FsmSpec`]
//! describes any 4-state machine by its transition and output tables,
//! and [`FsmTable`]/[`FsmPredictor`] run an address-indexed predictor
//! over it, so counter-design ablations can explore the full space.

use std::fmt;

use bpred_trace::Outcome;

use crate::history::low_mask;
use crate::{AliasStats, BranchPredictor};

/// A 4-state predictor FSM: for each state, the predicted direction
/// and the successor states on taken/not-taken outcomes.
///
/// # Examples
///
/// ```
/// use bpred_core::FsmSpec;
/// use bpred_trace::Outcome;
///
/// let counter = FsmSpec::saturating_counter();
/// assert_eq!(counter.predict(3), Outcome::Taken);
/// assert_eq!(counter.next(3, Outcome::NotTaken), 2);
/// counter.validate().expect("the classic counter is well-formed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FsmSpec {
    /// `predict[s]` — direction predicted in state `s` (0–3).
    pub predict: [bool; 4],
    /// `on_taken[s]` — successor of state `s` after a taken outcome.
    pub on_taken: [u8; 4],
    /// `on_not_taken[s]` — successor after a not-taken outcome.
    pub on_not_taken: [u8; 4],
}

/// Error returned by [`FsmSpec::validate`] for malformed machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFsmError {
    message: String,
}

impl fmt::Display for InvalidFsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid predictor FSM: {}", self.message)
    }
}

impl std::error::Error for InvalidFsmError {}

impl FsmSpec {
    /// The classic two-bit saturating counter (states 0..=3 from
    /// strong-not-taken to strong-taken).
    pub fn saturating_counter() -> Self {
        FsmSpec {
            predict: [false, false, true, true],
            on_taken: [1, 2, 3, 3],
            on_not_taken: [0, 0, 1, 2],
        }
    }

    /// One-bit last-time prediction embedded in the 4-state space
    /// (states 2/3 unused).
    pub fn last_time() -> Self {
        FsmSpec {
            predict: [false, true, false, true],
            on_taken: [1, 1, 1, 1],
            on_not_taken: [0, 0, 0, 0],
        }
    }

    /// A hysteresis variant that returns to the *strong* state on a
    /// confirming outcome but flips prediction immediately after two
    /// consecutive surprises (Nair's "A2" shape).
    pub fn two_mispredict_flip() -> Self {
        FsmSpec {
            predict: [false, false, true, true],
            // From weak states a confirming outcome jumps to strong.
            on_taken: [1, 3, 3, 3],
            on_not_taken: [0, 0, 0, 2],
        }
    }

    /// Checks state indices are in range; returns a descriptive error
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFsmError`] naming the offending entry.
    pub fn validate(&self) -> Result<(), InvalidFsmError> {
        for (name, table) in [
            ("on_taken", &self.on_taken),
            ("on_not_taken", &self.on_not_taken),
        ] {
            for (state, &next) in table.iter().enumerate() {
                if next > 3 {
                    return Err(InvalidFsmError {
                        message: format!("{name}[{state}] = {next} is not a state"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The prediction in `state` (masked to two bits).
    #[inline]
    pub fn predict(&self, state: u8) -> Outcome {
        Outcome::from(self.predict[usize::from(state & 3)])
    }

    /// The successor of `state` under `outcome`.
    #[inline]
    pub fn next(&self, state: u8, outcome: Outcome) -> u8 {
        let s = usize::from(state & 3);
        match outcome {
            Outcome::Taken => self.on_taken[s],
            Outcome::NotTaken => self.on_not_taken[s],
        }
    }
}

/// An address-indexed predictor over an arbitrary [`FsmSpec`] —
/// the drop-in counterpart of
/// [`AddressIndexed`](crate::AddressIndexed) for counter-design
/// ablations. Aliasing is instrumented exactly like the counter
/// tables.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, FsmPredictor, FsmSpec};
/// use bpred_trace::Outcome;
///
/// let mut p = FsmPredictor::new(FsmSpec::last_time(), 6, 1);
/// p.update(0x40, 0x10, Outcome::Taken);
/// assert_eq!(p.predict(0x40, 0x10), Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct FsmPredictor {
    spec: FsmSpec,
    states: Vec<u8>,
    last_pc: Vec<u64>,
    addr_bits: u32,
    stats: AliasStats,
}

impl FsmPredictor {
    /// Creates a table of `2^addr_bits` machines, each starting in
    /// `initial_state`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`FsmSpec::validate`], `addr_bits`
    /// exceeds 30, or `initial_state` is not a state.
    pub fn new(spec: FsmSpec, addr_bits: u32, initial_state: u8) -> Self {
        spec.validate().expect("FSM spec must be well-formed");
        assert!(
            addr_bits <= 30,
            "table of 2^{addr_bits} machines is too large"
        );
        assert!(
            initial_state <= 3,
            "initial state {initial_state} is not a state"
        );
        FsmPredictor {
            spec,
            states: vec![initial_state; 1usize << addr_bits],
            last_pc: vec![u64::MAX; 1usize << addr_bits],
            addr_bits,
            stats: AliasStats::default(),
        }
    }

    /// The machine description.
    pub fn spec(&self) -> FsmSpec {
        self.spec
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & low_mask(self.addr_bits)) as usize
    }
}

impl BranchPredictor for FsmPredictor {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let idx = self.index(pc);
        let conflict = self.last_pc[idx] != u64::MAX && self.last_pc[idx] != pc;
        self.stats.record_access(conflict, false);
        self.last_pc[idx] = pc;
        self.spec.predict(self.states[idx])
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        let idx = self.index(pc);
        self.states[idx] = self.spec.next(self.states[idx], outcome);
    }

    fn name(&self) -> String {
        format!("fsm(2^{})", self.addr_bits)
    }

    fn state_bits(&self) -> u64 {
        2 * self.states.len() as u64
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressIndexed;

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn builtin_specs_validate() {
        FsmSpec::saturating_counter().validate().unwrap();
        FsmSpec::last_time().validate().unwrap();
        FsmSpec::two_mispredict_flip().validate().unwrap();
    }

    #[test]
    fn malformed_spec_is_rejected() {
        let mut spec = FsmSpec::saturating_counter();
        spec.on_taken[2] = 7;
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("on_taken[2] = 7"));
    }

    #[test]
    fn counter_spec_reproduces_address_indexed() {
        // FsmPredictor with the saturating-counter spec and weak-taken
        // start must be prediction-identical to AddressIndexed.
        let mut fsm = FsmPredictor::new(FsmSpec::saturating_counter(), 5, 2);
        let mut reference = AddressIndexed::new(5);
        for i in 0..600u64 {
            let pc = 0x400 + 4 * (i % 23);
            let out = Outcome::from((i * 5) % 7 < 4);
            assert_eq!(
                step(&mut fsm, pc, out),
                step(&mut reference, pc, out),
                "step {i}"
            );
        }
    }

    #[test]
    fn last_time_spec_flips_immediately() {
        let mut p = FsmPredictor::new(FsmSpec::last_time(), 3, 0);
        step(&mut p, 0x40, Outcome::Taken);
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::Taken);
        assert_eq!(step(&mut p, 0x40, Outcome::Taken), Outcome::NotTaken);
    }

    #[test]
    fn two_mispredict_flip_resists_single_surprises() {
        let mut p = FsmPredictor::new(FsmSpec::two_mispredict_flip(), 3, 3);
        // Strong taken; one surprise must not flip the prediction...
        step(&mut p, 0x40, Outcome::NotTaken);
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::Taken);
        // ...but the second consecutive one must.
        assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::NotTaken);
    }

    #[test]
    fn recovery_is_faster_than_the_counter_after_a_flip() {
        // After flipping, the A2-style machine returns to a strong
        // state in one confirming outcome, where the counter needs two.
        let mut flip = FsmPredictor::new(FsmSpec::two_mispredict_flip(), 2, 3);
        let mut counter = FsmPredictor::new(FsmSpec::saturating_counter(), 2, 3);
        let seq = [
            Outcome::NotTaken,
            Outcome::NotTaken, // both flip to not-taken
            Outcome::Taken,    // one surprise back
            Outcome::NotTaken, // flip machine should still say not-taken
        ];
        for (p_out, c_out) in seq.iter().zip(seq.iter()) {
            step(&mut flip, 0x40, *p_out);
            step(&mut counter, 0x40, *c_out);
        }
        assert_eq!(flip.predict(0x40, 0x100), Outcome::NotTaken);
    }

    #[test]
    fn aliasing_is_instrumented() {
        let mut p = FsmPredictor::new(FsmSpec::saturating_counter(), 0, 2);
        step(&mut p, 0x40, Outcome::Taken);
        step(&mut p, 0x44, Outcome::Taken);
        let stats = BranchPredictor::alias_stats(&p).unwrap();
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.conflicts, 1);
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn constructor_rejects_bad_specs() {
        let mut spec = FsmSpec::saturating_counter();
        spec.on_not_taken[0] = 9;
        let _ = FsmPredictor::new(spec, 4, 0);
    }
}
