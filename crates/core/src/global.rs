//! Global-history and path-history schemes: address-indexed, GAg, GAs,
//! gshare, and Nair's path-based predictor.
//!
//! These share a single first-level register recording the outcomes (or
//! path) of *all* recent branches. §4 of the paper shows their accuracy
//! on large programs is limited by second-level aliasing: "the global
//! history is less useful at distinguishing between branches than are
//! the branch addresses themselves".

use bpred_trace::{BranchKind, BranchRecord, Outcome};

use crate::history::low_mask;
use crate::{HistoryRegister, PathRegister, RowSelection, RowSelector, TableGeometry, TwoLevel};

/// Row selector that always chooses row 0: with a single-row geometry
/// this is the classic address-indexed table of two-bit counters
/// (Smith 1981) — the paper's baseline and the left wall of every
/// surface figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSelector;

impl RowSelector for NullSelector {
    fn select(&mut self, _pc: u64, _geometry: TableGeometry) -> RowSelection {
        RowSelection::plain(0)
    }

    fn train(&mut self, _pc: u64, _target: u64, _outcome: Outcome, _geometry: TableGeometry) {}

    fn state_bits(&self) -> u64 {
        0
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        format!("address-indexed(2^{})", geometry.col_bits())
    }
}

/// An address-indexed predictor: `2^n` two-bit counters selected purely
/// by branch-address bits (Figure 2 of the paper).
///
/// # Examples
///
/// ```
/// use bpred_core::{AddressIndexed, BranchPredictor};
/// use bpred_trace::Outcome;
///
/// let mut p = AddressIndexed::new(10); // 1024 counters
/// let _ = p.predict(0x400, 0x200);
/// p.update(0x400, 0x200, Outcome::Taken);
/// assert_eq!(p.name(), "address-indexed(2^10)");
/// ```
pub type AddressIndexed = TwoLevel<NullSelector>;

impl AddressIndexed {
    /// Creates an address-indexed table of `2^addr_bits` counters.
    pub fn new(addr_bits: u32) -> Self {
        TwoLevel::with_selector(NullSelector, TableGeometry::single_row(addr_bits))
    }
}

/// Row selector holding a global branch-outcome history register —
/// the first level of GAg and GAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSelector {
    history: HistoryRegister,
}

impl GlobalSelector {
    /// Creates a selector with `history_bits` of global history.
    pub fn new(history_bits: u32) -> Self {
        GlobalSelector {
            history: HistoryRegister::new(history_bits),
        }
    }

    /// The current global history register.
    pub fn history(&self) -> HistoryRegister {
        self.history
    }
}

impl RowSelector for GlobalSelector {
    fn select(&mut self, _pc: u64, _geometry: TableGeometry) -> RowSelection {
        RowSelection {
            row: self.history.bits(),
            all_taken_pattern: self.history.is_all_taken(),
        }
    }

    fn train(&mut self, _pc: u64, _target: u64, outcome: Outcome, _geometry: TableGeometry) {
        self.history.push(outcome);
    }

    fn state_bits(&self) -> u64 {
        u64::from(self.history.width())
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        if geometry.row_bits() == 0 {
            // The paper treats the zero-history split of every tier as
            // plain address-indexed prediction.
            format!("address-indexed(2^{})", geometry.col_bits())
        } else if geometry.col_bits() == 0 {
            format!("GAg(2^{})", geometry.row_bits())
        } else {
            format!("GAs({geometry})")
        }
    }
}

/// GAs: global history selects the row, address bits select the column
/// (Figure 4). With zero column bits this is GAg (Figure 3).
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Gas};
///
/// let mut gas = Gas::new(8, 4); // 2^8 rows x 2^4 columns
/// assert_eq!(gas.name(), "GAs(2^8 x 2^4)");
/// let mut gag = Gas::gag(10);
/// assert_eq!(gag.name(), "GAg(2^10)");
/// assert_eq!(gag.state_bits(), 2 * 1024 + 10);
/// ```
pub type Gas = TwoLevel<GlobalSelector>;

impl Gas {
    /// Creates a GAs predictor with `2^history_bits` rows selected by
    /// global history and `2^col_bits` columns selected by address.
    pub fn new(history_bits: u32, col_bits: u32) -> Self {
        TwoLevel::with_selector(
            GlobalSelector::new(history_bits),
            TableGeometry::new(history_bits, col_bits),
        )
    }

    /// The single-column special case, GAg.
    pub fn gag(history_bits: u32) -> Self {
        Gas::new(history_bits, 0)
    }
}

/// Row selector XORing global history with branch-address bits —
/// McFarling's gshare (WRL TN-36).
///
/// The address bits are taken *above* the column field
/// ([`TableGeometry::row_address_bits`]) so row and column information
/// stay disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GshareSelector {
    history: HistoryRegister,
}

impl GshareSelector {
    /// Creates a selector with `history_bits` of global history.
    pub fn new(history_bits: u32) -> Self {
        GshareSelector {
            history: HistoryRegister::new(history_bits),
        }
    }

    /// The current global history register.
    pub fn history(&self) -> HistoryRegister {
        self.history
    }
}

impl RowSelector for GshareSelector {
    fn select(&mut self, pc: u64, geometry: TableGeometry) -> RowSelection {
        let addr = geometry.row_address_bits(pc >> 2);
        RowSelection {
            row: self.history.bits() ^ addr,
            // Harmlessness is a property of the underlying history
            // pattern, not the XORed row index.
            all_taken_pattern: self.history.is_all_taken(),
        }
    }

    fn train(&mut self, _pc: u64, _target: u64, outcome: Outcome, _geometry: TableGeometry) {
        self.history.push(outcome);
    }

    fn state_bits(&self) -> u64 {
        u64::from(self.history.width())
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        if geometry.row_bits() == 0 {
            format!("address-indexed(2^{})", geometry.col_bits())
        } else {
            format!("gshare({geometry})")
        }
    }
}

/// gshare: global history XOR address bits select the row, further
/// address bits select the column (Figure 6).
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Gshare};
///
/// let mut p = Gshare::new(8, 2);
/// assert_eq!(p.name(), "gshare(2^8 x 2^2)");
/// ```
pub type Gshare = TwoLevel<GshareSelector>;

impl Gshare {
    /// Creates a gshare predictor with a `2^history_bits`-row,
    /// `2^col_bits`-column table.
    pub fn new(history_bits: u32, col_bits: u32) -> Self {
        TwoLevel::with_selector(
            GshareSelector::new(history_bits),
            TableGeometry::new(history_bits, col_bits),
        )
    }
}

/// Row selector recording target-address bits of executed control
/// transfers — Nair's path-based correlation (MICRO-28, 1995).
///
/// Each resolved conditional branch contributes the low bits of the
/// address it actually went to (the target when taken, the fall-through
/// when not); non-conditional transfers contribute their targets via
/// [`RowSelector::note_control_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSelector {
    path: PathRegister,
}

impl PathSelector {
    /// Creates a selector keeping `row_bits` total path bits,
    /// `bits_per_target` from each destination.
    pub fn new(row_bits: u32, bits_per_target: u32) -> Self {
        PathSelector {
            path: PathRegister::new(row_bits, bits_per_target),
        }
    }

    /// The current path register.
    pub fn path(&self) -> PathRegister {
        self.path
    }
}

impl RowSelector for PathSelector {
    fn select(&mut self, _pc: u64, _geometry: TableGeometry) -> RowSelection {
        RowSelection::plain(self.path.bits())
    }

    fn train(&mut self, pc: u64, target: u64, outcome: Outcome, _geometry: TableGeometry) {
        let destination = match outcome {
            Outcome::Taken => target,
            Outcome::NotTaken => pc.wrapping_add(4),
        };
        self.path.push(destination);
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        if record.kind != BranchKind::Conditional {
            self.path.push(record.target);
        }
    }

    fn state_bits(&self) -> u64 {
        u64::from(self.path.width())
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        format!("path(q={}, {geometry})", self.path.bits_per_target())
    }
}

/// Nair's path-based predictor: recent target-address bits select the
/// row, branch-address bits select the column (Figure 8).
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, PathBased};
///
/// // Nair's simulated configuration: 2^6 rows x 2^4 columns, 2 bits
/// // per target.
/// let mut p = PathBased::new(6, 4, 2);
/// assert_eq!(p.name(), "path(q=2, 2^6 x 2^4)");
/// ```
pub type PathBased = TwoLevel<PathSelector>;

impl PathBased {
    /// Creates a path-based predictor with `2^row_bits` rows selected
    /// by the path register (`bits_per_target` bits per destination)
    /// and `2^col_bits` columns selected by address.
    pub fn new(row_bits: u32, col_bits: u32, bits_per_target: u32) -> Self {
        TwoLevel::with_selector(
            PathSelector::new(row_bits, bits_per_target),
            TableGeometry::new(row_bits, col_bits),
        )
    }
}

/// Returns `true` when `bits` is the all-ones pattern of width `width`
/// (and `width > 0`). Shared helper for self-history selectors.
pub(crate) fn is_all_ones(bits: u64, width: u32) -> bool {
    width > 0 && bits == low_mask(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchPredictor;

    /// Drives a predictor through one branch instance.
    fn step<P: BranchPredictor>(p: &mut P, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, target);
        p.update(pc, target, outcome);
        predicted
    }

    #[test]
    fn address_indexed_learns_per_branch_bias() {
        let mut p = AddressIndexed::new(4);
        // Branch A always taken, branch B never taken; distinct columns.
        for _ in 0..20 {
            step(&mut p, 0x40, 0x10, Outcome::Taken);
            step(&mut p, 0x44, 0x10, Outcome::NotTaken);
        }
        assert_eq!(p.predict(0x40, 0x10), Outcome::Taken);
        assert_eq!(p.predict(0x44, 0x10), Outcome::NotTaken);
    }

    #[test]
    fn address_indexed_aliases_when_columns_collide() {
        let mut p = AddressIndexed::new(1); // 2 counters
                                            // Word addresses 0x10 and 0x12 share column 0.
        for _ in 0..10 {
            step(&mut p, 0x40, 0, Outcome::Taken);
            step(&mut p, 0x48, 0, Outcome::NotTaken);
        }
        assert!(p.table_alias_stats().conflicts > 0);
    }

    #[test]
    fn gag_learns_alternation_through_history() {
        // A single branch alternating T,N,T,N is mispredicted forever by
        // a one-counter table but learned perfectly by GAg(2).
        let mut p = Gas::gag(2);
        let mut wrong = 0;
        for i in 0..200u32 {
            let outcome = Outcome::from(i % 2 == 0);
            if step(&mut p, 0x40, 0x10, outcome) != outcome {
                wrong += 1;
            }
        }
        assert!(
            wrong < 10,
            "GAg(2) failed to learn alternation: {wrong} misses"
        );
    }

    #[test]
    fn gag_detects_all_taken_pattern() {
        let mut p = Gas::gag(3);
        for _ in 0..10 {
            step(&mut p, 0x40, 0x10, Outcome::Taken);
        }
        // After history fills with taken outcomes, another branch
        // aliasing into the same row is harmless.
        step(&mut p, 0x80, 0x10, Outcome::Taken);
        let s = p.table_alias_stats();
        assert!(s.conflicts >= 1);
        assert_eq!(s.harmless_conflicts, s.conflicts);
    }

    #[test]
    fn gas_uses_address_columns_to_separate_branches() {
        // Two branches with opposite fixed behaviour; with 1 column bit
        // they get distinct counters even under identical history.
        let mut separated = Gas::new(2, 1);
        let mut merged = Gas::gag(2);
        let mut sep_wrong = 0;
        let mut mrg_wrong = 0;
        for _ in 0..200 {
            // word addresses: 0x40>>2=0x10 (col 0), 0x44>>2=0x11 (col 1)
            if step(&mut separated, 0x40, 0x10, Outcome::Taken) != Outcome::Taken {
                sep_wrong += 1;
            }
            if step(&mut separated, 0x44, 0x10, Outcome::NotTaken) != Outcome::NotTaken {
                sep_wrong += 1;
            }
            if step(&mut merged, 0x40, 0x10, Outcome::Taken) != Outcome::Taken {
                mrg_wrong += 1;
            }
            if step(&mut merged, 0x44, 0x10, Outcome::NotTaken) != Outcome::NotTaken {
                mrg_wrong += 1;
            }
        }
        assert!(sep_wrong <= mrg_wrong);
        assert!(sep_wrong < 20);
    }

    #[test]
    fn gshare_with_zero_history_is_address_indexed() {
        // r=0: rows collapse, behaviour must equal an address-indexed
        // table of the same size.
        let mut gshare = Gshare::new(0, 6);
        let mut addr = AddressIndexed::new(6);
        let mut mismatches = 0;
        for i in 0..500u64 {
            let pc = 0x400 + 4 * (i % 37);
            let outcome = Outcome::from((i / 3) % 2 == 0);
            if step(&mut gshare, pc, 0x100, outcome) != step(&mut addr, pc, 0x100, outcome) {
                mismatches += 1;
            }
        }
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn gas_with_zero_history_is_address_indexed() {
        let mut gas = Gas::new(0, 6);
        let mut addr = AddressIndexed::new(6);
        for i in 0..500u64 {
            let pc = 0x400 + 4 * (i % 37);
            let outcome = Outcome::from((i / 5) % 3 == 0);
            assert_eq!(
                step(&mut gas, pc, 0x100, outcome),
                step(&mut addr, pc, 0x100, outcome)
            );
        }
    }

    #[test]
    fn gshare_separates_aliased_history_patterns() {
        // Branches A and B are each preceded by four taken executions
        // of a loop branch X, so both are predicted under the all-ones
        // history pattern. GAg(4) merges them into one counter that
        // thrashes (A taken, B not taken); gshare(4, 0) XORs their
        // addresses into the row and separates them.
        let mut gag = Gas::gag(4);
        let mut gsh = Gshare::new(4, 0);
        let mut gag_wrong = 0;
        let mut gsh_wrong = 0;
        // Word addresses: A = 0x10 (low bits 0000), B = 0x1C (1100).
        // Under gshare, B lands in row 1111^1100 = 0011, away from the
        // rows the loop branch X trains taken; under GAg both A and B
        // land in row 1111, which X also keeps pushing towards taken.
        for _ in 0..250 {
            for (pc, out) in [(0x40u64, Outcome::Taken), (0x70, Outcome::NotTaken)] {
                for _ in 0..4 {
                    step(&mut gag, 0x100, 0x80, Outcome::Taken);
                    step(&mut gsh, 0x100, 0x80, Outcome::Taken);
                }
                if step(&mut gag, pc, 0x10, out) != out {
                    gag_wrong += 1;
                }
                if step(&mut gsh, pc, 0x10, out) != out {
                    gsh_wrong += 1;
                }
            }
        }
        assert!(
            gsh_wrong < gag_wrong / 4,
            "gshare {gsh_wrong} should beat GAg {gag_wrong}"
        );
    }

    #[test]
    fn path_register_distinguishes_paths_to_a_branch() {
        // Branch C's outcome equals the direction of the preceding
        // branch A. Path history of A's destinations predicts C.
        let mut p = PathBased::new(4, 0, 2);
        let mut wrong = 0;
        for i in 0..400u32 {
            let a_taken = Outcome::from(i % 3 == 0);
            step(&mut p, 0x100, 0x200, a_taken);
            if step(&mut p, 0x300, 0x400, a_taken) != a_taken {
                wrong += 1;
            }
        }
        assert!(wrong < 40, "path predictor failed correlation: {wrong}");
    }

    #[test]
    fn path_selector_observes_unconditional_transfers() {
        let mut s = PathSelector::new(4, 2);
        let g = TableGeometry::new(4, 0);
        let before = s.select(0, g).row;
        s.note_control_transfer(&BranchRecord::jump(0x40, 0x84));
        let after = s.select(0, g).row;
        assert_ne!(before, after);
        // Conditional records are not folded in through this path.
        let mut s2 = PathSelector::new(4, 2);
        s2.note_control_transfer(&BranchRecord::conditional(0x40, 0x84, Outcome::Taken));
        assert_eq!(s2.select(0, g).row, 0);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(AddressIndexed::new(5).name(), "address-indexed(2^5)");
        assert_eq!(Gas::new(8, 4).name(), "GAs(2^8 x 2^4)");
        assert_eq!(Gas::gag(8).name(), "GAg(2^8)");
        assert_eq!(Gshare::new(8, 4).name(), "gshare(2^8 x 2^4)");
        assert_eq!(PathBased::new(6, 4, 2).name(), "path(q=2, 2^6 x 2^4)");
    }

    #[test]
    fn state_bits_include_history_registers() {
        assert_eq!(AddressIndexed::new(5).state_bits(), 2 * 32);
        assert_eq!(Gas::new(8, 4).state_bits(), 2 * 4096 + 8);
        assert_eq!(Gshare::new(10, 0).state_bits(), 2 * 1024 + 10);
        assert_eq!(PathBased::new(6, 4, 2).state_bits(), 2 * 1024 + 6);
    }

    #[test]
    fn is_all_ones_helper() {
        assert!(is_all_ones(0b111, 3));
        assert!(!is_all_ones(0b110, 3));
        assert!(!is_all_ones(0, 0));
    }
}
