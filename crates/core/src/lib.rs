//! Dynamic branch predictors with aliasing instrumentation.
//!
//! This crate implements every prediction scheme studied in *Sechrest,
//! Lee & Mudge, "Correlation and Aliasing in Dynamic Branch Predictors"
//! (ISCA 1996)*, plus the baselines and extensions needed to reproduce
//! and extend its evaluation:
//!
//! * the general two-level model of the paper's Figure 1
//!   ([`TwoLevel`] = a [`RowSelector`] in front of an instrumented
//!   [`CounterTable`]);
//! * address-indexed two-bit counters ([`AddressIndexed`]), GAg/GAs
//!   ([`Gas`]), gshare ([`Gshare`]), Nair's path-based scheme
//!   ([`PathBased`]);
//! * per-address schemes PAg/PAs ([`Pas`]) over perfect
//!   ([`PerfectBht`]) or finite tag-checked ([`SetAssocBht`])
//!   first-level tables;
//! * static baselines ([`AlwaysTaken`], [`AlwaysNotTaken`], [`Btfn`],
//!   [`ProfileStatic`], [`LastTime`]) and McFarling's combining
//!   predictor ([`Combining`]);
//! * aliasing accounting ([`AliasStats`]) built into every table
//!   access, distinguishing the paper's harmless all-ones-pattern
//!   conflicts from harmful ones.
//!
//! # Examples
//!
//! ```
//! use bpred_core::{BranchPredictor, Gshare};
//! use bpred_trace::Outcome;
//!
//! let mut p = Gshare::new(8, 2); // 2^8 x 2^2 = 1024 counters
//! let mut mispredicts = 0;
//! for i in 0..1000u64 {
//!     let pc = 0x400 + 4 * (i % 16);
//!     let outcome = Outcome::from(i % 3 != 0);
//!     if p.predict(pc, 0x100) != outcome {
//!         mispredicts += 1;
//!     }
//!     p.update(pc, 0x100, outcome);
//! }
//! println!("{}: {} mispredicts, {}", p.name(), mispredicts, p.table_alias_stats());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aliasing;
mod bht;
mod btb;
pub mod cell;
mod combining;
mod config;
mod counter;
mod dealiased;
mod delayed;
mod fsm;
mod geometry;
mod global;
mod history;
mod kernel;
mod peraddr;
mod plan;
mod predictor;
mod setsel;
mod speculative;
mod static_pred;
mod table;
mod twolevel;
mod yags;

pub use aliasing::AliasStats;
pub use bht::{BhtStats, HistoryTable, PerfectBht, SetAssocBht};
pub use btb::{BranchTargetBuffer, BtbStats};
pub use combining::Combining;
pub use config::{ParseConfigError, PredictorConfig};
pub use counter::{CounterState, SaturatingCounter, TwoBitCounter};
pub use dealiased::{Agree, BiMode, Gskew};
pub use delayed::DelayedUpdate;
pub use fsm::{FsmPredictor, FsmSpec, InvalidFsmError};
pub use geometry::TableGeometry;
pub use global::{
    AddressIndexed, Gas, GlobalSelector, Gshare, GshareSelector, NullSelector, PathBased,
    PathSelector,
};
pub use history::{reset_pattern, HistoryRegister, PathRegister};
pub use kernel::{KernelVisitor, PredictorKernel, TournamentKernel};
pub use peraddr::{Pas, SelfSelector};
pub use plan::{
    CombineRule, IndexFn, Level1Read, PlanKind, TableRead, WalkPlan, SKEW_BANK_MULTIPLIERS,
};
pub use predictor::BranchPredictor;
pub use setsel::{Sas, SetSelector};
pub use speculative::SpeculativeGshare;
pub use static_pred::{AlwaysNotTaken, AlwaysTaken, Btfn, LastTime, ProfileStatic};
pub use table::CounterTable;
pub use twolevel::{RowSelection, RowSelector, TwoLevel};
pub use yags::Yags;
