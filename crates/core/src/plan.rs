//! Table-walk plans — the groupable shape of a predictor's lookup.
//!
//! The multilane replay tier in `bpred-sim` fuses many sweep lanes
//! into one lane-major loop over a shared counter arena. That only
//! works for lanes whose per-branch work is *structurally identical*;
//! originally that meant "one unified-index counter read", which
//! limited the fast tier to AddressIndexed/GAs/gshare. A [`WalkPlan`]
//! generalizes the shape into a small descriptor:
//!
//! 1. an optional **first-level read** ([`Level1Read`]) producing the
//!    row-selection pattern — a global history register, a per-address
//!    BHT (perfect or set-associative), per-set history registers, or
//!    a path register of hashed branch targets;
//! 2. **one to three second-level counter reads** ([`TableRead`]) over
//!    the shared arena, each with its own index function
//!    ([`IndexFn`]): the unified `(row ^ xor?) | col` form or gskew's
//!    skewed multiplicative bank hashes. A read with `tag_bits > 0`
//!    probes a *tagged* direction cache (YAGS): entries carry a
//!    partial address tag, a lookup hits only on a tag match, and a
//!    miss on the wrong-way outcome allocates by unconditional
//!    eviction — exactly the `yags.rs` accounting;
//! 3. a **combine/update rule** ([`CombineRule`]): direct,
//!    agreement-vs-bias (agree), chooser-steered (bi-mode), majority
//!    vote (gskew), chooser-over-two-subplans (tournament, each
//!    sub-plan carrying its own optional level-1 read), tagged
//!    exception over a choice bias (YAGS), or the degenerate
//!    last-outcome single-bit rule (LastTime), with every family's
//!    partial-update policy folded in.
//!
//! [`WalkPlan::of`] maps a [`PredictorConfig`] to its plan (or `None`
//! for shapes the grouped tier cannot express — those lanes stay on
//! the scalar fallback). Lanes whose plans share a [`PlanKind`]
//! execute the same fused loop and may share a group.
//!
//! # Examples
//!
//! ```
//! use bpred_core::{PlanKind, PredictorConfig, WalkPlan};
//!
//! let plan = WalkPlan::of(&PredictorConfig::Gshare {
//!     history_bits: 12,
//!     col_bits: 2,
//! })
//! .unwrap();
//! assert_eq!(plan.kind(), PlanKind::Direct);
//! assert_eq!(plan.reads.len(), 1);
//! assert_eq!(plan.cells(), 1 << 14);
//! ```

use crate::config::PredictorConfig;

/// Odd multipliers for gskew's three skewed bank hashes (shared with
/// the scalar [`Gskew`](crate::Gskew) so both paths compute the same
/// indices from the same constants).
pub const SKEW_BANK_MULTIPLIERS: [u64; 3] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
];

/// The first-level read that produces a lane's row-selection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level1Read {
    /// No history at all — the row is always zero (address-indexed).
    None,
    /// One global shift register shared by every branch.
    GlobalHistory,
    /// An unbounded per-address history table
    /// ([`PerfectBht`](crate::PerfectBht)).
    PerfectBht,
    /// A finite set-associative per-address history table
    /// ([`SetAssocBht`](crate::SetAssocBht)).
    SetAssocBht {
        /// Total first-level entries (power of two).
        entries: usize,
        /// Associativity (divides `entries`).
        ways: usize,
    },
    /// Per-set history registers selected by low address bits
    /// ([`SetSelector`](crate::SetSelector)).
    SetHistories {
        /// log2 of the number of history sets.
        set_bits: u32,
    },
    /// One global path register of hashed control-transfer targets
    /// ([`PathRegister`](crate::PathRegister)) — fed by *every*
    /// control transfer, not just conditionals.
    PathHistory {
        /// Low target bits contributed per transfer.
        bits_per_target: u32,
    },
}

/// The index function of one second-level counter read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFn {
    /// The unified two-level form: `row = (pattern [^ pc-bits]) &
    /// row_mask`, `idx = (row << col_bits) | (pc-word & col_mask)`.
    Unified {
        /// Whether the address bits are XORed into the row (gshare
        /// family) or only concatenated as columns (GAs family).
        xor: bool,
    },
    /// gskew's skewed bank hash: `idx = (((pc-word << 20) ^ pattern)
    /// * SKEW_BANK_MULTIPLIERS[bank]) >> (64 - row_bits)`.
    Skewed {
        /// Which of the three bank multipliers to use.
        bank: u8,
    },
}

/// One second-level counter-table read within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRead {
    /// log2 of the row count.
    pub row_bits: u32,
    /// log2 of the column count.
    pub col_bits: u32,
    /// How (pattern, address) map to a counter index.
    pub index: IndexFn,
    /// Partial-tag width for a tagged direction cache (YAGS); `0`
    /// means an ordinary untagged counter read. A tagged read hits
    /// only when the stored tag matches the low address bits, and
    /// allocates by unconditionally evicting the indexed entry.
    pub tag_bits: u32,
}

impl TableRead {
    /// Counters this read's table holds.
    pub fn cells(&self) -> u64 {
        1u64 << (self.row_bits + self.col_bits)
    }
}

/// How a plan's reads combine into a prediction and train on the
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineRule {
    /// The single read *is* the prediction; train it toward the
    /// outcome.
    Direct,
    /// Agree: the read predicts agreement with a per-branch bias bit
    /// latched at first execution; train toward agreement.
    AgreementVsBias,
    /// Bi-mode: the third read (the choice table) steers between the
    /// first two direction reads; the selected direction trains toward
    /// the outcome and the choice trains too unless the bi-mode
    /// exception holds.
    ChooserSteered,
    /// gskew: majority vote of three reads; every bank trains toward
    /// the outcome (total-update policy).
    Majority,
    /// Tournament: the third read (a per-address chooser) steers
    /// between two component sub-plans — reads 0 and 1, each with its
    /// own optional level-1 read carried here. The selected component
    /// is the prediction; both components train toward the outcome
    /// and the chooser trains toward whichever component was right,
    /// only when they disagreed.
    ChooserOverTwo {
        /// Level-1 read feeding the first component (read 0).
        first_level1: Level1Read,
        /// Level-1 read feeding the second component (read 1).
        second_level1: Level1Read,
    },
    /// YAGS: read 0 is an untagged choice (bias) table; reads 1 and 2
    /// are tagged direction caches holding the exceptions to a taken
    /// / not-taken bias respectively. A tag hit in the
    /// opposite-to-bias cache overrides the bias; training updates
    /// the probed cache on a hit, allocates on a wrong-bias miss, and
    /// skips the choice update only when a hit already captured the
    /// anti-bias outcome.
    TaggedException,
    /// LastTime: the single read is a one-bit-per-entry table that
    /// predicts the last outcome stored at the index and then stores
    /// the new outcome.
    LastOutcome,
}

/// The execution class of a plan: lanes in the same kind run the same
/// fused loop and may share a multilane group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Single unified read off global (or no) history —
    /// AddressIndexed/GAs/gshare, the original fused loop.
    Direct,
    /// Single unified read off an unbounded per-address BHT.
    PerAddressPerfect,
    /// Single unified read off a finite set-associative BHT.
    PerAddressFinite,
    /// Single unified read off per-set history registers.
    PerSet,
    /// Agreement counters vs per-branch bias bits.
    AgreeBias,
    /// Two direction reads steered by a choice read.
    BiModeChoice,
    /// Three skewed banks with a majority vote.
    SkewedMajority,
    /// Two component reads steered by a per-address chooser read.
    TournamentChooser,
    /// Untagged choice read plus two tagged direction caches.
    TaggedChoice,
    /// Single unified read off a global path register.
    PathHistory,
    /// Single one-bit read predicting the last stored outcome.
    LastOutcome,
}

/// A lane's table-walk plan: what the fused multilane tier must do per
/// conditional branch to be bit-identical to the scalar kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkPlan {
    /// The first-level read producing the row pattern.
    pub level1: Level1Read,
    /// Width of the history pattern (0 for address-indexed).
    pub history_bits: u32,
    /// The second-level counter reads, in access order.
    pub reads: Vec<TableRead>,
    /// How the reads combine and train.
    pub combine: CombineRule,
}

impl WalkPlan {
    /// The plan for `config`, or `None` when the grouped tier cannot
    /// express its lookup (those lanes stay on the scalar fallback).
    pub fn of(config: &PredictorConfig) -> Option<WalkPlan> {
        let unified = |row_bits: u32, col_bits: u32, xor: bool| TableRead {
            row_bits,
            col_bits,
            index: IndexFn::Unified { xor },
            tag_bits: 0,
        };
        let tagged = |row_bits: u32, tag_bits: u32| TableRead {
            row_bits,
            col_bits: 0,
            index: IndexFn::Unified { xor: true },
            tag_bits,
        };
        match *config {
            PredictorConfig::AddressIndexed { addr_bits } => Some(WalkPlan {
                level1: Level1Read::None,
                history_bits: 0,
                reads: vec![unified(0, addr_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::Gas {
                history_bits,
                col_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: vec![unified(history_bits, col_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::Gshare {
                history_bits,
                col_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: vec![unified(history_bits, col_bits, true)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::PasInfinite {
                history_bits,
                col_bits,
            } => Some(WalkPlan {
                level1: Level1Read::PerfectBht,
                history_bits,
                reads: vec![unified(history_bits, col_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::PasFinite {
                history_bits,
                col_bits,
                entries,
                ways,
            } => Some(WalkPlan {
                level1: Level1Read::SetAssocBht {
                    entries: entries as usize,
                    ways: ways as usize,
                },
                history_bits,
                reads: vec![unified(history_bits, col_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::Sas {
                history_bits,
                set_bits,
                col_bits,
            } => Some(WalkPlan {
                level1: Level1Read::SetHistories { set_bits },
                history_bits,
                reads: vec![unified(history_bits, col_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::Agree {
                history_bits,
                index_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: vec![unified(index_bits, 0, true)],
                combine: CombineRule::AgreementVsBias,
            }),
            PredictorConfig::BiMode {
                history_bits,
                direction_bits,
                choice_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: vec![
                    unified(direction_bits, 0, true),
                    unified(direction_bits, 0, true),
                    unified(0, choice_bits, false),
                ],
                combine: CombineRule::ChooserSteered,
            }),
            // A zero-bit gskew bank would need a 64-bit shift in the
            // hash; leave that degenerate shape to the scalar oracle.
            PredictorConfig::Gskew {
                history_bits,
                bank_bits,
            } if bank_bits > 0 => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: (0..3u8)
                    .map(|bank| TableRead {
                        row_bits: bank_bits,
                        col_bits: 0,
                        index: IndexFn::Skewed { bank },
                        tag_bits: 0,
                    })
                    .collect(),
                combine: CombineRule::Majority,
            }),
            PredictorConfig::LastTime { addr_bits } => Some(WalkPlan {
                level1: Level1Read::None,
                history_bits: 0,
                reads: vec![unified(0, addr_bits, false)],
                combine: CombineRule::LastOutcome,
            }),
            PredictorConfig::Path {
                row_bits,
                col_bits,
                bits_per_target,
            } => Some(WalkPlan {
                level1: Level1Read::PathHistory { bits_per_target },
                history_bits: row_bits,
                reads: vec![unified(row_bits, col_bits, false)],
                combine: CombineRule::Direct,
            }),
            PredictorConfig::Tournament {
                addr_bits,
                history_bits,
                chooser_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits,
                reads: vec![
                    unified(0, addr_bits, false),
                    unified(history_bits, 0, true),
                    unified(0, chooser_bits, false),
                ],
                combine: CombineRule::ChooserOverTwo {
                    first_level1: Level1Read::None,
                    second_level1: Level1Read::GlobalHistory,
                },
            }),
            PredictorConfig::Yags {
                choice_bits,
                cache_bits,
                tag_bits,
            } => Some(WalkPlan {
                level1: Level1Read::GlobalHistory,
                history_bits: cache_bits,
                reads: vec![
                    unified(0, choice_bits, false),
                    tagged(cache_bits, tag_bits),
                    tagged(cache_bits, tag_bits),
                ],
                combine: CombineRule::TaggedException,
            }),
            _ => None,
        }
    }

    /// The execution class this plan groups under.
    pub fn kind(&self) -> PlanKind {
        match (self.combine, self.level1) {
            (CombineRule::AgreementVsBias, _) => PlanKind::AgreeBias,
            (CombineRule::ChooserSteered, _) => PlanKind::BiModeChoice,
            (CombineRule::Majority, _) => PlanKind::SkewedMajority,
            (CombineRule::ChooserOverTwo { .. }, _) => PlanKind::TournamentChooser,
            (CombineRule::TaggedException, _) => PlanKind::TaggedChoice,
            (CombineRule::LastOutcome, _) => PlanKind::LastOutcome,
            (CombineRule::Direct, Level1Read::PerfectBht) => PlanKind::PerAddressPerfect,
            (CombineRule::Direct, Level1Read::SetAssocBht { .. }) => PlanKind::PerAddressFinite,
            (CombineRule::Direct, Level1Read::SetHistories { .. }) => PlanKind::PerSet,
            (CombineRule::Direct, Level1Read::PathHistory { .. }) => PlanKind::PathHistory,
            (CombineRule::Direct, _) => PlanKind::Direct,
        }
    }

    /// Total second-level counters across every read — the lane's
    /// arena footprint.
    pub fn cells(&self) -> u64 {
        self.reads.iter().map(TableRead::cells).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_families_share_a_kind() {
        for config in [
            PredictorConfig::AddressIndexed { addr_bits: 10 },
            PredictorConfig::Gas {
                history_bits: 8,
                col_bits: 2,
            },
            PredictorConfig::Gshare {
                history_bits: 8,
                col_bits: 2,
            },
        ] {
            let plan = WalkPlan::of(&config).expect("groupable");
            assert_eq!(plan.kind(), PlanKind::Direct, "{config:?}");
            assert_eq!(plan.reads.len(), 1);
            assert_eq!(plan.combine, CombineRule::Direct);
        }
    }

    #[test]
    fn only_gshare_xors_the_address_into_the_row() {
        let xor_of = |config: &PredictorConfig| match WalkPlan::of(config).unwrap().reads[0].index {
            IndexFn::Unified { xor } => xor,
            other => panic!("unexpected index fn {other:?}"),
        };
        assert!(xor_of(&PredictorConfig::Gshare {
            history_bits: 8,
            col_bits: 2
        }));
        assert!(!xor_of(&PredictorConfig::Gas {
            history_bits: 8,
            col_bits: 2
        }));
        assert!(!xor_of(&PredictorConfig::AddressIndexed { addr_bits: 10 }));
    }

    #[test]
    fn per_address_plans_carry_their_first_level_shape() {
        let perfect = WalkPlan::of(&PredictorConfig::PasInfinite {
            history_bits: 6,
            col_bits: 2,
        })
        .unwrap();
        assert_eq!(perfect.kind(), PlanKind::PerAddressPerfect);
        assert_eq!(perfect.level1, Level1Read::PerfectBht);

        let finite = WalkPlan::of(&PredictorConfig::PasFinite {
            history_bits: 6,
            col_bits: 2,
            entries: 64,
            ways: 4,
        })
        .unwrap();
        assert_eq!(finite.kind(), PlanKind::PerAddressFinite);
        assert_eq!(
            finite.level1,
            Level1Read::SetAssocBht {
                entries: 64,
                ways: 4
            }
        );

        let sas = WalkPlan::of(&PredictorConfig::Sas {
            history_bits: 6,
            set_bits: 3,
            col_bits: 2,
        })
        .unwrap();
        assert_eq!(sas.kind(), PlanKind::PerSet);
        assert_eq!(sas.level1, Level1Read::SetHistories { set_bits: 3 });
    }

    #[test]
    fn dealiased_plans_describe_their_reads() {
        let agree = WalkPlan::of(&PredictorConfig::Agree {
            history_bits: 6,
            index_bits: 10,
        })
        .unwrap();
        assert_eq!(agree.kind(), PlanKind::AgreeBias);
        assert_eq!(agree.reads.len(), 1);
        assert_eq!(agree.reads[0].row_bits, 10);
        assert_eq!(agree.reads[0].index, IndexFn::Unified { xor: true });
        assert_eq!(agree.cells(), 1 << 10);

        let bimode = WalkPlan::of(&PredictorConfig::BiMode {
            history_bits: 6,
            direction_bits: 9,
            choice_bits: 8,
        })
        .unwrap();
        assert_eq!(bimode.kind(), PlanKind::BiModeChoice);
        assert_eq!(bimode.reads.len(), 3);
        assert_eq!(bimode.reads[2].index, IndexFn::Unified { xor: false });
        assert_eq!(bimode.cells(), (1 << 9) + (1 << 9) + (1 << 8));

        let gskew = WalkPlan::of(&PredictorConfig::Gskew {
            history_bits: 6,
            bank_bits: 9,
        })
        .unwrap();
        assert_eq!(gskew.kind(), PlanKind::SkewedMajority);
        assert_eq!(gskew.reads.len(), 3);
        for (bank, read) in gskew.reads.iter().enumerate() {
            assert_eq!(read.index, IndexFn::Skewed { bank: bank as u8 });
        }
        assert_eq!(gskew.cells(), 3 << 9);
    }

    #[test]
    fn multi_structure_plans_describe_their_shapes() {
        let tournament = WalkPlan::of(&PredictorConfig::Tournament {
            addr_bits: 10,
            history_bits: 8,
            chooser_bits: 9,
        })
        .unwrap();
        assert_eq!(tournament.kind(), PlanKind::TournamentChooser);
        assert_eq!(tournament.reads.len(), 3);
        assert_eq!(tournament.reads[0].index, IndexFn::Unified { xor: false });
        assert_eq!(tournament.reads[1].index, IndexFn::Unified { xor: true });
        assert_eq!(
            tournament.combine,
            CombineRule::ChooserOverTwo {
                first_level1: Level1Read::None,
                second_level1: Level1Read::GlobalHistory,
            }
        );
        assert_eq!(tournament.cells(), (1 << 10) + (1 << 8) + (1 << 9));

        let yags = WalkPlan::of(&PredictorConfig::Yags {
            choice_bits: 10,
            cache_bits: 8,
            tag_bits: 6,
        })
        .unwrap();
        assert_eq!(yags.kind(), PlanKind::TaggedChoice);
        assert_eq!(yags.history_bits, 8, "YAGS history is cache-bits wide");
        assert_eq!(yags.reads.len(), 3);
        assert_eq!(yags.reads[0].tag_bits, 0, "the choice table is untagged");
        for cache in &yags.reads[1..] {
            assert_eq!(cache.tag_bits, 6);
            assert_eq!(cache.index, IndexFn::Unified { xor: true });
        }
        assert_eq!(yags.cells(), (1 << 10) + (1 << 8) + (1 << 8));

        let path = WalkPlan::of(&PredictorConfig::Path {
            row_bits: 8,
            col_bits: 2,
            bits_per_target: 3,
        })
        .unwrap();
        assert_eq!(path.kind(), PlanKind::PathHistory);
        assert_eq!(path.level1, Level1Read::PathHistory { bits_per_target: 3 });
        assert_eq!(path.reads.len(), 1);
        assert_eq!(path.reads[0].index, IndexFn::Unified { xor: false });
        assert_eq!(path.cells(), 1 << 10);

        let last = WalkPlan::of(&PredictorConfig::LastTime { addr_bits: 9 }).unwrap();
        assert_eq!(last.kind(), PlanKind::LastOutcome);
        assert_eq!(last.level1, Level1Read::None);
        assert_eq!(last.reads.len(), 1);
        assert_eq!(last.cells(), 1 << 9);
    }

    #[test]
    fn ungroupable_shapes_have_no_plan() {
        for config in [
            PredictorConfig::AlwaysTaken,
            PredictorConfig::AlwaysNotTaken,
            PredictorConfig::Btfn,
            // Degenerate zero-bit gskew banks stay scalar.
            PredictorConfig::Gskew {
                history_bits: 0,
                bank_bits: 0,
            },
        ] {
            assert!(WalkPlan::of(&config).is_none(), "{config:?}");
        }
    }

    #[test]
    fn skew_multipliers_are_odd_and_distinct() {
        for m in SKEW_BANK_MULTIPLIERS {
            assert_eq!(m & 1, 1);
        }
        assert_ne!(SKEW_BANK_MULTIPLIERS[0], SKEW_BANK_MULTIPLIERS[1]);
        assert_ne!(SKEW_BANK_MULTIPLIERS[1], SKEW_BANK_MULTIPLIERS[2]);
    }
}
