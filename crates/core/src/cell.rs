//! Packed counter-cell primitives.
//!
//! A *cell* is the single-`u64` second-level table entry introduced by
//! the replay-path rebuild: the low two bits hold a saturating-counter
//! state, the high 62 bits the conflict-detection owner tag (the
//! branch address that last touched the counter, the paper's
//! direct-mapped-cache analogy). [`CounterTable`](crate::CounterTable)
//! — the scalar oracle every fast path is measured against — and the
//! multilane replay kernels in `bpred-sim` both step cells through the
//! helpers in this module, so there is exactly one definition of the
//! cell transition function in the workspace.
//!
//! [`step_packed`] is the SWAR tier of that transition: up to
//! [`PACKED_LANES`] two-bit counters packed side by side in one `u64`
//! advance toward a shared outcome in a handful of word ops, with the
//! same per-field semantics as [`step`] (property-tested below and in
//! the workspace multilane suite).
//!
//! # Examples
//!
//! ```
//! use bpred_core::cell;
//! use bpred_trace::Outcome;
//!
//! let fresh = cell::fresh(2); // weak-taken, untouched
//! let (predicted, conflict, next) = cell::step(fresh, cell::tag(0x40), Outcome::Taken);
//! assert_eq!(predicted, Outcome::Taken);
//! assert!(!conflict); // first access is never a conflict
//! assert_eq!(cell::counter_bits(next), 3); // trained to strong taken
//! ```

use bpred_trace::Outcome;

use crate::counter::next_counter_bits;

/// Owner tag for a counter no branch has touched yet. Real branch
/// addresses never have all of their low 62 bits set (that would be an
/// instruction in the last word of the address space).
pub const EMPTY_OWNER: u64 = (1 << 62) - 1;

/// Two-bit counter fields that fit side by side in one packed `u64`
/// ([`step_packed`]'s lane width).
pub const PACKED_LANES: usize = 32;

/// Mask of the low bit of every two-bit field in a packed word.
const FIELD_LO: u64 = 0x5555_5555_5555_5555;

/// A cell holding `counter_bits` with no owner recorded yet.
#[inline]
pub fn fresh(counter_bits: u8) -> u64 {
    (EMPTY_OWNER << 2) | (counter_bits & 0b11) as u64
}

/// The owner tag of the branch at `pc` (its low 62 address bits).
#[inline]
pub fn tag(pc: u64) -> u64 {
    pc & EMPTY_OWNER
}

/// The two-bit counter state stored in `cell`.
#[inline]
pub fn counter_bits(cell: u64) -> u8 {
    (cell & 0b11) as u8
}

/// The direction `cell`'s counter currently predicts.
#[inline]
pub fn predicted(cell: u64) -> Outcome {
    Outcome::from(cell & 0b11 >= 2)
}

/// Whether an access by the branch tagged `tag` conflicts: the cell
/// was last touched by a *different* branch (untouched cells never
/// conflict).
#[inline]
pub fn conflicts_with(cell: u64, tag: u64) -> bool {
    let owner = cell >> 2;
    (owner != EMPTY_OWNER) & (owner != tag)
}

/// Read-only access by the branch tagged `tag`: the prediction, the
/// conflict flag, and the cell re-tagged to the new owner with its
/// counter unchanged (the unfused
/// [`CounterTable::access`](crate::CounterTable::access) transition).
#[inline]
pub fn touch(cell: u64, tag: u64) -> (Outcome, bool, u64) {
    (
        predicted(cell),
        conflicts_with(cell, tag),
        (tag << 2) | (cell & 0b11),
    )
}

/// Fused access-and-train by the branch tagged `tag`: the prediction
/// *before* training, the conflict flag, and the cell re-tagged with
/// its counter stepped toward `outcome` — the single-cell
/// read-modify-write at the heart of every replay fast path.
#[inline]
pub fn step(cell: u64, tag: u64, outcome: Outcome) -> (Outcome, bool, u64) {
    let conflict = conflicts_with(cell, tag);
    let bits = counter_bits(cell);
    let next = (tag << 2) | next_counter_bits(bits, outcome) as u64;
    (Outcome::from(bits >= 2), conflict, next)
}

/// Trains `cell`'s counter toward `outcome` without touching the owner
/// tag (the standalone
/// [`CounterTable::train`](crate::CounterTable::train) transition).
#[inline]
pub fn retrain(cell: u64, outcome: Outcome) -> u64 {
    (cell & !0b11) | next_counter_bits(counter_bits(cell), outcome) as u64
}

/// SWAR saturating step: every two-bit field of `packed` moves one
/// state toward `outcome` and clamps at the strong states — up to
/// [`PACKED_LANES`] counters per word op, each transitioning exactly
/// like [`TwoBitCounter::train`](crate::TwoBitCounter::train).
///
/// Branch-free: fields at 0b11 contribute no increment and fields at
/// 0b00 no decrement, so no add ever carries (and no subtract ever
/// borrows) across a field boundary.
///
/// # Examples
///
/// ```
/// use bpred_core::cell::step_packed;
/// use bpred_trace::Outcome;
///
/// // Fields [0b00, 0b01, 0b10, 0b11] all step toward taken (the
/// // word's other 28 fields step 0b00 -> 0b01 too, hence the mask).
/// assert_eq!(step_packed(0b11_10_01_00, Outcome::Taken) & 0xFF, 0b11_11_10_01);
/// // ... and toward not-taken.
/// assert_eq!(step_packed(0b11_10_01_00, Outcome::NotTaken), 0b10_01_00_00);
/// ```
#[inline]
pub fn step_packed(packed: u64, outcome: Outcome) -> u64 {
    let hi = (packed >> 1) & FIELD_LO;
    let lo = packed & FIELD_LO;
    let inc = !(hi & lo) & FIELD_LO; // +1 everywhere below strong taken
    let dec = (hi | lo) & FIELD_LO; // -1 everywhere above strong not-taken
    let taken = 0u64.wrapping_sub(outcome.is_taken() as u64); // all-ones when taken
    packed + (inc & taken) - (dec & !taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterState, TwoBitCounter};

    #[test]
    fn fresh_cells_never_conflict_and_keep_their_bits() {
        for bits in 0..4u8 {
            let cell = fresh(bits);
            assert_eq!(counter_bits(cell), bits);
            assert!(!conflicts_with(cell, tag(0x40)));
            assert_eq!(cell >> 2, EMPTY_OWNER);
        }
    }

    #[test]
    fn conflict_requires_a_different_previous_owner() {
        let (_, first, cell) = touch(fresh(2), tag(0x40));
        assert!(!first);
        let (_, same, cell) = touch(cell, tag(0x40));
        assert!(!same);
        let (_, other, _) = touch(cell, tag(0x44));
        assert!(other);
    }

    #[test]
    fn step_matches_the_counter_state_machine() {
        for state in CounterState::ALL {
            for outcome in [Outcome::Taken, Outcome::NotTaken] {
                let cell = fresh(state.bits());
                let (predicted, _, next) = step(cell, tag(0x40), outcome);
                let mut reference = TwoBitCounter::new(state);
                assert_eq!(predicted, reference.predict(), "{state} predict");
                reference.train(outcome);
                assert_eq!(
                    counter_bits(next),
                    reference.state().bits(),
                    "{state} toward {outcome:?}"
                );
                assert_eq!(next >> 2, tag(0x40), "ownership transfers");
            }
        }
    }

    #[test]
    fn retrain_preserves_the_owner() {
        let (_, _, cell) = touch(fresh(2), tag(0x88));
        let trained = retrain(cell, Outcome::NotTaken);
        assert_eq!(trained >> 2, tag(0x88));
        assert_eq!(counter_bits(trained), 1);
    }

    #[test]
    fn step_packed_matches_scalar_in_every_field() {
        // Every field value in every field position, both outcomes.
        for outcome in [Outcome::Taken, Outcome::NotTaken] {
            for pattern in [
                0x0000_0000_0000_0000u64,
                0xFFFF_FFFF_FFFF_FFFF,
                0x1B1B_1B1B_1B1B_1B1B, // fields 3,2,1,0 repeating
                0xE4E4_E4E4_E4E4_E4E4, // fields 0,1,2,3 repeating
                0x0123_4567_89AB_CDEF,
            ] {
                let stepped = step_packed(pattern, outcome);
                for lane in 0..PACKED_LANES {
                    let before = ((pattern >> (2 * lane)) & 0b11) as u8;
                    let after = ((stepped >> (2 * lane)) & 0b11) as u8;
                    let mut reference =
                        TwoBitCounter::new(CounterState::from_bits(before).expect("two bits"));
                    reference.train(outcome);
                    assert_eq!(
                        after,
                        reference.state().bits(),
                        "lane {lane} of {pattern:#x} toward {outcome:?}"
                    );
                }
            }
        }
    }
}
