//! Per-set history schemes — the "S" of the Yeh–Patt first-level
//! taxonomy, completing the G (global) / S (per-set) / P (per-address)
//! triple the paper's §3 lays out.
//!
//! A set selector keeps one history register per *set* of branch
//! addresses: coarser than PAs (histories are shared, and polluted,
//! within a set) but far cheaper than a tagged per-address table. SAs
//! interpolates between GAs (one set) and an untagged PAs (one set per
//! branch).

use bpred_trace::Outcome;

use crate::global::is_all_ones;
use crate::history::low_mask;
use crate::{HistoryRegister, RowSelection, RowSelector, TableGeometry, TwoLevel};

/// Row selector with `2^set_bits` history registers selected by branch
/// address bits.
#[derive(Debug, Clone)]
pub struct SetSelector {
    histories: Vec<HistoryRegister>,
    set_bits: u32,
}

impl SetSelector {
    /// Creates `2^set_bits` registers of `history_bits` each.
    ///
    /// # Panics
    ///
    /// Panics if `set_bits > 20` (a million registers is beyond any
    /// design the taxonomy contemplates).
    pub fn new(history_bits: u32, set_bits: u32) -> Self {
        assert!(set_bits <= 20, "2^{set_bits} history sets is too many");
        SetSelector {
            histories: vec![HistoryRegister::new(history_bits); 1usize << set_bits],
            set_bits,
        }
    }

    /// Number of history sets.
    pub fn sets(&self) -> usize {
        self.histories.len()
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) & low_mask(self.set_bits)) as usize
    }

    /// The history register currently associated with `pc`'s set.
    pub fn history_for(&self, pc: u64) -> HistoryRegister {
        self.histories[self.set_of(pc)]
    }
}

impl RowSelector for SetSelector {
    fn select(&mut self, pc: u64, _geometry: TableGeometry) -> RowSelection {
        let h = self.histories[self.set_of(pc)];
        RowSelection {
            row: h.bits(),
            all_taken_pattern: is_all_ones(h.bits(), h.width()),
        }
    }

    fn train(&mut self, pc: u64, _target: u64, outcome: Outcome, _geometry: TableGeometry) {
        let set = self.set_of(pc);
        self.histories[set].push(outcome);
    }

    fn state_bits(&self) -> u64 {
        self.histories.iter().map(|h| u64::from(h.width())).sum()
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        if geometry.col_bits() == 0 {
            format!("SAg[2^{} sets](2^{})", self.set_bits, geometry.row_bits())
        } else {
            format!("SAs[2^{} sets]({geometry})", self.set_bits)
        }
    }
}

/// A per-set two-level predictor (SAg/SAs).
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Sas};
///
/// // 16 history sets of 8 bits, feeding a 2^8 x 2^2 counter table.
/// let mut p = Sas::new(8, 4, 2);
/// assert_eq!(p.name(), "SAs[2^4 sets](2^8 x 2^2)");
/// ```
pub type Sas = TwoLevel<SetSelector>;

impl Sas {
    /// Creates an SAs predictor: `2^set_bits` history registers of
    /// `history_bits`, a `2^history_bits`-row, `2^col_bits`-column
    /// counter table.
    pub fn new(history_bits: u32, set_bits: u32, col_bits: u32) -> Self {
        TwoLevel::with_selector(
            SetSelector::new(history_bits, set_bits),
            TableGeometry::new(history_bits, col_bits),
        )
    }

    /// The single-column special case, SAg.
    pub fn sag(history_bits: u32, set_bits: u32) -> Self {
        Sas::new(history_bits, set_bits, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchPredictor, Gas, Pas};

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn one_set_equals_gas() {
        // With a single set, SAs records exactly the global outcome
        // stream: structurally identical to GAs.
        let mut sas = Sas::new(5, 0, 2);
        let mut gas = Gas::new(5, 2);
        for i in 0..500u64 {
            let pc = 0x400 + 4 * (i % 13);
            let out = Outcome::from((i * 3) % 7 < 4);
            assert_eq!(step(&mut sas, pc, out), step(&mut gas, pc, out));
        }
    }

    #[test]
    fn disjoint_sets_isolate_histories() {
        // Two alternating branches in different sets behave like PAs:
        // each register sees only its own branch.
        let mut sas = Sas::new(2, 1, 1);
        let mut pas = Pas::perfect(2, 1);
        let mut sas_wrong = 0i32;
        let mut pas_wrong = 0i32;
        for i in 0..400u32 {
            let a = Outcome::from(i % 2 == 0);
            let b = Outcome::from(i % 2 == 1);
            // word pcs 0x10 (set 0) and 0x11 (set 1)
            if step(&mut sas, 0x40, a) != a {
                sas_wrong += 1;
            }
            if step(&mut sas, 0x44, b) != b {
                sas_wrong += 1;
            }
            if step(&mut pas, 0x40, a) != a {
                pas_wrong += 1;
            }
            if step(&mut pas, 0x44, b) != b {
                pas_wrong += 1;
            }
        }
        assert!(sas_wrong < 20, "{sas_wrong}");
        // Histories differ only in the cold-start value, so accuracy
        // is PAs-like.
        assert!((sas_wrong - pas_wrong).abs() < 20);
    }

    #[test]
    fn shared_set_pollutes_history() {
        // Same two branches forced into one set: the register
        // interleaves them and the pure self-pattern is gone — but the
        // *combined* stream in the set is TNTN..., still learnable.
        // Use one periodic and one random-ish branch instead to show
        // pollution.
        let mut isolated = Sas::new(4, 4, 0);
        let mut shared = Sas::new(4, 0, 0);
        let mut iso_wrong = 0u32;
        let mut shr_wrong = 0u32;
        let noise = [
            true, true, false, true, false, false, true, true, true, false, true, false,
        ];
        for i in 0..600usize {
            let a = Outcome::from(i % 4 != 3); // loop-like
            let b = Outcome::from(noise[i % noise.len()]); // long pattern
            if step(&mut isolated, 0x40, a) != a {
                iso_wrong += 1;
            }
            if step(&mut shared, 0x40, a) != a {
                shr_wrong += 1;
            }
            let _ = step(&mut isolated, 0x44, b);
            let _ = step(&mut shared, 0x44, b);
        }
        assert!(iso_wrong <= shr_wrong, "{iso_wrong} vs {shr_wrong}");
    }

    #[test]
    fn state_bits_scale_with_sets() {
        let p = Sas::new(6, 3, 1);
        // counters: 2 * 2^7; histories: 8 sets x 6 bits
        assert_eq!(p.state_bits(), 2 * 128 + 48);
        assert_eq!(p.selector().sets(), 8);
    }

    #[test]
    fn names() {
        assert_eq!(Sas::sag(10, 2).name(), "SAg[2^2 sets](2^10)");
        assert_eq!(Sas::new(8, 4, 2).name(), "SAs[2^4 sets](2^8 x 2^2)");
    }
}
