//! Speculative history with delayed repair.
//!
//! Trace studies (the paper included) update the global history with
//! each branch's *resolved* outcome before the next prediction. Real
//! fetch units cannot wait: they shift in the *predicted* outcome
//! immediately and repair the register when a misprediction resolves,
//! several branches later. [`SpeculativeGshare`] models that pipeline
//! honestly within a trace-driven engine: predictions enter the
//! history at once, counter training and history repair land only
//! after `delay` further branches, and in the window between, wrong
//! speculative bits steer the index exactly as they would in hardware.
//!
//! Compare against [`DelayedUpdate`](crate::DelayedUpdate)`<Gshare>`,
//! which models the *other* policy (history waits for resolution):
//! speculative history keeps the register fresh and typically wins,
//! which is why real front ends do it.

use std::collections::VecDeque;

use bpred_trace::Outcome;

use crate::history::low_mask;
use crate::{AliasStats, BranchPredictor, CounterTable, TableGeometry};

#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Table index used by the prediction (training target).
    index: u64,
    /// Serial number of the prediction (for locating its history bit).
    serial: u64,
    /// What was predicted (speculatively shifted in).
    predicted: Outcome,
    /// What actually happened.
    outcome: Outcome,
}

/// gshare with speculative history update and delayed repair.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, SpeculativeGshare};
///
/// let mut p = SpeculativeGshare::new(8, 10, 4);
/// assert_eq!(p.name(), "spec-gshare(h=8, 2^10, delay 4)");
/// let _ = p.predict(0x400, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct SpeculativeGshare {
    history_bits: u32,
    /// Speculative history: newest (possibly wrong) bit in bit 0.
    history: u64,
    table: CounterTable,
    delay: usize,
    in_flight: VecDeque<InFlight>,
    serial: u64,
}

impl SpeculativeGshare {
    /// Creates a predictor with `history_bits` of speculative global
    /// history, a `2^index_bits` counter table, and a resolution
    /// latency of `delay` branches.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` exceeds `index_bits` or 63, or if
    /// `delay` exceeds 63 (repairs would fall off the register).
    pub fn new(history_bits: u32, index_bits: u32, delay: usize) -> Self {
        assert!(
            history_bits <= index_bits,
            "history ({history_bits}) must fit in the index ({index_bits})"
        );
        assert!(history_bits < 64, "history must fit in 63 bits");
        assert!(
            delay < 64,
            "delay of {delay} branches is unrealistically long"
        );
        SpeculativeGshare {
            history_bits,
            history: 0,
            table: CounterTable::new(TableGeometry::new(index_bits, 0)),
            delay,
            in_flight: VecDeque::with_capacity(delay + 1),
            serial: 0,
        }
    }

    /// The resolution latency in branches.
    pub fn delay(&self) -> usize {
        self.delay
    }

    fn index_for(&self, pc: u64) -> u64 {
        let word = pc >> 2;
        (self.history & low_mask(self.history_bits))
            ^ (word & low_mask(self.table.geometry().row_bits()))
    }

    /// Resolves the oldest in-flight branch: trains its counter and
    /// repairs its (now aged) speculative history bit if it was wrong.
    fn retire_one(&mut self) {
        let Some(entry) = self.in_flight.pop_front() else {
            return;
        };
        self.table.train(entry.index, 0, entry.outcome);
        if entry.predicted != entry.outcome {
            // The entry's own shift happened at `entry.serial`; every
            // later prediction pushed its bit one position up.
            let age = self.serial - entry.serial;
            if age < u64::from(self.history_bits) {
                // Flip the stale speculative bit in place. Later bits
                // were predicted under the wrong history — hardware
                // would squash and refetch; the standard trace-driven
                // fix-up leaves them, which slightly *understates*
                // speculation cost.
                self.history ^= 1 << age;
            }
        }
    }
}

impl BranchPredictor for SpeculativeGshare {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        while self.in_flight.len() > self.delay {
            self.retire_one();
        }
        let index = self.index_for(pc);
        let all_taken = self.history_bits > 0
            && self.history & low_mask(self.history_bits) == low_mask(self.history_bits);
        let predicted = self.table.access(index, 0, pc, all_taken);
        // Speculative shift: the *prediction* enters the history now.
        self.history = (self.history << 1) | predicted.as_bit();
        self.serial += 1;
        self.in_flight.push_back(InFlight {
            index,
            serial: self.serial,
            predicted,
            outcome: predicted, // patched by update()
        });
        predicted
    }

    fn update(&mut self, _pc: u64, _target: u64, outcome: Outcome) {
        if let Some(entry) = self.in_flight.back_mut() {
            entry.outcome = outcome;
        }
        if self.delay == 0 {
            self.retire_one();
        }
    }

    fn name(&self) -> String {
        format!(
            "spec-gshare(h={}, 2^{}, delay {})",
            self.history_bits,
            self.table.geometry().row_bits(),
            self.delay
        )
    }

    fn state_bits(&self) -> u64 {
        self.table.state_bits() + u64::from(self.history_bits)
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        Some(self.table.alias_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayedUpdate, Gshare};

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    fn drive<P: BranchPredictor>(p: &mut P, n: u32, f: impl Fn(u32) -> (u64, Outcome)) -> u32 {
        let mut wrong = 0;
        for i in 0..n {
            let (pc, out) = f(i);
            if step(p, pc, out) != out {
                wrong += 1;
            }
        }
        wrong
    }

    #[test]
    fn zero_delay_matches_committed_gshare_on_correct_paths() {
        // While predictions are correct, speculative and committed
        // histories coincide; with delay 0 repairs are immediate, so
        // behaviour must match plain gshare exactly.
        let mut spec = SpeculativeGshare::new(8, 8, 0);
        let mut plain = Gshare::new(8, 0);
        for i in 0..2_000u64 {
            let pc = 0x400 + 4 * (i % 29);
            let out = Outcome::from((i * 3) % 5 < 3);
            assert_eq!(
                step(&mut spec, pc, out),
                step(&mut plain, pc, out),
                "step {i}"
            );
        }
    }

    #[test]
    fn small_delays_cost_little_on_predictable_streams() {
        // When predictions are nearly always right, speculative bits
        // equal committed bits and the delay is almost free. (The
        // comparison against stale committed history on correlated
        // workloads lives in the workspace integration tests, where
        // the workload models are available.)
        let pattern = |i: u32| (0x40u64 + 4 * u64::from(i % 3), Outcome::from(i % 4 != 3));
        let fresh = drive(&mut SpeculativeGshare::new(8, 10, 0), 2_000, pattern);
        let delayed = drive(&mut SpeculativeGshare::new(8, 10, 4), 2_000, pattern);
        assert!(delayed <= fresh + 60, "fresh {fresh}, delayed {delayed}");
    }

    #[test]
    fn delayed_update_import_is_exercised() {
        // Smoke-check the DelayedUpdate wrapper composes with gshare in
        // this module's terms (full comparison in integration tests).
        let pattern = |i: u32| (0x80u64, Outcome::from(i.is_multiple_of(2)));
        let wrapped = drive(&mut DelayedUpdate::new(Gshare::new(4, 0), 2), 400, pattern);
        assert!(wrapped < 400);
    }

    #[test]
    fn repairs_fix_wrong_bits() {
        // Force a misprediction and check the history bit is corrected
        // once the branch retires.
        let mut p = SpeculativeGshare::new(4, 6, 0);
        // Counter default weak-taken: predicting taken for a not-taken
        // branch puts a wrong 1 in the history, repaired on retire.
        let predicted = p.predict(0x40, 0x100);
        assert_eq!(predicted, Outcome::Taken);
        p.update(0x40, 0x100, Outcome::NotTaken);
        assert_eq!(p.history & 1, 0, "bit should be repaired to not-taken");
    }

    #[test]
    fn deep_delay_degrades_but_does_not_destroy() {
        let pattern = |i: u32| {
            (
                0x40u64 + 4 * u64::from(i % 7),
                Outcome::from(!i.is_multiple_of(3)),
            )
        };
        let fresh = drive(&mut SpeculativeGshare::new(8, 10, 0), 3_000, pattern);
        let deep = drive(&mut SpeculativeGshare::new(8, 10, 16), 3_000, pattern);
        assert!(deep >= fresh.saturating_sub(10), "{deep} vs {fresh}");
        assert!(deep < 3_000 / 2);
    }

    #[test]
    fn name_and_state() {
        let p = SpeculativeGshare::new(8, 10, 4);
        assert_eq!(p.name(), "spec-gshare(h=8, 2^10, delay 4)");
        assert_eq!(p.state_bits(), 2 * 1024 + 8);
        assert_eq!(p.delay(), 4);
    }

    #[test]
    #[should_panic(expected = "unrealistically long")]
    fn absurd_delay_panics() {
        let _ = SpeculativeGshare::new(8, 10, 64);
    }
}
