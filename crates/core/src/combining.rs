//! McFarling's combining (tournament) predictor — the "recent work ...
//! combining schemes" the paper's conclusion points to.
//!
//! Two component predictors run in parallel; a table of two-bit
//! *chooser* counters, indexed by branch address, learns per-branch
//! which component to trust. The chooser trains only when the
//! components disagree.

use bpred_trace::{BranchRecord, Outcome};

use crate::{BranchPredictor, CounterState, TwoBitCounter};

/// A combining predictor over two components (McFarling, WRL TN-36).
///
/// # Examples
///
/// ```
/// use bpred_core::{AddressIndexed, BranchPredictor, Combining, Gas};
///
/// // The classic pairing: per-address bimodal + global history.
/// let mut p = Combining::new(AddressIndexed::new(10), Gas::gag(10), 10);
/// let _ = p.predict(0x400, 0x200);
/// assert!(p.name().starts_with("combining("));
/// ```
#[derive(Debug, Clone)]
pub struct Combining<P1, P2> {
    first: P1,
    second: P2,
    /// Chooser counters: ≥ weak-taken means "trust the second
    /// component"; the initial weak-not-taken state starts with a mild
    /// preference for the first.
    chooser: Vec<TwoBitCounter>,
    chooser_bits: u32,
    /// Component predictions cached between predict and update.
    pending: Option<(u64, Outcome, Outcome)>,
}

impl<P1: BranchPredictor, P2: BranchPredictor> Combining<P1, P2> {
    /// Creates a combining predictor with a `2^chooser_bits`-entry
    /// chooser table.
    pub fn new(first: P1, second: P2, chooser_bits: u32) -> Self {
        assert!(
            chooser_bits <= 30,
            "chooser of 2^{chooser_bits} entries is too large"
        );
        Combining {
            first,
            second,
            chooser: vec![TwoBitCounter::new(CounterState::WeakNotTaken); 1usize << chooser_bits],
            chooser_bits,
            pending: None,
        }
    }

    /// The first component.
    pub fn first(&self) -> &P1 {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &P2 {
        &self.second
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }

    fn components(&mut self, pc: u64, target: u64) -> (Outcome, Outcome) {
        match self.pending {
            Some((cached_pc, a, b)) if cached_pc == pc => (a, b),
            _ => (
                self.first.predict(pc, target),
                self.second.predict(pc, target),
            ),
        }
    }
}

impl<P1: BranchPredictor, P2: BranchPredictor> BranchPredictor for Combining<P1, P2> {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        let a = self.first.predict(pc, target);
        let b = self.second.predict(pc, target);
        self.pending = Some((pc, a, b));
        let use_second = self.chooser[self.chooser_index(pc)].predict().is_taken();
        if use_second {
            b
        } else {
            a
        }
    }

    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        let (a, b) = self.components(pc, target);
        self.pending = None;
        if a != b {
            // Train the chooser towards whichever component was right.
            let idx = self.chooser_index(pc);
            self.chooser[idx].train(Outcome::from(b == outcome));
        }
        self.first.update(pc, target, outcome);
        self.second.update(pc, target, outcome);
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        self.first.note_control_transfer(record);
        self.second.note_control_transfer(record);
    }

    fn name(&self) -> String {
        format!(
            "combining({} | {}, 2^{} chooser)",
            self.first.name(),
            self.second.name(),
            self.chooser_bits
        )
    }

    fn state_bits(&self) -> u64 {
        self.first.state_bits() + self.second.state_bits() + 2 * self.chooser.len() as u64
    }

    fn alias_stats(&self) -> Option<crate::AliasStats> {
        // Sum over components; None only if neither component tracks.
        match (self.first.alias_stats(), self.second.alias_stats()) {
            (None, None) => None,
            (a, b) => {
                let mut total = a.unwrap_or_default();
                total += b.unwrap_or_default();
                Some(total)
            }
        }
    }

    fn bht_stats(&self) -> Option<crate::BhtStats> {
        self.first.bht_stats().or_else(|| self.second.bht_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysNotTaken, AlwaysTaken};

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn chooser_learns_which_component_is_right() {
        // First component always wrong, second always right: after a
        // couple of training steps the chooser must switch over.
        let mut p = Combining::new(AlwaysNotTaken, AlwaysTaken, 4);
        let mut late_wrong = 0;
        for i in 0..50u32 {
            let predicted = step(&mut p, 0x40, Outcome::Taken);
            if i >= 4 && predicted != Outcome::Taken {
                late_wrong += 1;
            }
        }
        assert_eq!(late_wrong, 0);
    }

    #[test]
    fn chooser_is_per_branch() {
        // Branch A is all-taken (second component right), branch B is
        // all-not-taken (first component right). Distinct chooser
        // entries let both be predicted correctly.
        let mut p = Combining::new(AlwaysNotTaken, AlwaysTaken, 4);
        let mut late_wrong = 0;
        for i in 0..100u32 {
            let a = step(&mut p, 0x40, Outcome::Taken);
            let b = step(&mut p, 0x44, Outcome::NotTaken);
            if i >= 4 {
                if a != Outcome::Taken {
                    late_wrong += 1;
                }
                if b != Outcome::NotTaken {
                    late_wrong += 1;
                }
            }
        }
        assert_eq!(late_wrong, 0);
    }

    #[test]
    fn chooser_does_not_train_on_agreement() {
        // Both components agree (and are wrong): chooser state must not
        // move, so the initial preference persists.
        let mut p = Combining::new(AlwaysTaken, AlwaysTaken, 2);
        for _ in 0..10 {
            step(&mut p, 0x40, Outcome::NotTaken);
        }
        // Force a disagreement check: chooser still at its initial
        // weak-not-taken = prefer first.
        assert_eq!(
            p.chooser[p.chooser_index(0x40)].state(),
            CounterState::WeakNotTaken
        );
    }

    #[test]
    fn state_bits_sum_components_and_chooser() {
        let p = Combining::new(AlwaysTaken, AlwaysNotTaken, 3);
        assert_eq!(p.state_bits(), 2 * 8);
    }

    #[test]
    fn name_mentions_both_components() {
        let p = Combining::new(AlwaysTaken, AlwaysNotTaken, 3);
        assert_eq!(
            p.name(),
            "combining(always-taken | always-not-taken, 2^3 chooser)"
        );
    }
}
