use bpred_trace::{BranchRecord, Outcome};

use crate::{AliasStats, BhtStats};

/// A dynamic conditional-branch predictor.
///
/// The simulation protocol is two-phase, mirroring hardware: for every
/// dynamic conditional branch the engine first calls
/// [`predict`](BranchPredictor::predict) with the branch address and its
/// taken-target, then resolves the branch and calls
/// [`update`](BranchPredictor::update) with the actual outcome. The
/// engine reports non-conditional control transfers through
/// [`note_control_transfer`](BranchPredictor::note_control_transfer) so
/// path-history schemes can observe them; most predictors ignore these.
///
/// Implementations must be deterministic: the same call sequence must
/// produce the same predictions.
///
/// # Examples
///
/// Implementing a trivial static predictor:
///
/// ```
/// use bpred_core::BranchPredictor;
/// use bpred_trace::Outcome;
///
/// #[derive(Debug)]
/// struct AlwaysTaken;
///
/// impl BranchPredictor for AlwaysTaken {
///     fn predict(&mut self, _pc: u64, _target: u64) -> Outcome {
///         Outcome::Taken
///     }
///     fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {}
///     fn name(&self) -> String {
///         "always-taken".into()
///     }
///     fn state_bits(&self) -> u64 {
///         0
///     }
/// }
///
/// let mut p = AlwaysTaken;
/// assert_eq!(p.predict(0x400, 0x200), Outcome::Taken);
/// ```
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc` whose
    /// taken-target is `target`.
    ///
    /// Takes `&mut self` because table-based predictors record
    /// bookkeeping (e.g. aliasing-conflict detection, first-level-table
    /// allocation) at prediction time, exactly when the hardware access
    /// happens.
    fn predict(&mut self, pc: u64, target: u64) -> Outcome;

    /// Trains the predictor with the resolved `outcome` of the branch at
    /// `pc`. Must be called exactly once after each
    /// [`predict`](BranchPredictor::predict), with the same `pc` and
    /// `target`.
    fn update(&mut self, pc: u64, target: u64, outcome: Outcome);

    /// Predicts and immediately trains with the already-resolved
    /// outcome — the trace-replay fast path, where the outcome is
    /// known the moment the prediction is made.
    ///
    /// Must behave exactly like [`predict`](BranchPredictor::predict)
    /// followed by [`update`](BranchPredictor::update) with the same
    /// arguments; the default does precisely that. Table-based schemes
    /// override it to fuse the two second-level walks into one cell
    /// read-modify-write. Equivalence is enforced by the workspace
    /// observer tests, which replay the same trace through the fused
    /// and unfused paths and require identical results.
    #[inline]
    fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        let predicted = self.predict(pc, target);
        self.update(pc, target, outcome);
        predicted
    }

    /// Informs the predictor of a non-conditional control transfer
    /// (jump, call, return, indirect). Path-based schemes fold the
    /// target address into their path register; the default
    /// implementation does nothing.
    fn note_control_transfer(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// Human-readable scheme name including its configuration, e.g.
    /// `"GAs(2^8 x 2^4)"`. Used in reports.
    fn name(&self) -> String;

    /// Total predictor state in bits (counter table plus history
    /// registers and first-level tables, excluding tags unless the
    /// scheme requires them). Used for cost-normalised comparisons.
    fn state_bits(&self) -> u64;

    /// Second-level-table aliasing statistics, if this predictor tracks
    /// them. Table-based predictors report; static schemes return
    /// `None` (the default).
    fn alias_stats(&self) -> Option<AliasStats> {
        None
    }

    /// First-level history-table statistics, if this predictor has a
    /// first-level table (per-address schemes). The default is `None`.
    fn bht_stats(&self) -> Option<BhtStats> {
        None
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for &mut P {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        (**self).predict(pc, target)
    }

    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        (**self).update(pc, target, outcome)
    }

    fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        (**self).predict_then_update(pc, target, outcome)
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        (**self).note_control_transfer(record)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn state_bits(&self) -> u64 {
        (**self).state_bits()
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        (**self).alias_stats()
    }

    fn bht_stats(&self) -> Option<BhtStats> {
        (**self).bht_stats()
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        (**self).predict(pc, target)
    }

    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        (**self).update(pc, target, outcome)
    }

    fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        (**self).predict_then_update(pc, target, outcome)
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        (**self).note_control_transfer(record)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn state_bits(&self) -> u64 {
        (**self).state_bits()
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        (**self).alias_stats()
    }

    fn bht_stats(&self) -> Option<BhtStats> {
        (**self).bht_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Flip(bool);

    impl BranchPredictor for Flip {
        fn predict(&mut self, _pc: u64, _target: u64) -> Outcome {
            Outcome::from(self.0)
        }
        fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {
            self.0 = !self.0;
        }
        fn name(&self) -> String {
            "flip".into()
        }
        fn state_bits(&self) -> u64 {
            1
        }
    }

    #[test]
    fn boxed_predictor_delegates() {
        let mut boxed: Box<dyn BranchPredictor> = Box::new(Flip::default());
        assert_eq!(boxed.predict(0, 0), Outcome::NotTaken);
        boxed.update(0, 0, Outcome::Taken);
        assert_eq!(boxed.predict(0, 0), Outcome::Taken);
        assert_eq!(boxed.name(), "flip");
        assert_eq!(boxed.state_bits(), 1);
        boxed.note_control_transfer(&BranchRecord::jump(0, 4));
    }
}
