//! YAGS — "Yet Another Global Scheme" (Eden & Mudge, MICRO 1998; the
//! same Michigan group as this paper). The lineage runs straight
//! through the paper's conclusion: bi-mode removed *cross-bias*
//! aliasing; YAGS observes that most branches simply follow their
//! bias, so the direction tables only need to store the *exceptions*,
//! and adds small tags so exception entries don't alias each other.
//!
//! Structure: an address-indexed choice PHT gives each branch's bias;
//! two small tagged caches (the "T-cache" and "NT-cache") hold
//! gshare-indexed exception counters. A branch biased taken consults
//! the NT-cache: on a tag hit the cached counter overrides the bias.

use bpred_trace::Outcome;

use crate::history::low_mask;
use crate::{
    AliasStats, BranchPredictor, CounterState, CounterTable, TableGeometry, TwoBitCounter,
};

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    /// `u16::MAX` marks an empty slot (tags are ≤ 8 bits).
    tag: u16,
    counter: TwoBitCounter,
}

/// A direction cache: direct-mapped, tagged, gshare-indexed.
#[derive(Debug, Clone)]
struct DirectionCache {
    entries: Vec<CacheEntry>,
    index_bits: u32,
    tag_bits: u32,
}

impl DirectionCache {
    fn new(index_bits: u32, tag_bits: u32, initial: CounterState) -> Self {
        DirectionCache {
            entries: vec![
                CacheEntry {
                    tag: u16::MAX,
                    counter: TwoBitCounter::new(initial),
                };
                1usize << index_bits
            ],
            index_bits,
            tag_bits,
        }
    }

    fn index(&self, pc: u64, history: u64) -> usize {
        ((history ^ (pc >> 2)) & low_mask(self.index_bits)) as usize
    }

    fn tag_of(&self, pc: u64) -> u16 {
        ((pc >> 2) & low_mask(self.tag_bits)) as u16
    }

    fn lookup(&self, pc: u64, history: u64) -> Option<Outcome> {
        let entry = &self.entries[self.index(pc, history)];
        (entry.tag == self.tag_of(pc)).then(|| entry.counter.predict())
    }

    fn train_hit(&mut self, pc: u64, history: u64, outcome: Outcome) -> bool {
        let tag = self.tag_of(pc);
        let idx = self.index(pc, history);
        let entry = &mut self.entries[idx];
        if entry.tag == tag {
            entry.counter.train(outcome);
            true
        } else {
            false
        }
    }

    fn allocate(&mut self, pc: u64, history: u64, outcome: Outcome) {
        let idx = self.index(pc, history);
        let bias = if outcome.is_taken() {
            CounterState::WeakTaken
        } else {
            CounterState::WeakNotTaken
        };
        self.entries[idx] = CacheEntry {
            tag: self.tag_of(pc),
            counter: TwoBitCounter::new(bias),
        };
    }

    fn state_bits(&self) -> u64 {
        self.entries.len() as u64 * (2 + u64::from(self.tag_bits))
    }
}

/// The YAGS predictor.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Yags};
///
/// let mut p = Yags::new(10, 9, 6);
/// assert_eq!(p.name(), "yags(choice 2^10, 2x2^9 cache, tag 6, h=9)");
/// let _ = p.predict(0x400, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct Yags {
    /// Address-indexed bias table.
    choice: CounterTable,
    taken_cache: DirectionCache,
    not_taken_cache: DirectionCache,
    history: u64,
    history_bits: u32,
}

impl Yags {
    /// Creates a YAGS predictor: a `2^choice_bits` bias PHT, two
    /// `2^cache_bits` direction caches with `tag_bits`-bit tags, and
    /// `cache_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is 0 or greater than 8 (YAGS uses small
    /// tags; the paper's point is that 6–8 bits suffice).
    pub fn new(choice_bits: u32, cache_bits: u32, tag_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&tag_bits),
            "YAGS tags are 1..=8 bits, got {tag_bits}"
        );
        Yags {
            choice: CounterTable::new(TableGeometry::new(0, choice_bits)),
            taken_cache: DirectionCache::new(cache_bits, tag_bits, CounterState::WeakTaken),
            not_taken_cache: DirectionCache::new(cache_bits, tag_bits, CounterState::WeakNotTaken),
            history: 0,
            history_bits: cache_bits,
        }
    }

    fn bias(&self, pc: u64) -> Outcome {
        self.choice.peek(0, pc >> 2)
    }

    fn masked_history(&self) -> u64 {
        self.history & low_mask(self.history_bits)
    }
}

impl BranchPredictor for Yags {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let all_taken =
            self.history_bits > 0 && self.masked_history() == low_mask(self.history_bits);
        // The choice access is the instrumented one (it is the table
        // every branch touches).
        let bias = self.choice.access(0, pc >> 2, pc, all_taken);
        // Exceptions to a taken bias live in the NT-cache and vice
        // versa.
        let exception = if bias.is_taken() {
            self.not_taken_cache.lookup(pc, self.masked_history())
        } else {
            self.taken_cache.lookup(pc, self.masked_history())
        };
        exception.unwrap_or(bias)
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        let bias = self.bias(pc);
        let history = self.masked_history();
        let cache = if bias.is_taken() {
            &mut self.not_taken_cache
        } else {
            &mut self.taken_cache
        };
        let hit = cache.train_hit(pc, history, outcome);
        if !hit && outcome != bias {
            // The bias failed and no exception entry existed: allocate.
            cache.allocate(pc, history, outcome);
        }
        // The choice PHT trains unless the exception cache both hit
        // and was right while the bias was wrong (keep the bias).
        let keep_bias = hit && outcome != bias;
        if !keep_bias {
            self.choice.train(0, pc >> 2, outcome);
        }
        self.history = (self.history << 1) | outcome.as_bit();
    }

    fn name(&self) -> String {
        format!(
            "yags(choice 2^{}, 2x2^{} cache, tag {}, h={})",
            self.choice.geometry().col_bits(),
            self.taken_cache.index_bits,
            self.taken_cache.tag_bits,
            self.history_bits
        )
    }

    fn state_bits(&self) -> u64 {
        self.choice.state_bits()
            + self.taken_cache.state_bits()
            + self.not_taken_cache.state_bits()
            + u64::from(self.history_bits)
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        Some(self.choice.alias_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn biased_branches_never_touch_the_caches() {
        let mut p = Yags::new(6, 6, 6);
        let mut wrong = 0;
        for i in 0..300u32 {
            if step(&mut p, 0x40, Outcome::Taken) != Outcome::Taken && i > 2 {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0);
        // No exception was ever allocated for an always-taken branch
        // whose bias says taken.
        assert!(p.not_taken_cache.entries.iter().all(|e| e.tag == u16::MAX));
    }

    #[test]
    fn exceptions_are_learned_per_history_pattern() {
        // A branch that is taken except after two not-taken outcomes
        // of a companion: the bias stays taken, and the exception
        // pattern lands in the NT-cache.
        let mut p = Yags::new(6, 6, 6);
        let mut wrong = 0;
        for i in 0..600u32 {
            let phase = i % 4;
            // Companion: N N T T; subject taken unless companion just
            // produced two Ns.
            let companion = Outcome::from(phase >= 2);
            step(&mut p, 0x80, companion);
            let subject = Outcome::from(phase != 1);
            if step(&mut p, 0x40, subject) != subject && i > 50 {
                wrong += 1;
            }
        }
        assert!(wrong < 30, "{wrong} late misses");
    }

    #[test]
    fn opposed_aliased_branches_survive_via_tags() {
        // Two branches with identical cache indices but different
        // tags: the tags keep their exception entries apart.
        let mut p = Yags::new(4, 4, 6);
        let mut wrong = 0;
        for i in 0..500u32 {
            for (pc, out) in [
                (0x1000u64, Outcome::Taken),
                (0x1000 + (4 << 4), Outcome::NotTaken),
            ] {
                if step(&mut p, pc, out) != out && i > 20 {
                    wrong += 1;
                }
            }
        }
        assert!(wrong < 40, "{wrong} late misses");
    }

    #[test]
    fn beats_gshare_under_heavy_aliasing() {
        use crate::Gshare;
        // Many opposite-biased branch pairs in a tiny table.
        let mut yags = Yags::new(6, 6, 8);
        let mut gshare = Gshare::new(6, 0);
        let mut yags_wrong = 0u32;
        let mut gshare_wrong = 0u32;
        for i in 0..2_000u32 {
            let k = u64::from(i % 16);
            let pc = 0x1000 + 4 * k;
            let out = Outcome::from(k % 2 == 0);
            if step(&mut yags, pc, out) != out {
                yags_wrong += 1;
            }
            if step(&mut gshare, pc, out) != out {
                gshare_wrong += 1;
            }
        }
        assert!(
            yags_wrong <= gshare_wrong,
            "yags {yags_wrong} vs gshare {gshare_wrong}"
        );
    }

    #[test]
    fn name_and_state_bits() {
        let p = Yags::new(10, 9, 6);
        assert_eq!(p.name(), "yags(choice 2^10, 2x2^9 cache, tag 6, h=9)");
        // choice 2*2^10 + 2 caches * 2^9 * (2 + 6) + history 9
        assert_eq!(p.state_bits(), 2 * 1024 + 2 * 512 * 8 + 9);
    }

    #[test]
    #[should_panic(expected = "1..=8 bits")]
    fn oversized_tags_panic() {
        let _ = Yags::new(8, 8, 12);
    }
}
