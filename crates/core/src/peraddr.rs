//! Per-address (self-history) schemes: PAg and PAs.
//!
//! The first level keeps an outcome history *per branch* in a
//! [`HistoryTable`]; the history selects the second-level row. §5 of the
//! paper observes that the most frequent self-history patterns mean the
//! same thing across branches ("the appropriate predictions for the most
//! frequently occurring patterns are strongly correlated across
//! branches"), so PAs loses little by collapsing all columns into one —
//! but it depends critically on the first-level table being large enough
//! to keep histories unpolluted.

use bpred_trace::Outcome;

use crate::global::is_all_ones;
use crate::{
    BhtStats, HistoryTable, PerfectBht, RowSelection, RowSelector, SetAssocBht, TableGeometry,
    TwoLevel,
};

/// Row selector reading each branch's own history from a first-level
/// [`HistoryTable`].
#[derive(Debug, Clone)]
pub struct SelfSelector<H> {
    bht: H,
}

impl<H: HistoryTable> SelfSelector<H> {
    /// Wraps a first-level table. Its [`HistoryTable::width`] must
    /// equal the row bits of the geometry it is used with; the
    /// [`Pas`] constructors guarantee this.
    pub fn new(bht: H) -> Self {
        SelfSelector { bht }
    }

    /// The first-level table.
    pub fn bht(&self) -> &H {
        &self.bht
    }

    /// First-level access statistics (Table 3's miss-rate column).
    pub fn bht_stats(&self) -> BhtStats {
        self.bht.stats()
    }
}

impl<H: HistoryTable> RowSelector for SelfSelector<H> {
    fn select(&mut self, pc: u64, _geometry: TableGeometry) -> RowSelection {
        let bits = self.bht.lookup(pc);
        RowSelection {
            row: bits,
            all_taken_pattern: is_all_ones(bits, self.bht.width()),
        }
    }

    fn train(&mut self, pc: u64, _target: u64, outcome: Outcome, _geometry: TableGeometry) {
        self.bht.record(pc, outcome);
    }

    fn state_bits(&self) -> u64 {
        self.bht.state_bits()
    }

    fn level1_stats(&self) -> Option<BhtStats> {
        Some(self.bht.stats())
    }

    fn describe(&self, geometry: TableGeometry) -> String {
        let level1 = self.bht.label();
        if geometry.col_bits() == 0 {
            format!("PAg[{level1}](2^{})", geometry.row_bits())
        } else {
            format!("PAs[{level1}]({geometry})")
        }
    }
}

/// A per-address two-level predictor generic over its first-level
/// table: `Pas<PerfectBht>` is the paper's "PAs(inf)",
/// `Pas<SetAssocBht>` its finite variants like "PAs(1k)".
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Pas};
///
/// // PAs with unbounded first level: 2^8 rows x 2^2 columns.
/// let mut ideal = Pas::perfect(8, 2);
/// assert_eq!(ideal.name(), "PAs[inf](2^8 x 2^2)");
///
/// // The paper's realistic first level: 1024 entries, 4-way.
/// let mut real = Pas::with_bht(8, 2, 1024, 4);
/// assert_eq!(real.name(), "PAs[1024x4](2^8 x 2^2)");
/// ```
pub type Pas<H> = TwoLevel<SelfSelector<H>>;

impl Pas<PerfectBht> {
    /// PAs with an unbounded first-level table: `history_bits` of
    /// per-branch history select among `2^history_bits` rows,
    /// `col_bits` address bits select the column.
    pub fn perfect(history_bits: u32, col_bits: u32) -> Self {
        TwoLevel::with_selector(
            SelfSelector::new(PerfectBht::new(history_bits)),
            TableGeometry::new(history_bits, col_bits),
        )
    }

    /// PAg (single column) with an unbounded first level.
    pub fn perfect_pag(history_bits: u32) -> Self {
        Self::perfect(history_bits, 0)
    }
}

impl Pas<SetAssocBht> {
    /// PAs with a finite, tag-checked, LRU first-level table of
    /// `entries` entries and `ways` ways. A first-level miss resets the
    /// history to the `0xC3FF`-prefix pattern.
    pub fn with_bht(history_bits: u32, col_bits: u32, entries: usize, ways: usize) -> Self {
        TwoLevel::with_selector(
            SelfSelector::new(SetAssocBht::new(entries, ways, history_bits)),
            TableGeometry::new(history_bits, col_bits),
        )
    }

    /// PAg (single column) with a finite first level.
    pub fn pag_with_bht(history_bits: u32, entries: usize, ways: usize) -> Self {
        Self::with_bht(history_bits, 0, entries, ways)
    }
}

impl<H: HistoryTable> Pas<H> {
    /// First-level access statistics (accesses and tag misses) —
    /// Table 3's miss-rate column.
    pub fn first_level_stats(&self) -> BhtStats {
        self.selector().bht_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchPredictor;

    fn step<P: BranchPredictor>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    #[test]
    fn pas_learns_periodic_pattern() {
        // Loop with trip count 4: T T T N repeating. 4 history bits
        // distinguish every phase; after warmup prediction is perfect.
        let mut p = Pas::perfect(4, 0);
        let mut wrong = 0;
        for i in 0..400u32 {
            let outcome = Outcome::from(i % 4 != 3);
            if step(&mut p, 0x40, outcome) != outcome {
                wrong += 1;
            }
        }
        assert!(wrong < 20, "PAs failed periodic pattern: {wrong} misses");
    }

    #[test]
    fn pas_histories_are_per_branch() {
        // Global history would interleave these two alternating
        // branches into a fixed pattern; self-history keeps them
        // separate and both perfectly predictable.
        let mut p = Pas::perfect(2, 1);
        let mut wrong = 0;
        for i in 0..400u32 {
            let a = Outcome::from(i % 2 == 0);
            let b = Outcome::from(i % 2 == 1);
            if step(&mut p, 0x40, a) != a {
                wrong += 1;
            }
            if step(&mut p, 0x44, b) != b {
                wrong += 1;
            }
        }
        assert!(wrong < 20, "{wrong} misses");
    }

    #[test]
    fn perfect_and_oversized_finite_bht_agree() {
        // A finite BHT far larger than the branch working set behaves
        // identically to the perfect one (cold-start reset pattern is
        // the same).
        let mut ideal = Pas::perfect(6, 2);
        let mut big = Pas::with_bht(6, 2, 4096, 4);
        for i in 0..2000u64 {
            let pc = 0x400 + 4 * (i % 64);
            let outcome = Outcome::from((i * 7) % 5 < 3);
            assert_eq!(step(&mut ideal, pc, outcome), step(&mut big, pc, outcome));
        }
        assert_eq!(big.first_level_stats().misses, 64); // cold misses only
    }

    #[test]
    fn tiny_bht_hurts_prediction() {
        // Two hundred branches thrash a 16-entry first level; the same
        // workload on a perfect first level predicts far better.
        let branches: Vec<u64> = (0..200).map(|i| 0x1000 + 4 * i).collect();
        let mut ideal = Pas::perfect(4, 0);
        let mut tiny = Pas::with_bht(4, 0, 16, 4);
        let mut ideal_wrong = 0u32;
        let mut tiny_wrong = 0u32;
        for round in 0..30u32 {
            for &pc in &branches {
                // Periodic per-branch behaviour self-history can learn.
                let outcome = Outcome::from(round % 4 != 3);
                if step(&mut ideal, pc, outcome) != outcome {
                    ideal_wrong += 1;
                }
                if step(&mut tiny, pc, outcome) != outcome {
                    tiny_wrong += 1;
                }
            }
        }
        assert!(tiny.first_level_stats().miss_rate() > 0.5);
        assert!(ideal_wrong < tiny_wrong);
    }

    #[test]
    fn pas_all_taken_pattern_marks_harmless_aliasing() {
        // Single-column PAs: two always-taken loop branches share every
        // counter once their histories saturate to all-ones; those
        // conflicts are classified harmless.
        let mut p = Pas::perfect(3, 0);
        for _ in 0..20 {
            step(&mut p, 0x40, Outcome::Taken);
            step(&mut p, 0x80, Outcome::Taken);
        }
        let s = p.table_alias_stats();
        assert!(s.conflicts > 0);
        assert!(s.harmless_conflicts > 0);
    }

    #[test]
    fn names_and_state_bits() {
        assert_eq!(Pas::perfect_pag(10).name(), "PAg[inf](2^10)");
        assert_eq!(Pas::pag_with_bht(6, 512, 4).name(), "PAg[512x4](2^6)");
        // Finite PAs state: counters + entries*width
        let p = Pas::with_bht(10, 0, 1024, 4);
        assert_eq!(p.state_bits(), 2 * 1024 + 1024 * 10);
    }

    #[test]
    fn bht_stats_count_one_access_per_prediction() {
        let mut p = Pas::with_bht(4, 0, 64, 2);
        for i in 0..50u64 {
            step(&mut p, 0x40 + 4 * (i % 3), Outcome::Taken);
        }
        assert_eq!(p.first_level_stats().accesses, 50);
        assert_eq!(p.first_level_stats().misses, 3);
    }
}
