//! First-level branch-history tables for per-address (P) schemes.
//!
//! PAs/PAg keep an outcome history per branch. The paper's §5 shows that
//! for self-history schemes it is *this* table — not the second-level
//! counter table — where aliasing does the damage: conflicts pollute the
//! stored history and raise misprediction "more or less uniformly"
//! across second-level configurations.
//!
//! [`PerfectBht`] models the idealised unbounded table ("the assumption
//! that accurate history information is available for each branch");
//! [`SetAssocBht`] models the realistic bounded table with tags and LRU
//! replacement, resetting the history of a missing branch to the
//! appropriate-length prefix of `0xC3FF` exactly as the paper does.

use std::collections::HashMap;
use std::fmt;

use bpred_trace::Outcome;

use crate::history::{low_mask, reset_pattern};

/// Access statistics for a first-level history table.
///
/// The paper's Table 3 reports the miss rate of finite first-level
/// tables; `miss_rate` reproduces that column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BhtStats {
    /// History lookups (one per predicted branch).
    pub accesses: u64,
    /// Lookups that failed tag match and reset the history.
    pub misses: u64,
}

impl BhtStats {
    /// Fraction of lookups that missed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A first-level table mapping branch addresses to outcome histories.
///
/// Implementations are deterministic. The protocol is: one
/// [`lookup`](HistoryTable::lookup) per predicted branch (allocating or
/// resetting on a miss), then one [`record`](HistoryTable::record) with
/// the resolved outcome.
pub trait HistoryTable: fmt::Debug {
    /// The history width in bits.
    fn width(&self) -> u32;

    /// Returns the current history pattern for `pc`, allocating (and on
    /// a finite table, possibly evicting) on a miss.
    fn lookup(&mut self, pc: u64) -> u64;

    /// Shifts `outcome` into the history of `pc`. Called after
    /// [`lookup`](HistoryTable::lookup) for the same branch.
    fn record(&mut self, pc: u64, outcome: Outcome);

    /// Accumulated access statistics.
    fn stats(&self) -> BhtStats;

    /// Storage cost in bits (history payload only; tags are excluded
    /// because real designs fold them into the BTB or instruction
    /// cache, as §5 notes).
    fn state_bits(&self) -> u64;

    /// Short label for reports, e.g. `"inf"` or `"1024x4"`.
    fn label(&self) -> String;
}

/// Unbounded per-branch history: every static branch gets its own
/// register, so histories are never polluted. This is the "PAs(inf)"
/// row of Table 3.
///
/// # Examples
///
/// ```
/// use bpred_core::{HistoryTable, PerfectBht};
/// use bpred_trace::Outcome;
///
/// let mut bht = PerfectBht::new(4);
/// bht.lookup(0x40);
/// bht.record(0x40, Outcome::Taken);
/// assert_eq!(bht.lookup(0x40) & 1, 1);
/// assert_eq!(bht.stats().misses, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PerfectBht {
    width: u32,
    histories: HashMap<u64, u64>,
    stats: BhtStats,
}

impl PerfectBht {
    /// Creates an unbounded table of `width`-bit histories.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn new(width: u32) -> Self {
        assert!(width <= 64, "history width {width} exceeds 64 bits");
        PerfectBht {
            width,
            histories: HashMap::new(),
            stats: BhtStats::default(),
        }
    }

    /// Number of branches currently tracked.
    pub fn tracked_branches(&self) -> usize {
        self.histories.len()
    }
}

impl HistoryTable for PerfectBht {
    fn width(&self) -> u32 {
        self.width
    }

    fn lookup(&mut self, pc: u64) -> u64 {
        self.stats.accesses += 1;
        let width = self.width;
        *self
            .histories
            .entry(pc)
            .or_insert_with(|| reset_pattern(width))
    }

    fn record(&mut self, pc: u64, outcome: Outcome) {
        if self.width == 0 {
            return;
        }
        let width = self.width;
        let h = self
            .histories
            .entry(pc)
            .or_insert_with(|| reset_pattern(width));
        *h = ((*h << 1) | outcome.as_bit()) & low_mask(width);
    }

    fn stats(&self) -> BhtStats {
        self.stats
    }

    fn state_bits(&self) -> u64 {
        self.histories.len() as u64 * u64::from(self.width)
    }

    fn label(&self) -> String {
        "inf".to_owned()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    /// `u64::MAX` marks an invalid (never filled) way.
    tag: u64,
    history: u64,
    /// Timestamp of the last touch; smallest is the LRU victim.
    last_use: u64,
}

impl Way {
    const INVALID: Way = Way {
        tag: u64::MAX,
        history: 0,
        last_use: 0,
    };
}

/// A bounded, set-associative first-level table with tags and LRU
/// replacement — the realistic PAs first level of §5 and Figure 10.
///
/// On a miss the evicted entry's history is reset to the
/// appropriate-length prefix of `0xC3FF`, "avoiding excessive aliasing
/// for the patterns of all taken or all not taken branches".
///
/// # Examples
///
/// ```
/// use bpred_core::{HistoryTable, SetAssocBht};
/// use bpred_trace::Outcome;
///
/// // The paper's 1024-entry 4-way table with 10-bit histories.
/// let mut bht = SetAssocBht::new(1024, 4, 10);
/// bht.lookup(0x400);
/// assert_eq!(bht.stats().misses, 1); // cold miss
/// bht.record(0x400, Outcome::Taken);
/// bht.lookup(0x400);
/// assert_eq!(bht.stats().misses, 1); // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocBht {
    width: u32,
    sets: usize,
    ways: usize,
    entries: Vec<Way>,
    clock: u64,
    stats: BhtStats,
}

impl SetAssocBht {
    /// Creates a table of `entries` total entries organised as
    /// `entries / ways` sets of `ways` ways, holding `width`-bit
    /// histories.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `ways` is zero or
    /// does not divide `entries`, the resulting set count is not a
    /// power of two, or `width > 64`.
    pub fn new(entries: usize, ways: usize, width: u32) -> Self {
        assert!(width <= 64, "history width {width} exceeds 64 bits");
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocBht {
            width,
            sets,
            ways,
            entries: vec![Way::INVALID; entries],
            clock: 0,
            stats: BhtStats::default(),
        }
    }

    /// A direct-mapped table (`ways == 1`).
    pub fn direct_mapped(entries: usize, width: u32) -> Self {
        Self::new(entries, 1, width)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        let word = pc >> 2;
        let set = (word as usize) & (self.sets - 1);
        let tag = word >> self.sets.trailing_zeros();
        (set, tag)
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Way] {
        let start = set * self.ways;
        &mut self.entries[start..start + self.ways]
    }

    /// Finds `pc`'s way within its set, touching LRU state on a hit.
    fn find(&mut self, pc: u64) -> Option<usize> {
        let (set, tag) = self.set_and_tag(pc);
        self.clock += 1;
        let clock = self.clock;
        let ways = self.set_slice_mut(set);
        for (i, way) in ways.iter_mut().enumerate() {
            if way.tag == tag {
                way.last_use = clock;
                return Some(set * self.ways + i);
            }
        }
        None
    }
}

impl HistoryTable for SetAssocBht {
    fn width(&self) -> u32 {
        self.width
    }

    fn lookup(&mut self, pc: u64) -> u64 {
        self.stats.accesses += 1;
        if let Some(idx) = self.find(pc) {
            return self.entries[idx].history;
        }
        // Miss: evict the LRU way and reset the history.
        self.stats.misses += 1;
        let (set, tag) = self.set_and_tag(pc);
        let clock = self.clock;
        let width = self.width;
        let ways = self.set_slice_mut(set);
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.last_use)
            .expect("at least one way");
        *victim = Way {
            tag,
            history: reset_pattern(width),
            last_use: clock,
        };
        victim.history
    }

    fn record(&mut self, pc: u64, outcome: Outcome) {
        if self.width == 0 {
            return;
        }
        let width = self.width;
        // The entry exists after lookup in the normal protocol; if a
        // caller records without looking up, allocate silently.
        let idx = match self.find(pc) {
            Some(idx) => idx,
            None => {
                let _ = self.lookup(pc);
                self.stats.accesses -= 1; // internal allocation, not a real access
                self.find(pc).expect("entry just allocated")
            }
        };
        let w = &mut self.entries[idx];
        w.history = ((w.history << 1) | outcome.as_bit()) & low_mask(width);
    }

    fn stats(&self) -> BhtStats {
        self.stats
    }

    fn state_bits(&self) -> u64 {
        (self.sets * self.ways) as u64 * u64::from(self.width)
    }

    fn label(&self) -> String {
        format!("{}x{}", self.sets * self.ways, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_bht_never_misses() {
        let mut bht = PerfectBht::new(8);
        for pc in (0..4096u64).step_by(4) {
            let _ = bht.lookup(pc);
            bht.record(pc, Outcome::Taken);
        }
        assert_eq!(bht.stats().misses, 0);
        assert_eq!(bht.stats().accesses, 1024);
        assert_eq!(bht.tracked_branches(), 1024);
        assert_eq!(bht.state_bits(), 1024 * 8);
    }

    #[test]
    fn perfect_bht_initialises_to_reset_pattern() {
        let mut bht = PerfectBht::new(6);
        assert_eq!(bht.lookup(0x40), reset_pattern(6));
    }

    #[test]
    fn histories_are_independent_per_branch() {
        let mut bht = PerfectBht::new(4);
        let base_a = bht.lookup(0x40);
        let base_b = bht.lookup(0x80);
        assert_eq!(base_a, base_b); // both start at the reset pattern
        bht.record(0x40, Outcome::Taken);
        bht.record(0x80, Outcome::NotTaken);
        assert_eq!(bht.lookup(0x40) & 1, 1);
        assert_eq!(bht.lookup(0x80) & 1, 0);
    }

    #[test]
    fn set_assoc_hit_after_fill() {
        let mut bht = SetAssocBht::new(8, 2, 4);
        let _ = bht.lookup(0x100);
        bht.record(0x100, Outcome::Taken);
        let h = bht.lookup(0x100);
        assert_eq!(h & 1, 1);
        assert_eq!(bht.stats().misses, 1);
        assert_eq!(bht.stats().accesses, 2);
    }

    #[test]
    fn conflict_miss_resets_history() {
        // Direct-mapped 4-entry table: word addresses 0 and 4 share set 0.
        let mut bht = SetAssocBht::direct_mapped(4, 8);
        let _ = bht.lookup(0x00);
        for _ in 0..8 {
            bht.record(0x00, Outcome::Taken);
        }
        let _ = bht.lookup(0x40); // word 0x10, set 0 -> evicts
        let h = bht.lookup(0x00); // miss again, reset pattern
        assert_eq!(h, reset_pattern(8));
        assert_eq!(bht.stats().misses, 3); // two colds + one conflict
    }

    #[test]
    fn associativity_absorbs_the_conflict() {
        // Same competing pair, but 2-way: both fit in set 0.
        let mut bht = SetAssocBht::new(8, 2, 8);
        let _ = bht.lookup(0x00);
        for _ in 0..8 {
            bht.record(0x00, Outcome::Taken);
        }
        let _ = bht.lookup(0x40);
        let h = bht.lookup(0x00);
        assert_eq!(h, 0xFF); // survived
        assert_eq!(bht.stats().misses, 2); // cold misses only
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way set; three branches mapping to set 0 of a 2-set table:
        // words 0x0, 0x2, 0x4 (set = word & 1 ... use 2 sets x 2 ways = 4 entries)
        let mut bht = SetAssocBht::new(4, 2, 4);
        // word addresses: pc>>2. set = word & 1.
        let a = 0x00; // word 0, set 0
        let b = 0x08; // word 2, set 0
        let c = 0x10; // word 4, set 0
        let _ = bht.lookup(a);
        let _ = bht.lookup(b);
        let _ = bht.lookup(a); // a is now MRU
        let _ = bht.lookup(c); // evicts b
        assert_eq!(bht.stats().misses, 3);
        let _ = bht.lookup(a); // still resident
        assert_eq!(bht.stats().misses, 3);
        let _ = bht.lookup(b); // was evicted
        assert_eq!(bht.stats().misses, 4);
    }

    #[test]
    fn record_without_lookup_allocates_silently() {
        let mut bht = SetAssocBht::new(4, 2, 4);
        bht.record(0x40, Outcome::Taken);
        assert_eq!(
            bht.stats().accesses,
            0,
            "internal allocation is not an access"
        );
        let h = bht.lookup(0x40);
        assert_eq!(h & 1, 1);
    }

    #[test]
    fn labels_identify_the_configuration() {
        assert_eq!(PerfectBht::new(4).label(), "inf");
        assert_eq!(SetAssocBht::new(1024, 4, 10).label(), "1024x4");
    }

    #[test]
    fn zero_width_histories_are_inert() {
        let mut bht = PerfectBht::new(0);
        let _ = bht.lookup(0x40);
        bht.record(0x40, Outcome::Taken);
        assert_eq!(bht.lookup(0x40), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panics() {
        let _ = SetAssocBht::new(12, 4, 4);
    }

    #[test]
    fn miss_rate_computation() {
        let s = BhtStats {
            accesses: 200,
            misses: 5,
        };
        assert!((s.miss_rate() - 0.025).abs() < 1e-12);
        assert_eq!(BhtStats::default().miss_rate(), 0.0);
    }
}
