//! Static baseline predictors: always-taken, always-not-taken,
//! backward-taken/forward-not-taken, and a profile-guided static
//! predictor in the spirit of Fisher & Freudenberger (ASPLOS 1992).
//!
//! These anchor the bottom of every comparison: a dynamic scheme that
//! cannot beat BTFN is not earning its transistors.

use std::collections::HashMap;

use bpred_trace::Outcome;

use crate::BranchPredictor;

/// Predicts every branch taken.
///
/// # Examples
///
/// ```
/// use bpred_core::{AlwaysTaken, BranchPredictor};
/// use bpred_trace::Outcome;
///
/// let mut p = AlwaysTaken;
/// assert_eq!(p.predict(0x40, 0x20), Outcome::Taken);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64, _target: u64) -> Outcome {
        Outcome::Taken
    }

    fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {}

    fn name(&self) -> String {
        "always-taken".to_owned()
    }

    fn state_bits(&self) -> u64 {
        0
    }
}

/// Predicts every branch not taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysNotTaken;

impl BranchPredictor for AlwaysNotTaken {
    fn predict(&mut self, _pc: u64, _target: u64) -> Outcome {
        Outcome::NotTaken
    }

    fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {}

    fn name(&self) -> String {
        "always-not-taken".to_owned()
    }

    fn state_bits(&self) -> u64 {
        0
    }
}

/// Backward taken, forward not taken: loop-closing (backward) branches
/// are predicted taken, forward branches not taken.
///
/// # Examples
///
/// ```
/// use bpred_core::{Btfn, BranchPredictor};
/// use bpred_trace::Outcome;
///
/// let mut p = Btfn;
/// assert_eq!(p.predict(0x100, 0x80), Outcome::Taken);   // backward
/// assert_eq!(p.predict(0x100, 0x180), Outcome::NotTaken); // forward
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Btfn;

impl BranchPredictor for Btfn {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        Outcome::from(target < pc)
    }

    fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {}

    fn name(&self) -> String {
        "btfn".to_owned()
    }

    fn state_bits(&self) -> u64 {
        0
    }
}

/// A profile-guided static predictor: each branch is permanently
/// predicted in the majority direction observed in a profiling run;
/// unprofiled branches fall back to BTFN.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, ProfileStatic};
/// use bpred_trace::Outcome;
///
/// let p = ProfileStatic::from_directions([(0x40, Outcome::Taken)]);
/// let mut p = p;
/// assert_eq!(p.predict(0x40, 0x100), Outcome::Taken);
/// // Unprofiled: falls back to BTFN (forward target -> not taken).
/// assert_eq!(p.predict(0x44, 0x100), Outcome::NotTaken);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileStatic {
    directions: HashMap<u64, Outcome>,
}

impl ProfileStatic {
    /// Builds the predictor from `(pc, majority direction)` pairs.
    pub fn from_directions<I>(directions: I) -> Self
    where
        I: IntoIterator<Item = (u64, Outcome)>,
    {
        ProfileStatic {
            directions: directions.into_iter().collect(),
        }
    }

    /// Number of profiled branches.
    pub fn profiled_branches(&self) -> usize {
        self.directions.len()
    }
}

impl BranchPredictor for ProfileStatic {
    fn predict(&mut self, pc: u64, target: u64) -> Outcome {
        self.directions
            .get(&pc)
            .copied()
            .unwrap_or_else(|| Outcome::from(target < pc))
    }

    fn update(&mut self, _pc: u64, _target: u64, _outcome: Outcome) {}

    fn name(&self) -> String {
        format!("profile-static({} branches)", self.directions.len())
    }

    fn state_bits(&self) -> u64 {
        // One direction bit per profiled branch.
        self.directions.len() as u64
    }
}

/// Dynamic one-bit "last time" predictor (Smith's simplest scheme): a
/// table of single bits recording each branch's previous outcome.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, LastTime};
/// use bpred_trace::Outcome;
///
/// let mut p = LastTime::new(4);
/// p.update(0x40, 0, Outcome::Taken);
/// assert_eq!(p.predict(0x40, 0), Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct LastTime {
    bits: Vec<bool>,
    addr_bits: u32,
}

impl LastTime {
    /// Creates a table of `2^addr_bits` one-bit entries, initially
    /// predicting not taken.
    pub fn new(addr_bits: u32) -> Self {
        assert!(addr_bits <= 30, "table of 2^{addr_bits} bits is too large");
        LastTime {
            bits: vec![false; 1usize << addr_bits],
            addr_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bits.len() - 1)
    }
}

impl BranchPredictor for LastTime {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        Outcome::from(self.bits[self.index(pc)])
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        let idx = self.index(pc);
        self.bits[idx] = outcome.is_taken();
    }

    fn name(&self) -> String {
        format!("last-time(2^{})", self.addr_bits)
    }

    fn state_bits(&self) -> u64 {
        self.bits.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_predictors() {
        assert_eq!(AlwaysTaken.predict(0, 0), Outcome::Taken);
        assert_eq!(AlwaysNotTaken.predict(0, 0), Outcome::NotTaken);
        assert_eq!(AlwaysTaken.state_bits(), 0);
    }

    #[test]
    fn btfn_direction() {
        let mut p = Btfn;
        assert_eq!(p.predict(0x100, 0x100), Outcome::NotTaken); // self-target is forward-ish
        assert_eq!(p.predict(0x100, 0xfc), Outcome::Taken);
    }

    #[test]
    fn profile_static_uses_profile_then_fallback() {
        let mut p =
            ProfileStatic::from_directions([(0x40, Outcome::NotTaken), (0x44, Outcome::Taken)]);
        assert_eq!(p.profiled_branches(), 2);
        assert_eq!(p.predict(0x40, 0x10), Outcome::NotTaken); // profile wins over BTFN
        assert_eq!(p.predict(0x44, 0x100), Outcome::Taken);
        assert_eq!(p.predict(0x48, 0x10), Outcome::Taken); // fallback BTFN backward
        assert_eq!(p.state_bits(), 2);
    }

    #[test]
    fn updates_do_not_change_static_predictors() {
        let mut p = ProfileStatic::from_directions([(0x40, Outcome::Taken)]);
        for _ in 0..10 {
            p.update(0x40, 0x10, Outcome::NotTaken);
        }
        assert_eq!(p.predict(0x40, 0x10), Outcome::Taken);
    }

    #[test]
    fn last_time_flips_immediately() {
        let mut p = LastTime::new(2);
        assert_eq!(p.predict(0x40, 0), Outcome::NotTaken);
        p.update(0x40, 0, Outcome::Taken);
        assert_eq!(p.predict(0x40, 0), Outcome::Taken);
        p.update(0x40, 0, Outcome::NotTaken);
        assert_eq!(p.predict(0x40, 0), Outcome::NotTaken);
    }

    #[test]
    fn last_time_aliases_modulo_table_size() {
        let mut p = LastTime::new(1); // 2 entries
        p.update(0x40, 0, Outcome::Taken); // word 0x10 -> entry 0
        assert_eq!(p.predict(0x48, 0), Outcome::Taken); // word 0x12 -> entry 0 too
    }

    #[test]
    fn names() {
        assert_eq!(AlwaysTaken.name(), "always-taken");
        assert_eq!(Btfn.name(), "btfn");
        assert_eq!(LastTime::new(3).name(), "last-time(2^3)");
    }
}
