use std::fmt;

use crate::history::low_mask;

/// The shape of a second-level predictor table: `2^row_bits` rows
/// (selected by the first-level row-selection box) by `2^col_bits`
/// columns (selected by branch-address bits).
///
/// This is the organisational axis of the paper's design-space figures:
/// every tier of a surface holds `row_bits + col_bits` constant while
/// trading rows for columns.
///
/// # Examples
///
/// ```
/// use bpred_core::TableGeometry;
///
/// let g = TableGeometry::new(8, 4); // 256 rows x 16 columns
/// assert_eq!(g.counters(), 1 << 12);
/// assert_eq!(g.index(0b1010_1010, 0xF), 0b1010_1010 << 4 | 0xF);
///
/// // All splits of a 4096-counter table, GAg-like to address-indexed:
/// let splits: Vec<_> = TableGeometry::splits(12).collect();
/// assert_eq!(splits.len(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableGeometry {
    row_bits: u32,
    col_bits: u32,
}

impl TableGeometry {
    /// Maximum supported total index width.
    pub const MAX_TOTAL_BITS: u32 = 30;

    /// Creates a geometry with `2^row_bits` rows and `2^col_bits`
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `row_bits + col_bits` exceeds
    /// [`MAX_TOTAL_BITS`](Self::MAX_TOTAL_BITS) (a 2^30-counter table is
    /// already 256 MiB of simulated state).
    pub fn new(row_bits: u32, col_bits: u32) -> Self {
        assert!(
            row_bits + col_bits <= Self::MAX_TOTAL_BITS,
            "table of 2^{} counters exceeds the supported maximum 2^{}",
            row_bits + col_bits,
            Self::MAX_TOTAL_BITS
        );
        TableGeometry { row_bits, col_bits }
    }

    /// A single row of `2^col_bits` address-indexed counters.
    pub fn single_row(col_bits: u32) -> Self {
        TableGeometry::new(0, col_bits)
    }

    /// A single column of `2^row_bits` history-indexed counters.
    pub fn single_column(row_bits: u32) -> Self {
        TableGeometry::new(row_bits, 0)
    }

    /// Number of row-index bits.
    #[inline]
    pub fn row_bits(self) -> u32 {
        self.row_bits
    }

    /// Number of column-index bits.
    #[inline]
    pub fn col_bits(self) -> u32 {
        self.col_bits
    }

    /// Total index width, `log2` of the counter count.
    #[inline]
    pub fn total_bits(self) -> u32 {
        self.row_bits + self.col_bits
    }

    /// Number of rows.
    #[inline]
    pub fn rows(self) -> u64 {
        1u64 << self.row_bits
    }

    /// Number of columns.
    #[inline]
    pub fn cols(self) -> u64 {
        1u64 << self.col_bits
    }

    /// Total number of counters.
    #[inline]
    pub fn counters(self) -> u64 {
        1u64 << self.total_bits()
    }

    /// Flattens a (row, column) pair into a table index. Inputs are
    /// masked to their respective widths, so callers may pass raw
    /// history registers and word addresses.
    #[inline]
    pub fn index(self, row: u64, col: u64) -> usize {
        let row = row & low_mask(self.row_bits);
        let col = col & low_mask(self.col_bits);
        ((row << self.col_bits) | col) as usize
    }

    /// Extracts the column index from a branch word address (the low
    /// `col_bits` bits).
    #[inline]
    pub fn column_of(self, word_pc: u64) -> u64 {
        word_pc & low_mask(self.col_bits)
    }

    /// Extracts `row_bits` address bits *above* the column field — the
    /// bits gshare XORs with the global history so row and column
    /// information stay disjoint.
    #[inline]
    pub fn row_address_bits(self, word_pc: u64) -> u64 {
        (word_pc >> self.col_bits) & low_mask(self.row_bits)
    }

    /// Iterates over every split of a `2^total_bits`-counter table, from
    /// the single-column (all rows, GAg-like) configuration to the
    /// single-row (address-indexed) one: `total_bits + 1` geometries.
    pub fn splits(total_bits: u32) -> impl DoubleEndedIterator<Item = TableGeometry> + Clone {
        assert!(
            total_bits <= Self::MAX_TOTAL_BITS,
            "table of 2^{total_bits} counters exceeds the supported maximum"
        );
        (0..=total_bits).map(move |col_bits| TableGeometry::new(total_bits - col_bits, col_bits))
    }
}

impl fmt::Display for TableGeometry {
    /// Paper-style notation: `2^8 x 2^4` (rows × columns).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{} x 2^{}", self.row_bits, self.col_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_powers_of_two() {
        let g = TableGeometry::new(3, 5);
        assert_eq!(g.rows(), 8);
        assert_eq!(g.cols(), 32);
        assert_eq!(g.counters(), 256);
        assert_eq!(g.total_bits(), 8);
    }

    #[test]
    fn index_is_bijective_over_the_table() {
        let g = TableGeometry::new(3, 4);
        let mut seen = vec![false; g.counters() as usize];
        for row in 0..g.rows() {
            for col in 0..g.cols() {
                let idx = g.index(row, col);
                assert!(!seen[idx], "index collision at ({row},{col})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn index_masks_out_of_range_inputs() {
        let g = TableGeometry::new(2, 2);
        assert_eq!(g.index(0xFF, 0xFF), g.index(0x3, 0x3));
        assert!(g.index(u64::MAX, u64::MAX) < g.counters() as usize);
    }

    #[test]
    fn zero_bit_dimensions() {
        let row = TableGeometry::single_row(4);
        assert_eq!(row.rows(), 1);
        assert_eq!(row.index(u64::MAX, 5), 5);
        let col = TableGeometry::single_column(4);
        assert_eq!(col.cols(), 1);
        assert_eq!(col.index(5, u64::MAX), 5);
        let unit = TableGeometry::new(0, 0);
        assert_eq!(unit.counters(), 1);
        assert_eq!(unit.index(9, 9), 0);
    }

    #[test]
    fn column_and_row_address_bits_are_disjoint() {
        let g = TableGeometry::new(4, 6);
        let word_pc = 0b1011_0101_1100_1010u64;
        let col = g.column_of(word_pc);
        let row_addr = g.row_address_bits(word_pc);
        assert_eq!(col, word_pc & 0x3F);
        assert_eq!(row_addr, (word_pc >> 6) & 0xF);
    }

    #[test]
    fn splits_cover_the_tier() {
        let splits: Vec<_> = TableGeometry::splits(4).collect();
        assert_eq!(splits.len(), 5);
        assert_eq!(splits[0], TableGeometry::new(4, 0));
        assert_eq!(splits[4], TableGeometry::new(0, 4));
        assert!(splits.iter().all(|g| g.total_bits() == 4));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(TableGeometry::new(8, 4).to_string(), "2^8 x 2^4");
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn oversized_table_panics() {
        let _ = TableGeometry::new(20, 20);
    }
}
