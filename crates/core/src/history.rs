use std::fmt;

use bpred_trace::Outcome;

/// Returns a mask with the low `bits` bits set. `bits` may be 0 (empty
/// mask) up to 64 (full mask).
#[inline]
pub(crate) fn low_mask(bits: u32) -> u64 {
    match bits {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A shift register of recent branch outcomes, newest outcome in bit 0.
///
/// This is both the *global* history register of GAg/GAs/gshare (fed by
/// every conditional branch) and the *per-branch* history pattern of
/// PAg/PAs (one register per first-level-table entry).
///
/// # Examples
///
/// ```
/// use bpred_core::HistoryRegister;
/// use bpred_trace::Outcome;
///
/// let mut h = HistoryRegister::new(4);
/// h.push(Outcome::Taken);
/// h.push(Outcome::Taken);
/// h.push(Outcome::NotTaken);
/// assert_eq!(h.bits(), 0b110); // newest (not taken) in bit 0
/// assert!(!h.is_all_taken());
/// h.push(Outcome::Taken);
/// h.push(Outcome::Taken);
/// h.push(Outcome::Taken);
/// h.push(Outcome::Taken);
/// assert!(h.is_all_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    bits: u64,
    width: u32,
}

impl HistoryRegister {
    /// Creates an all-zero (all not-taken) register of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn new(width: u32) -> Self {
        assert!(width <= 64, "history width {width} exceeds 64 bits");
        HistoryRegister { bits: 0, width }
    }

    /// Creates a register preloaded with `bits` (masked to `width`).
    pub fn with_bits(width: u32, bits: u64) -> Self {
        let mut h = HistoryRegister::new(width);
        h.bits = bits & low_mask(width);
        h
    }

    /// The register width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// The current pattern; newest outcome in bit 0, all high bits zero.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Shifts `outcome` into bit 0, discarding the oldest outcome.
    /// A zero-width register stays empty.
    #[inline]
    pub fn push(&mut self, outcome: Outcome) {
        if self.width == 0 {
            return;
        }
        self.bits = ((self.bits << 1) | outcome.as_bit()) & low_mask(self.width);
    }

    /// Overwrites the pattern (masked to the register width).
    #[inline]
    pub fn set_bits(&mut self, bits: u64) {
        self.bits = bits & low_mask(self.width);
    }

    /// Returns `true` if every recorded outcome is taken — the paper's
    /// "all-ones pattern" that makes aliasing between tight loops
    /// harmless. A zero-width register reports `false` (it records
    /// nothing).
    #[inline]
    pub fn is_all_taken(self) -> bool {
        self.width > 0 && self.bits == low_mask(self.width)
    }

    /// The outcome recorded `age` pushes ago (0 = newest). `None` if
    /// `age` is outside the register.
    pub fn outcome_at(self, age: u32) -> Option<Outcome> {
        (age < self.width).then(|| Outcome::from_bit((self.bits >> age) & 1))
    }
}

impl fmt::Display for HistoryRegister {
    /// Renders the pattern as `T`/`N` characters, oldest first, e.g.
    /// `TTN` for a 3-bit register whose newest outcome was not taken.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for age in (0..self.width).rev() {
            let c = if (self.bits >> age) & 1 == 1 {
                'T'
            } else {
                'N'
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The history-reset pattern Sechrest, Lee & Mudge use when a finite
/// first-level table misses: "the appropriate length prefix of the
/// pattern 0xC3FF" (§5). A prefix avoids excessive aliasing with the
/// all-taken and all-not-taken patterns.
///
/// The 16-bit pattern is repeated so prefixes longer than 16 bits are
/// well defined.
///
/// # Examples
///
/// ```
/// use bpred_core::reset_pattern;
///
/// assert_eq!(reset_pattern(16), 0xC3FF);
/// assert_eq!(reset_pattern(4), 0xC); // the first four bits, 1100
/// assert_eq!(reset_pattern(0), 0);
/// ```
pub fn reset_pattern(bits: u32) -> u64 {
    const REPEATED: u64 = 0xC3FF_C3FF_C3FF_C3FF;
    match bits {
        0 => 0,
        b if b >= 64 => REPEATED,
        b => REPEATED >> (64 - b),
    }
}

/// A register of recent branch-*target* address bits — the first level of
/// Nair's path-based scheme (MICRO-28, 1995). Each control transfer
/// contributes `bits_per_target` low bits of the destination word
/// address; the register keeps the most recent `width` bits.
///
/// # Examples
///
/// ```
/// use bpred_core::PathRegister;
///
/// let mut p = PathRegister::new(6, 2);
/// p.push(0x40); // word address 0x10, low 2 bits 00
/// p.push(0x4c); // word address 0x13, low 2 bits 11
/// assert_eq!(p.bits(), 0b0011);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRegister {
    bits: u64,
    width: u32,
    bits_per_target: u32,
}

impl PathRegister {
    /// Creates an empty path register holding `width` bits total,
    /// `bits_per_target` bits from each destination address.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `bits_per_target` is 0 or greater
    /// than 16.
    pub fn new(width: u32, bits_per_target: u32) -> Self {
        assert!(width <= 64, "path width {width} exceeds 64 bits");
        assert!(
            (1..=16).contains(&bits_per_target),
            "bits per target {bits_per_target} out of range 1..=16"
        );
        PathRegister {
            bits: 0,
            width,
            bits_per_target,
        }
    }

    /// Total register width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Bits contributed by each target.
    #[inline]
    pub fn bits_per_target(self) -> u32 {
        self.bits_per_target
    }

    /// The current path pattern.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of distinct targets the register can distinguish
    /// (`width / bits_per_target`, the depth Nair trades against
    /// per-target precision).
    #[inline]
    pub fn depth(self) -> u32 {
        self.width.checked_div(self.bits_per_target).unwrap_or(0)
    }

    /// Folds the destination address of an executed control transfer
    /// into the register.
    #[inline]
    pub fn push(&mut self, destination: u64) {
        if self.width == 0 {
            return;
        }
        let contribution = (destination >> 2) & low_mask(self.bits_per_target);
        self.bits = ((self.bits << self.bits_per_target) | contribution) & low_mask(self.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(16), 0xFFFF);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn push_shifts_newest_into_bit_zero() {
        let mut h = HistoryRegister::new(3);
        h.push(Outcome::Taken);
        assert_eq!(h.bits(), 0b001);
        h.push(Outcome::NotTaken);
        assert_eq!(h.bits(), 0b010);
        h.push(Outcome::Taken);
        assert_eq!(h.bits(), 0b101);
        h.push(Outcome::Taken); // oldest (taken) falls off
        assert_eq!(h.bits(), 0b011);
    }

    #[test]
    fn zero_width_register_is_inert() {
        let mut h = HistoryRegister::new(0);
        h.push(Outcome::Taken);
        assert_eq!(h.bits(), 0);
        assert!(!h.is_all_taken());
        assert_eq!(h.outcome_at(0), None);
    }

    #[test]
    fn all_taken_detection() {
        let mut h = HistoryRegister::new(2);
        assert!(!h.is_all_taken());
        h.push(Outcome::Taken);
        assert!(!h.is_all_taken());
        h.push(Outcome::Taken);
        assert!(h.is_all_taken());
        h.push(Outcome::NotTaken);
        assert!(!h.is_all_taken());
    }

    #[test]
    fn outcome_at_reads_back_pushes() {
        let mut h = HistoryRegister::new(4);
        let seq = [
            Outcome::Taken,
            Outcome::NotTaken,
            Outcome::Taken,
            Outcome::Taken,
        ];
        for o in seq {
            h.push(o);
        }
        // age 0 is the newest = last pushed
        assert_eq!(h.outcome_at(0), Some(Outcome::Taken));
        assert_eq!(h.outcome_at(1), Some(Outcome::Taken));
        assert_eq!(h.outcome_at(2), Some(Outcome::NotTaken));
        assert_eq!(h.outcome_at(3), Some(Outcome::Taken));
        assert_eq!(h.outcome_at(4), None);
    }

    #[test]
    fn with_bits_masks_to_width() {
        let h = HistoryRegister::with_bits(4, 0xFF);
        assert_eq!(h.bits(), 0xF);
        assert!(h.is_all_taken());
    }

    #[test]
    fn display_renders_oldest_first() {
        let mut h = HistoryRegister::new(3);
        h.push(Outcome::Taken);
        h.push(Outcome::Taken);
        h.push(Outcome::NotTaken);
        assert_eq!(h.to_string(), "TTN");
    }

    #[test]
    fn reset_pattern_prefixes() {
        // 0xC3FF = 1100 0011 1111 1111
        assert_eq!(reset_pattern(1), 0b1);
        assert_eq!(reset_pattern(2), 0b11);
        assert_eq!(reset_pattern(3), 0b110);
        assert_eq!(reset_pattern(8), 0b1100_0011);
        assert_eq!(reset_pattern(16), 0xC3FF);
        assert_eq!(reset_pattern(20), 0xC3FFC);
        assert_eq!(reset_pattern(64), 0xC3FF_C3FF_C3FF_C3FF);
        assert_eq!(reset_pattern(100), 0xC3FF_C3FF_C3FF_C3FF);
    }

    #[test]
    fn reset_pattern_is_never_all_ones_or_zero_beyond_two_bits() {
        for bits in 3..=32 {
            let p = reset_pattern(bits);
            assert_ne!(p, 0, "bits {bits}");
            assert_ne!(p, low_mask(bits), "bits {bits}");
        }
    }

    #[test]
    fn path_register_packs_target_bits() {
        let mut p = PathRegister::new(6, 2);
        p.push(0x40); // word 0x10 -> 00
        p.push(0x44); // word 0x11 -> 01
        p.push(0x4c); // word 0x13 -> 11
        assert_eq!(p.bits(), 0b00_01_11);
        p.push(0x48); // word 0x12 -> 10; oldest 00 falls off
        assert_eq!(p.bits(), 0b01_11_10);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn path_register_zero_width_is_inert() {
        let mut p = PathRegister::new(0, 2);
        p.push(0xFFFF);
        assert_eq!(p.bits(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_register_rejects_zero_bits_per_target() {
        let _ = PathRegister::new(8, 0);
    }
}
