//! The general two-level predictor model of the paper's Figure 1.
//!
//! A two-level predictor is a *row-selection box* (the first level) in
//! front of a [`CounterTable`] (the second level). The row-selection box
//! chooses a row "as a function of the branch address being predicted
//! and the outcome of previous branches"; the column is chosen by branch
//! address bits. Every concrete scheme in this crate — address-indexed,
//! GAg/GAs, gshare, path-based, PAg/PAs — is an instantiation of
//! [`TwoLevel`] with a different [`RowSelector`], which is also the
//! extension point for user-defined schemes.

use bpred_trace::{BranchRecord, Outcome};

use crate::{AliasStats, BranchPredictor, CounterState, CounterTable, TableGeometry};

/// The output of a row-selection box for one branch instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSelection {
    /// The selected row (masked by the table geometry on use).
    pub row: u64,
    /// Whether the row was selected by an all-taken history pattern —
    /// the tight-loop pattern whose aliasing the paper classifies as
    /// harmless.
    pub all_taken_pattern: bool,
}

impl RowSelection {
    /// A selection of `row` with no pattern information.
    pub fn plain(row: u64) -> Self {
        RowSelection {
            row,
            all_taken_pattern: false,
        }
    }
}

/// The first level of a two-level predictor: maps a branch address (and
/// internally recorded history) to a row of the second-level table.
///
/// Implementations must be deterministic. The engine calls
/// [`select`](RowSelector::select) once per predicted branch, then
/// [`train`](RowSelector::train) with the resolved outcome.
///
/// # Examples
///
/// A selector that gives even- and odd-word branches different rows:
///
/// ```
/// use bpred_core::{RowSelection, RowSelector, TableGeometry, TwoLevel};
/// use bpred_trace::Outcome;
///
/// #[derive(Debug)]
/// struct ParitySelector;
///
/// impl RowSelector for ParitySelector {
///     fn select(&mut self, pc: u64, _geometry: TableGeometry) -> RowSelection {
///         RowSelection::plain((pc >> 2) & 1)
///     }
///     fn train(&mut self, _pc: u64, _target: u64, _outcome: Outcome, _geometry: TableGeometry) {}
///     fn state_bits(&self) -> u64 {
///         0
///     }
///     fn describe(&self, geometry: TableGeometry) -> String {
///         format!("parity({geometry})")
///     }
/// }
///
/// let p = TwoLevel::with_selector(ParitySelector, TableGeometry::new(1, 4));
/// assert_eq!(p.geometry().rows(), 2);
/// ```
pub trait RowSelector {
    /// Selects the row for the branch at `pc` under `geometry`.
    fn select(&mut self, pc: u64, geometry: TableGeometry) -> RowSelection;

    /// Records the resolved outcome of the branch at `pc`.
    fn train(&mut self, pc: u64, target: u64, outcome: Outcome, geometry: TableGeometry);

    /// Observes a non-conditional control transfer (used by path-based
    /// selectors). The default does nothing.
    fn note_control_transfer(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// First-level table statistics, for selectors backed by one
    /// (self-history schemes). The default is `None`.
    fn level1_stats(&self) -> Option<crate::BhtStats> {
        None
    }

    /// First-level storage cost in bits.
    fn state_bits(&self) -> u64;

    /// Scheme name for reports, e.g. `"GAs(2^8 x 2^4)"`.
    fn describe(&self, geometry: TableGeometry) -> String;
}

/// A complete two-level predictor: a [`RowSelector`] in front of an
/// instrumented [`CounterTable`].
///
/// Construct concrete schemes through their aliases and inherent
/// constructors ([`AddressIndexed::new`](crate::AddressIndexed::new),
/// [`Gas::new`](crate::Gas::new), [`Gshare::new`](crate::Gshare::new),
/// [`PathBased::new`](crate::PathBased::new),
/// [`Pas::perfect`](crate::Pas), …) or plug in a custom selector with
/// [`TwoLevel::with_selector`].
#[derive(Debug, Clone)]
pub struct TwoLevel<S> {
    selector: S,
    table: CounterTable,
    /// Selection cached between `predict` and the matching `update`, so
    /// self-history selectors do only one first-level lookup per branch.
    pending: Option<(u64, RowSelection)>,
}

impl<S: RowSelector> TwoLevel<S> {
    /// Builds a predictor from a row selector and a table geometry,
    /// with counters in the default initial state.
    pub fn with_selector(selector: S, geometry: TableGeometry) -> Self {
        TwoLevel {
            selector,
            table: CounterTable::new(geometry),
            pending: None,
        }
    }

    /// As [`with_selector`](Self::with_selector) but with every counter
    /// initialised to `initial`.
    pub fn with_selector_and_initial_state(
        selector: S,
        geometry: TableGeometry,
        initial: CounterState,
    ) -> Self {
        TwoLevel {
            selector,
            table: CounterTable::with_initial_state(geometry, initial),
            pending: None,
        }
    }

    /// The second-level table geometry.
    pub fn geometry(&self) -> TableGeometry {
        self.table.geometry()
    }

    /// Aliasing statistics of the second-level table. Also available
    /// through [`BranchPredictor::alias_stats`] on trait objects.
    pub fn table_alias_stats(&self) -> AliasStats {
        self.table.alias_stats()
    }

    /// The row-selection box.
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// The second-level table.
    pub fn table(&self) -> &CounterTable {
        &self.table
    }

    fn selection_for(&mut self, pc: u64) -> RowSelection {
        match self.pending.take() {
            Some((cached_pc, sel)) if cached_pc == pc => sel,
            // update() without a matching predict() (or for a different
            // branch): fall back to a fresh selection.
            _ => {
                let geometry = self.table.geometry();
                self.selector.select(pc, geometry)
            }
        }
    }
}

impl<S: RowSelector> BranchPredictor for TwoLevel<S> {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let geometry = self.table.geometry();
        let sel = self.selector.select(pc, geometry);
        self.pending = Some((pc, sel));
        self.table
            .access(sel.row, pc >> 2, pc, sel.all_taken_pattern)
    }

    fn update(&mut self, pc: u64, target: u64, outcome: Outcome) {
        let sel = self.selection_for(pc);
        self.table.train(sel.row, pc >> 2, outcome);
        let geometry = self.table.geometry();
        self.selector.train(pc, target, outcome, geometry);
    }

    fn predict_then_update(&mut self, pc: u64, target: u64, outcome: Outcome) -> Outcome {
        // Fused fast path: one second-level cell read-modify-write
        // instead of separate access and train walks. Leaves `pending`
        // exactly as the unfused pair would (consumed); in a fused
        // replay loop it is always already empty, so skip the store.
        if self.pending.is_some() {
            self.pending = None;
        }
        let geometry = self.table.geometry();
        let sel = self.selector.select(pc, geometry);
        let predicted =
            self.table
                .access_train(sel.row, pc >> 2, pc, sel.all_taken_pattern, outcome);
        self.selector.train(pc, target, outcome, geometry);
        predicted
    }

    fn note_control_transfer(&mut self, record: &BranchRecord) {
        self.selector.note_control_transfer(record);
    }

    fn name(&self) -> String {
        self.selector.describe(self.table.geometry())
    }

    fn state_bits(&self) -> u64 {
        self.table.state_bits() + self.selector.state_bits()
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        Some(self.table.alias_stats())
    }

    fn bht_stats(&self) -> Option<crate::BhtStats> {
        self.selector.level1_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Always selects row 0 — degenerate but sufficient to test the
    /// TwoLevel plumbing.
    #[derive(Debug, Default)]
    struct ZeroSelector {
        trains: u64,
        transfers: u64,
    }

    impl RowSelector for ZeroSelector {
        fn select(&mut self, _pc: u64, _geometry: TableGeometry) -> RowSelection {
            RowSelection::plain(0)
        }
        fn train(&mut self, _pc: u64, _target: u64, _outcome: Outcome, _g: TableGeometry) {
            self.trains += 1;
        }
        fn note_control_transfer(&mut self, _record: &BranchRecord) {
            self.transfers += 1;
        }
        fn state_bits(&self) -> u64 {
            7
        }
        fn describe(&self, geometry: TableGeometry) -> String {
            format!("zero({geometry})")
        }
    }

    #[test]
    fn predict_then_update_trains_the_same_cell() {
        let mut p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(0, 0));
        let first = p.predict(0x40, 0);
        assert_eq!(first, Outcome::Taken); // weak-taken default
        p.update(0x40, 0, Outcome::NotTaken);
        p.predict(0x40, 0);
        p.update(0x40, 0, Outcome::NotTaken);
        assert_eq!(p.predict(0x40, 0), Outcome::NotTaken);
    }

    #[test]
    fn selector_train_is_called_once_per_update() {
        let mut p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(0, 0));
        for _ in 0..5 {
            let _ = p.predict(0x40, 0);
            p.update(0x40, 0, Outcome::Taken);
        }
        assert_eq!(p.selector().trains, 5);
    }

    #[test]
    fn update_without_predict_still_works() {
        let mut p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(0, 0));
        p.update(0x40, 0, Outcome::NotTaken);
        p.update(0x40, 0, Outcome::NotTaken);
        assert_eq!(p.predict(0x40, 0), Outcome::NotTaken);
    }

    #[test]
    fn control_transfers_reach_the_selector() {
        let mut p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(0, 0));
        p.note_control_transfer(&BranchRecord::jump(0, 4));
        assert_eq!(p.selector().transfers, 1);
    }

    #[test]
    fn state_bits_sums_table_and_selector() {
        let p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(2, 2));
        assert_eq!(p.state_bits(), 2 * 16 + 7);
    }

    #[test]
    fn name_comes_from_the_selector() {
        let p = TwoLevel::with_selector(ZeroSelector::default(), TableGeometry::new(1, 1));
        assert_eq!(p.name(), "zero(2^1 x 2^1)");
    }

    #[test]
    fn initial_state_is_configurable() {
        let p = TwoLevel::with_selector_and_initial_state(
            ZeroSelector::default(),
            TableGeometry::new(0, 0),
            CounterState::StrongNotTaken,
        );
        assert_eq!(p.table().peek(0, 0), Outcome::NotTaken);
    }
}
