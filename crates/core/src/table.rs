use bpred_trace::Outcome;

use crate::cell;
use crate::{AliasStats, CounterState, TableGeometry, TwoBitCounter};

/// The second-level table shared by every "A" scheme: a
/// [`TableGeometry`]-shaped array of [`TwoBitCounter`]s with built-in
/// aliasing instrumentation.
///
/// Every access funnels through [`CounterTable::access`], which performs
/// conflict detection (remembering the last branch address that touched
/// each counter, the paper's direct-mapped-cache analogy) before
/// returning the prediction. Training goes through
/// [`CounterTable::train`].
///
/// # Examples
///
/// ```
/// use bpred_core::{CounterTable, TableGeometry};
/// use bpred_trace::Outcome;
///
/// let mut t = CounterTable::new(TableGeometry::new(0, 2));
/// // Branches at word addresses 0 and 4 share column 0 of 4: a conflict.
/// let _ = t.access(0, 0, 0x00, false);
/// let _ = t.access(0, 0, 0x10, false);
/// assert_eq!(t.alias_stats().conflicts, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    geometry: TableGeometry,
    /// One [`cell`] word per counter: the low 62 bits of the branch
    /// address that last accessed it (the conflict-detection tag;
    /// [`cell::EMPTY_OWNER`] marks an untouched counter) packed above
    /// the two counter bits. One cache line per access instead of two
    /// parallel arrays — this is the single hottest load/store pair in
    /// the replay loop. Cell transitions live in [`cell`], the one
    /// definition shared with the multilane replay kernels.
    cells: Vec<u64>,
    stats: AliasStats,
}

impl CounterTable {
    /// Creates a table with every counter in the workspace default
    /// initial state (weakly taken).
    pub fn new(geometry: TableGeometry) -> Self {
        Self::with_initial_state(geometry, TwoBitCounter::default().state())
    }

    /// Creates a table with every counter in `initial` state — the knob
    /// the counter-initialisation ablation turns.
    pub fn with_initial_state(geometry: TableGeometry, initial: CounterState) -> Self {
        let n = geometry.counters() as usize;
        CounterTable {
            geometry,
            cells: vec![cell::fresh(initial.bits()); n],
            stats: AliasStats::default(),
        }
    }

    /// The cell index for `(row, col)`. Masking by `len - 1` (sizes are
    /// powers of two) is a no-op — the geometry index is already in
    /// range — but lets the compiler drop the bounds check in the
    /// replay hot loop.
    #[inline]
    fn cell_index(&self, row: u64, col: u64) -> usize {
        self.geometry.index(row, col) & (self.cells.len() - 1)
    }

    /// The table shape.
    #[inline]
    pub fn geometry(&self) -> TableGeometry {
        self.geometry
    }

    /// Accumulated aliasing statistics.
    #[inline]
    pub fn alias_stats(&self) -> AliasStats {
        self.stats
    }

    /// Storage cost of the counters, in bits.
    #[inline]
    pub fn state_bits(&self) -> u64 {
        2 * self.geometry.counters()
    }

    /// Reads the prediction for `(row, col)` on behalf of the branch at
    /// address `pc`, recording aliasing statistics.
    ///
    /// `all_taken_pattern` tells the instrumentation whether the row was
    /// selected by an all-ones history pattern (harmless tight-loop
    /// aliasing). Row and column are masked by the geometry, so callers
    /// may pass raw registers and word addresses.
    #[inline]
    pub fn access(&mut self, row: u64, col: u64, pc: u64, all_taken_pattern: bool) -> Outcome {
        let idx = self.cell_index(row, col);
        let (predicted, conflict, next) = cell::touch(self.cells[idx], cell::tag(pc));
        self.stats.record_access(conflict, all_taken_pattern);
        self.cells[idx] = next;
        predicted
    }

    /// Fused [`access`](CounterTable::access) followed by
    /// [`train`](CounterTable::train) on the same cell: one index
    /// computation and one cell read-modify-write instead of two of
    /// each. Observable behaviour is identical to the unfused pair —
    /// the prediction returned is the counter state *before* training.
    #[inline]
    pub fn access_train(
        &mut self,
        row: u64,
        col: u64,
        pc: u64,
        all_taken_pattern: bool,
        outcome: Outcome,
    ) -> Outcome {
        let idx = self.cell_index(row, col);
        let (predicted, conflict, next) = cell::step(self.cells[idx], cell::tag(pc), outcome);
        self.stats.record_access(conflict, all_taken_pattern);
        self.cells[idx] = next;
        predicted
    }

    /// Reads the prediction without touching instrumentation — for
    /// chooser-style consultations that are not table accesses in the
    /// paper's accounting (e.g. the losing side of a combining
    /// predictor).
    #[inline]
    pub fn peek(&self, row: u64, col: u64) -> Outcome {
        cell::predicted(self.cells[self.cell_index(row, col)])
    }

    /// Trains the counter at `(row, col)` with the resolved outcome.
    #[inline]
    pub fn train(&mut self, row: u64, col: u64, outcome: Outcome) {
        let idx = self.cell_index(row, col);
        self.cells[idx] = cell::retrain(self.cells[idx], outcome);
    }

    /// The state of the counter at `(row, col)` — exposed for tests and
    /// table-dump tooling.
    pub fn counter_state(&self, row: u64, col: u64) -> CounterState {
        let bits = cell::counter_bits(self.cells[self.cell_index(row, col)]);
        CounterState::from_bits(bits).expect("two-bit value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_predicts_initial_state() {
        let t = CounterTable::new(TableGeometry::new(2, 2));
        assert_eq!(t.peek(0, 0), Outcome::Taken); // weak taken default
        let t = CounterTable::with_initial_state(
            TableGeometry::new(2, 2),
            CounterState::StrongNotTaken,
        );
        assert_eq!(t.peek(3, 3), Outcome::NotTaken);
    }

    #[test]
    fn training_moves_only_the_addressed_counter() {
        let mut t = CounterTable::new(TableGeometry::new(1, 1));
        t.train(0, 0, Outcome::NotTaken);
        t.train(0, 0, Outcome::NotTaken);
        assert_eq!(t.peek(0, 0), Outcome::NotTaken);
        assert_eq!(t.peek(0, 1), Outcome::Taken);
        assert_eq!(t.peek(1, 0), Outcome::Taken);
    }

    #[test]
    fn first_access_is_not_a_conflict() {
        let mut t = CounterTable::new(TableGeometry::new(0, 0));
        let _ = t.access(0, 0, 0x40, false);
        assert_eq!(t.alias_stats().conflicts, 0);
        assert_eq!(t.alias_stats().accesses, 1);
    }

    #[test]
    fn repeat_access_by_same_branch_is_not_a_conflict() {
        let mut t = CounterTable::new(TableGeometry::new(0, 0));
        for _ in 0..10 {
            let _ = t.access(0, 0, 0x40, false);
        }
        assert_eq!(t.alias_stats().conflicts, 0);
    }

    #[test]
    fn alternating_branches_conflict_every_access() {
        let mut t = CounterTable::new(TableGeometry::new(0, 0));
        let _ = t.access(0, 0, 0x40, false);
        for _ in 0..9 {
            let _ = t.access(0, 0, 0x44, false);
            let _ = t.access(0, 0, 0x40, false);
        }
        // every access after the first hits a counter last touched by
        // the other branch
        assert_eq!(t.alias_stats().conflicts, 18);
        assert_eq!(t.alias_stats().accesses, 19);
    }

    #[test]
    fn distinct_cells_do_not_conflict() {
        let mut t = CounterTable::new(TableGeometry::new(1, 1));
        let _ = t.access(0, 0, 0x40, false);
        let _ = t.access(0, 1, 0x44, false);
        let _ = t.access(1, 0, 0x48, false);
        let _ = t.access(1, 1, 0x4c, false);
        assert_eq!(t.alias_stats().conflicts, 0);
    }

    #[test]
    fn harmless_flag_is_threaded_through() {
        let mut t = CounterTable::new(TableGeometry::new(0, 0));
        let _ = t.access(0, 0, 0x40, true);
        let _ = t.access(0, 0, 0x44, true);
        let _ = t.access(0, 0, 0x48, false);
        let s = t.alias_stats();
        assert_eq!(s.conflicts, 2);
        assert_eq!(s.harmless_conflicts, 1);
    }

    #[test]
    fn peek_does_not_count_as_access() {
        let mut t = CounterTable::new(TableGeometry::new(0, 1));
        let _ = t.peek(0, 0);
        assert_eq!(t.alias_stats().accesses, 0);
        let _ = t.access(0, 0, 0x40, false);
        assert_eq!(t.alias_stats().accesses, 1);
    }

    #[test]
    fn state_bits_counts_two_per_counter() {
        let t = CounterTable::new(TableGeometry::new(3, 2));
        assert_eq!(t.state_bits(), 2 * 32);
    }

    #[test]
    fn access_and_train_agree_on_indexing() {
        let mut t = CounterTable::new(TableGeometry::new(2, 2));
        // Train (2,1) down to not-taken, then read it back via access
        // with unmasked raw values that alias to the same cell.
        t.train(2, 1, Outcome::NotTaken);
        t.train(2, 1, Outcome::NotTaken);
        let raw_row = 2 | (1 << 60);
        let raw_col = 1 | (1 << 60);
        assert_eq!(t.access(raw_row, raw_col, 0x40, false), Outcome::NotTaken);
    }
}
