//! Dealiased predictors — the designs the paper's conclusion calls
//! for ("controlling aliasing will be the key to improving prediction
//! accuracy and taking advantage of inter-branch correlations").
//!
//! Three post-1996 schemes built directly on that observation:
//!
//! * [`Agree`] (Sprangle, Chappell, Alsup & Patt, ISCA 1997): counters
//!   record *agreement with a per-branch bias bit* instead of a
//!   direction, converting destructive aliasing between opposite-bias
//!   branches into neutral aliasing.
//! * [`BiMode`] (Lee, Chen & Mudge — this paper's own group —
//!   MICRO 1997): two gshare-indexed direction tables ("mostly taken"
//!   and "mostly not-taken") with a per-address choice table, so
//!   branches of opposite bias never share a counter.
//! * [`Gskew`] (Michaud, Seznec & Uhlig, ISCA 1997): three counter
//!   banks indexed by different hashes of (address, history) with a
//!   majority vote; two branches rarely collide in two banks at once.
//!
//! All three are evaluated by the `ablation_dealiased` harness against
//! gshare at equal state.

use std::collections::HashMap;

use bpred_trace::Outcome;

use crate::history::low_mask;
use crate::plan::SKEW_BANK_MULTIPLIERS;
use crate::{AliasStats, BranchPredictor, CounterTable, HistoryRegister, TableGeometry};

/// The agree predictor: a gshare-indexed table of two-bit counters
/// that predict whether the branch will *agree* with its bias bit.
///
/// The bias bit is per-branch and set once, from the first observed
/// outcome — Sprangle et al. keep it in the BTB, which is tagged, so
/// it does not alias; we model that with a map. Aliasing between two
/// branches that both mostly agree with their own biases trains the
/// shared *counter* in the same direction — harmless — even when the
/// branches go opposite ways.
///
/// # Examples
///
/// ```
/// use bpred_core::{Agree, BranchPredictor};
/// use bpred_trace::Outcome;
///
/// let mut p = Agree::new(8, 10);
/// let _ = p.predict(0x400, 0x100);
/// p.update(0x400, 0x100, Outcome::Taken);
/// assert_eq!(p.name(), "agree(h=8, 2^10)");
/// ```
#[derive(Debug, Clone)]
pub struct Agree {
    history: HistoryRegister,
    table: CounterTable,
    /// BTB-resident per-branch bias bits, latched at first execution.
    bias: HashMap<u64, Outcome>,
}

impl Agree {
    /// Creates an agree predictor with `history_bits` of global
    /// history and a `2^index_bits`-counter agreement table.
    pub fn new(history_bits: u32, index_bits: u32) -> Self {
        assert!(
            history_bits <= index_bits,
            "history ({history_bits}) must fit in the index ({index_bits})"
        );
        Agree {
            history: HistoryRegister::new(history_bits),
            table: CounterTable::new(TableGeometry::new(index_bits, 0)),
            bias: HashMap::new(),
        }
    }

    fn index(&self, pc: u64) -> u64 {
        let word = pc >> 2;
        self.history.bits() ^ (word & low_mask(self.table.geometry().row_bits()))
    }

    fn bias_for(&self, pc: u64) -> Outcome {
        // An unseen branch defaults to taken (most branches are).
        self.bias.get(&pc).copied().unwrap_or(Outcome::Taken)
    }
}

impl BranchPredictor for Agree {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let agree = self
            .table
            .access(self.index(pc), 0, pc, self.history.is_all_taken());
        let bias = self.bias_for(pc);
        if agree.is_taken() {
            bias
        } else {
            !bias
        }
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        self.bias.entry(pc).or_insert(outcome);
        let bias = self.bias_for(pc);
        let agreement = Outcome::from(outcome == bias);
        self.table.train(self.index(pc), 0, agreement);
        self.history.push(outcome);
    }

    fn name(&self) -> String {
        format!(
            "agree(h={}, 2^{})",
            self.history.width(),
            self.table.geometry().row_bits()
        )
    }

    fn state_bits(&self) -> u64 {
        // One BTB-resident bias bit per tracked branch.
        self.table.state_bits() + self.bias.len() as u64 + u64::from(self.history.width())
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        Some(self.table.alias_stats())
    }
}

/// The bi-mode predictor: a per-address choice table steers each
/// branch to one of two gshare-indexed direction tables, so
/// taken-leaning and not-taken-leaning branches never share counters.
///
/// # Examples
///
/// ```
/// use bpred_core::{BiMode, BranchPredictor};
///
/// let mut p = BiMode::new(9, 9, 9);
/// assert_eq!(p.name(), "bimode(h=9, 2x2^9 + choice 2^9)");
/// let _ = p.predict(0x400, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct BiMode {
    history: HistoryRegister,
    taken_table: CounterTable,
    not_taken_table: CounterTable,
    choice: CounterTable,
}

impl BiMode {
    /// Creates a bi-mode predictor: `history_bits` of global history,
    /// two `2^direction_bits`-counter direction tables, and a
    /// `2^choice_bits`-counter address-indexed choice table.
    pub fn new(history_bits: u32, direction_bits: u32, choice_bits: u32) -> Self {
        assert!(
            history_bits <= direction_bits,
            "history ({history_bits}) must fit in the direction index ({direction_bits})"
        );
        BiMode {
            history: HistoryRegister::new(history_bits),
            taken_table: CounterTable::new(TableGeometry::new(direction_bits, 0)),
            not_taken_table: CounterTable::new(TableGeometry::new(direction_bits, 0)),
            choice: CounterTable::new(TableGeometry::new(0, choice_bits)),
        }
    }

    fn direction_index(&self, pc: u64) -> u64 {
        let word = pc >> 2;
        self.history.bits() ^ (word & low_mask(self.taken_table.geometry().row_bits()))
    }

    fn choose_taken_table(&self, pc: u64) -> bool {
        self.choice.peek(0, pc >> 2).is_taken()
    }
}

impl BranchPredictor for BiMode {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let idx = self.direction_index(pc);
        let all_taken = self.history.is_all_taken();
        if self.choose_taken_table(pc) {
            self.taken_table.access(idx, 0, pc, all_taken)
        } else {
            self.not_taken_table.access(idx, 0, pc, all_taken)
        }
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        let idx = self.direction_index(pc);
        let use_taken = self.choose_taken_table(pc);
        let selected_prediction = if use_taken {
            self.taken_table.peek(idx, 0)
        } else {
            self.not_taken_table.peek(idx, 0)
        };
        // Train the selected direction table.
        if use_taken {
            self.taken_table.train(idx, 0, outcome);
        } else {
            self.not_taken_table.train(idx, 0, outcome);
        }
        // Train the choice table towards the outcome, except when the
        // choice disagreed with the outcome but the selected table
        // still predicted correctly (the classic bi-mode exception).
        let choice_direction = Outcome::from(use_taken);
        let exception = choice_direction != outcome && selected_prediction == outcome;
        if !exception {
            self.choice.train(0, pc >> 2, outcome);
        }
        self.history.push(outcome);
    }

    fn name(&self) -> String {
        format!(
            "bimode(h={}, 2x2^{} + choice 2^{})",
            self.history.width(),
            self.taken_table.geometry().row_bits(),
            self.choice.geometry().col_bits()
        )
    }

    fn state_bits(&self) -> u64 {
        self.taken_table.state_bits()
            + self.not_taken_table.state_bits()
            + self.choice.state_bits()
            + u64::from(self.history.width())
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        let mut total = self.taken_table.alias_stats();
        total += self.not_taken_table.alias_stats();
        Some(total)
    }
}

/// The gskew predictor: three counter banks indexed by different
/// hashes of the (address, history) pair; the prediction is the
/// majority vote. Two branches that collide in one bank almost never
/// collide in the other two, so the vote masks single-bank aliasing.
///
/// The per-bank hashes are odd-multiplier mixes rather than Michaud et
/// al.'s exact skewing matrices; what matters for the dealiasing
/// argument is that the three index functions are pairwise
/// independent, which multiplicative hashing provides.
///
/// # Examples
///
/// ```
/// use bpred_core::{BranchPredictor, Gskew};
///
/// let mut p = Gskew::new(8, 9);
/// assert_eq!(p.name(), "gskew(h=8, 3x2^9)");
/// let _ = p.predict(0x400, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct Gskew {
    history: HistoryRegister,
    banks: [CounterTable; 3],
}

impl Gskew {
    /// Creates a gskew predictor: `history_bits` of global history and
    /// three `2^bank_bits`-counter banks.
    pub fn new(history_bits: u32, bank_bits: u32) -> Self {
        assert!(
            bank_bits <= 24,
            "bank of 2^{bank_bits} counters is too large"
        );
        let geometry = TableGeometry::new(bank_bits, 0);
        Gskew {
            history: HistoryRegister::new(history_bits),
            banks: [
                CounterTable::new(geometry),
                CounterTable::new(geometry),
                CounterTable::new(geometry),
            ],
        }
    }

    fn bank_index(&self, bank: usize, pc: u64) -> u64 {
        let bits = self.banks[bank].geometry().row_bits();
        let key = ((pc >> 2) << 20) ^ self.history.bits();
        (key.wrapping_mul(SKEW_BANK_MULTIPLIERS[bank])) >> (64 - bits)
    }
}

impl BranchPredictor for Gskew {
    fn predict(&mut self, pc: u64, _target: u64) -> Outcome {
        let all_taken = self.history.is_all_taken();
        let mut votes = 0u32;
        for bank in 0..3 {
            let idx = self.bank_index(bank, pc);
            if self.banks[bank].access(idx, 0, pc, all_taken).is_taken() {
                votes += 1;
            }
        }
        Outcome::from(votes >= 2)
    }

    fn update(&mut self, pc: u64, _target: u64, outcome: Outcome) {
        // Total update policy: every bank trains on every branch.
        for bank in 0..3 {
            let idx = self.bank_index(bank, pc);
            self.banks[bank].train(idx, 0, outcome);
        }
        self.history.push(outcome);
    }

    fn name(&self) -> String {
        format!(
            "gskew(h={}, 3x2^{})",
            self.history.width(),
            self.banks[0].geometry().row_bits()
        )
    }

    fn state_bits(&self) -> u64 {
        self.banks.iter().map(CounterTable::state_bits).sum::<u64>()
            + u64::from(self.history.width())
    }

    fn alias_stats(&self) -> Option<AliasStats> {
        let mut total = AliasStats::default();
        for bank in &self.banks {
            total += bank.alias_stats();
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step<P: BranchPredictor + ?Sized>(p: &mut P, pc: u64, outcome: Outcome) -> Outcome {
        let predicted = p.predict(pc, 0x100);
        p.update(pc, 0x100, outcome);
        predicted
    }

    /// Two strongly opposite branches forced onto the same gshare
    /// counter thrash; each dealiased scheme must survive the overlap.
    fn opposed_pair_misses<P: BranchPredictor>(p: &mut P) -> u32 {
        let mut wrong = 0;
        for i in 0..600u32 {
            // Identical low address bits & shared history pattern.
            for (pc, out) in [
                (0x1000u64, Outcome::Taken),
                (0x1000 + (1 << 14), Outcome::NotTaken),
            ] {
                if i >= 50 && step(p, pc, out) != out {
                    wrong += 1;
                }
            }
        }
        wrong
    }

    #[test]
    fn agree_learns_opposite_biases_under_aliasing() {
        let mut agree = Agree::new(0, 4); // tiny table, heavy aliasing
        let wrong = opposed_pair_misses(&mut agree);
        // Both branches agree with their own bias bits; the shared
        // counter trains toward "agree" for both.
        assert!(wrong < 20, "agree mispredicted {wrong}");
    }

    #[test]
    fn agree_infers_bias_from_first_outcome() {
        let mut p = Agree::new(2, 6);
        step(&mut p, 0x40, Outcome::NotTaken);
        // Bias latched to not-taken; agreement keeps predicting it.
        for _ in 0..10 {
            assert_eq!(step(&mut p, 0x40, Outcome::NotTaken), Outcome::NotTaken);
        }
    }

    #[test]
    fn bimode_separates_opposite_bias_branches() {
        let mut bimode = BiMode::new(4, 4, 8);
        let wrong = opposed_pair_misses(&mut bimode);
        assert!(wrong < 60, "bimode mispredicted {wrong}");
    }

    #[test]
    fn bimode_choice_table_routes_by_address() {
        let mut p = BiMode::new(2, 4, 4);
        for _ in 0..30 {
            step(&mut p, 0x40, Outcome::Taken);
            step(&mut p, 0x44, Outcome::NotTaken);
        }
        assert!(p.choose_taken_table(0x40));
        assert!(!p.choose_taken_table(0x44));
    }

    #[test]
    fn gskew_majority_masks_single_bank_aliasing() {
        let mut gskew = Gskew::new(4, 6);
        let mut gshare = crate::Gshare::new(4, 2); // matched 3*64 vs 64... comparable scale
        let skew_wrong = opposed_pair_misses(&mut gskew);
        let share_wrong = opposed_pair_misses(&mut gshare);
        // The vote should not do worse than the aliased single table.
        assert!(
            skew_wrong <= share_wrong + 10,
            "{skew_wrong} vs {share_wrong}"
        );
    }

    #[test]
    fn gskew_banks_use_distinct_indices() {
        let p = Gskew::new(6, 8);
        let (a, b, c) = (
            p.bank_index(0, 0x1234),
            p.bank_index(1, 0x1234),
            p.bank_index(2, 0x1234),
        );
        assert!(a != b || b != c, "degenerate bank hashing");
        for bank in 0..3 {
            assert!(p.bank_index(bank, 0x1234) < 256);
        }
    }

    #[test]
    fn all_learn_a_simple_biased_branch() {
        let mut agree = Agree::new(4, 8);
        let mut bimode = BiMode::new(4, 8, 8);
        let mut gskew = Gskew::new(4, 8);
        for p in [
            &mut agree as &mut dyn BranchPredictor,
            &mut bimode,
            &mut gskew,
        ] {
            let mut wrong = 0;
            for i in 0..200u32 {
                if step(p, 0x80, Outcome::Taken) != Outcome::Taken && i > 4 {
                    wrong += 1;
                }
            }
            assert_eq!(wrong, 0, "{}", p.name());
        }
    }

    #[test]
    fn state_bits_account_all_tables() {
        assert_eq!(Agree::new(4, 6).state_bits(), 2 * 64 + 4);
        assert_eq!(BiMode::new(4, 6, 5).state_bits(), 2 * 64 * 2 + 2 * 32 + 4);
        assert_eq!(Gskew::new(4, 6).state_bits(), 3 * 2 * 64 + 4);
    }

    #[test]
    fn alias_stats_are_reported() {
        let mut p = Gskew::new(2, 4);
        step(&mut p, 0x40, Outcome::Taken);
        step(&mut p, 0x44, Outcome::Taken);
        let stats = BranchPredictor::alias_stats(&p).unwrap();
        assert_eq!(stats.accesses, 6); // 3 banks x 2 branches
    }

    #[test]
    fn names_describe_configuration() {
        assert_eq!(Agree::new(8, 10).name(), "agree(h=8, 2^10)");
        assert_eq!(
            BiMode::new(9, 10, 11).name(),
            "bimode(h=9, 2x2^10 + choice 2^11)"
        );
        assert_eq!(Gskew::new(7, 9).name(), "gskew(h=7, 3x2^9)");
    }
}
