//! Property tests: predictor state machines, structural equivalences
//! between schemes, and accounting invariants, over arbitrary branch
//! streams.

use proptest::prelude::*;

use bpred_core::{
    AddressIndexed, BranchPredictor, CounterState, Gas, Gshare, HistoryRegister, Pas,
    PredictorConfig, SaturatingCounter, TableGeometry, TwoBitCounter,
};
use bpred_trace::Outcome;

/// An arbitrary short branch stream: (pc index into a small text
/// segment, outcome) pairs.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..64, any::<bool>()), 1..400)
}

fn drive<P: BranchPredictor>(p: &mut P, stream: &[(u64, bool)]) -> Vec<Outcome> {
    stream
        .iter()
        .map(|&(slot, taken)| {
            let pc = 0x1000 + 4 * slot;
            let target = 0x2000 + 4 * slot;
            let predicted = p.predict(pc, target);
            p.update(pc, target, Outcome::from(taken));
            predicted
        })
        .collect()
}

proptest! {
    #[test]
    fn two_bit_counter_never_leaves_its_range(
        start in 0u8..4,
        outcomes in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut c = TwoBitCounter::new(CounterState::from_bits(start).unwrap());
        for taken in outcomes {
            let before = c.state().bits();
            c.train(Outcome::from(taken));
            let after = c.state().bits();
            prop_assert!(after <= 3);
            // Transitions move at most one step.
            prop_assert!((after as i8 - before as i8).abs() <= 1);
        }
    }

    #[test]
    fn saturating_counter_tracks_reference_model(
        bits in 1u32..=8,
        outcomes in prop::collection::vec(any::<bool>(), 0..128),
    ) {
        let max = (1u32 << bits) - 1;
        let mut reference = max / 2;
        let mut counter = SaturatingCounter::new(bits, reference);
        for taken in outcomes {
            if taken {
                reference = (reference + 1).min(max);
            } else {
                reference = reference.saturating_sub(1);
            }
            counter.train(Outcome::from(taken));
            prop_assert_eq!(counter.value(), reference);
        }
    }

    #[test]
    fn history_register_matches_bit_vector_model(
        width in 0u32..=24,
        outcomes in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut h = HistoryRegister::new(width);
        let mut model: Vec<bool> = Vec::new();
        for taken in outcomes {
            h.push(Outcome::from(taken));
            model.push(taken);
        }
        // Reconstruct the register from the last `width` outcomes.
        let mut expected = 0u64;
        for &taken in model.iter().rev().take(width as usize).collect::<Vec<_>>().iter().rev() {
            expected = (expected << 1) | u64::from(*taken);
        }
        prop_assert_eq!(h.bits(), expected);
        prop_assert_eq!(
            h.is_all_taken(),
            width > 0
                && model.len() >= width as usize
                && model.iter().rev().take(width as usize).all(|&t| t)
        );
    }

    #[test]
    fn geometry_index_is_in_bounds_and_injective_on_masked_inputs(
        row_bits in 0u32..=8,
        col_bits in 0u32..=8,
        row in any::<u64>(),
        col in any::<u64>(),
    ) {
        let g = TableGeometry::new(row_bits, col_bits);
        let idx = g.index(row, col);
        prop_assert!(idx < g.counters() as usize);
        // Masked coordinates round-trip through the index.
        let row_m = row & (g.rows() - 1);
        let col_m = col & (g.cols() - 1);
        prop_assert_eq!(idx as u64, (row_m << col_bits) | col_m);
    }

    #[test]
    fn predictors_are_deterministic(stream in arb_stream()) {
        for config in [
            PredictorConfig::AddressIndexed { addr_bits: 4 },
            PredictorConfig::Gshare { history_bits: 5, col_bits: 2 },
            PredictorConfig::PasFinite { history_bits: 4, col_bits: 1, entries: 16, ways: 2 },
            PredictorConfig::Path { row_bits: 5, col_bits: 2, bits_per_target: 2 },
            PredictorConfig::Tournament { addr_bits: 4, history_bits: 4, chooser_bits: 4 },
        ] {
            let a = drive(&mut config.build(), &stream);
            let b = drive(&mut config.build(), &stream);
            prop_assert_eq!(a, b, "{} not deterministic", config);
        }
    }

    #[test]
    fn gas_with_zero_history_equals_address_indexed(stream in arb_stream()) {
        let mut gas = Gas::new(0, 5);
        let mut addr = AddressIndexed::new(5);
        prop_assert_eq!(drive(&mut gas, &stream), drive(&mut addr, &stream));
    }

    #[test]
    fn gshare_with_zero_history_equals_address_indexed(stream in arb_stream()) {
        let mut gshare = Gshare::new(0, 5);
        let mut addr = AddressIndexed::new(5);
        prop_assert_eq!(drive(&mut gshare, &stream), drive(&mut addr, &stream));
    }

    #[test]
    fn gshare_single_column_equals_gas_when_address_bits_vanish(stream in arb_stream()) {
        // With every branch at the same row-address bits (all pcs here
        // share pc>>2 upper bits only when column field consumes the
        // varying bits), gshare == GAs XORed by a constant... instead
        // test the stronger structural fact: one branch only.
        let single: Vec<(u64, bool)> = stream.iter().map(|&(_, t)| (0, t)).collect();
        let mut gshare = Gshare::new(6, 0);
        let mut gas = Gas::new(6, 0);
        prop_assert_eq!(drive(&mut gshare, &single), drive(&mut gas, &single));
    }

    #[test]
    fn pas_perfect_equals_oversized_finite_bht(stream in arb_stream()) {
        let mut ideal = Pas::perfect(5, 2);
        let mut big = Pas::with_bht(5, 2, 1024, 4);
        prop_assert_eq!(drive(&mut ideal, &stream), drive(&mut big, &stream));
    }

    #[test]
    fn alias_accounting_invariants(stream in arb_stream()) {
        let mut p = Gas::new(4, 2);
        let _ = drive(&mut p, &stream);
        let alias = BranchPredictor::alias_stats(&p).expect("tracked");
        prop_assert_eq!(alias.accesses, stream.len() as u64);
        prop_assert!(alias.conflicts <= alias.accesses);
        prop_assert!(alias.harmless_conflicts <= alias.conflicts);
    }

    #[test]
    fn bht_accounting_invariants(stream in arb_stream()) {
        let mut p = Pas::with_bht(4, 0, 16, 2);
        let _ = drive(&mut p, &stream);
        let bht = p.first_level_stats();
        prop_assert_eq!(bht.accesses, stream.len() as u64);
        prop_assert!(bht.misses <= bht.accesses);
        // At most one cold miss per distinct branch plus conflicts; at
        // least one miss if anything ran.
        prop_assert!(bht.misses >= 1);
    }

    #[test]
    fn mispredictions_never_exceed_stream_length(stream in arb_stream()) {
        let mut p = Gshare::new(4, 2);
        let predictions = drive(&mut p, &stream);
        let wrong = predictions
            .iter()
            .zip(&stream)
            .filter(|(pred, (_, taken))| pred.is_taken() != *taken)
            .count();
        prop_assert!(wrong <= stream.len());
    }

    #[test]
    fn config_strings_round_trip(
        h in 0u32..=14,
        c in 0u32..=6,
        entries_log in 4u32..=12,
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let configs = [
            PredictorConfig::Gas { history_bits: h, col_bits: c },
            PredictorConfig::Gshare { history_bits: h, col_bits: c },
            PredictorConfig::PasInfinite { history_bits: h, col_bits: c },
            PredictorConfig::PasFinite {
                history_bits: h,
                col_bits: c,
                entries: 1 << entries_log,
                ways,
            },
        ];
        for config in configs {
            let text = config.to_string();
            let parsed: PredictorConfig = text.parse().expect("parse own display");
            prop_assert_eq!(parsed, config);
        }
    }

    #[test]
    fn state_bits_match_geometry(
        row_bits in 0u32..=10,
        col_bits in 0u32..=6,
    ) {
        let gas = Gas::new(row_bits, col_bits);
        prop_assert_eq!(
            gas.state_bits(),
            2 * (1u64 << (row_bits + col_bits)) + u64::from(row_bits)
        );
    }
}

mod reference_models {
    use proptest::prelude::*;
    use std::collections::HashMap;

    use bpred_core::{BranchTargetBuffer, HistoryTable, SetAssocBht};
    use bpred_trace::Outcome;

    proptest! {
        /// A fully associative SetAssocBht (ways == entries) with more
        /// entries than distinct branches behaves exactly like a
        /// dictionary of shift registers.
        #[test]
        fn fully_associative_bht_matches_dictionary(
            ops in prop::collection::vec((0u64..24, any::<bool>()), 1..300),
        ) {
            let mut bht = SetAssocBht::new(32, 32, 6);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (slot, taken) in ops {
                let pc = 0x100 + 4 * slot;
                let got = bht.lookup(pc);
                let entry = model
                    .entry(pc)
                    .or_insert_with(|| bpred_core::reset_pattern(6));
                prop_assert_eq!(got, *entry);
                bht.record(pc, Outcome::from(taken));
                *entry = ((*entry << 1) | u64::from(taken)) & 0x3F;
            }
            // Cold misses only: one per distinct branch.
            prop_assert_eq!(bht.stats().misses as usize, model.len());
        }

        /// A BTB with capacity for the whole working set behaves like a
        /// map from pc to the most recent taken-target.
        #[test]
        fn big_btb_matches_a_map(
            ops in prop::collection::vec((0u64..32, 0u64..8), 1..300),
        ) {
            let mut btb = BranchTargetBuffer::new(128, 4);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (slot, t) in ops {
                let pc = 0x200 + 4 * slot;
                let target = 0x4000 + 4 * t;
                prop_assert_eq!(btb.lookup(pc), model.get(&pc).copied());
                btb.record(pc, target);
                model.insert(pc, target);
            }
        }

        /// BTB statistics invariants hold under arbitrary access mixes.
        #[test]
        fn btb_stats_invariants(
            ops in prop::collection::vec((0u64..200, any::<bool>()), 1..400),
        ) {
            let mut btb = BranchTargetBuffer::new(16, 2);
            for (slot, record_too) in ops {
                let pc = 0x300 + 4 * slot;
                let _ = btb.lookup(pc);
                if record_too {
                    btb.record(pc, 0x8000 + pc);
                }
            }
            let s = btb.stats();
            prop_assert!(s.hits <= s.lookups);
            prop_assert!(s.wrong_target <= s.hits + s.lookups);
            prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
        }
    }
}
