//! Property tests: calibration and structural invariants of the
//! workload machinery over arbitrary parameters.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use bpred_trace::stats::CoverageBuckets;
use bpred_workloads::{bucket_weights, suite, AliasTable, TextLayout};

proptest! {
    #[test]
    fn bucket_weights_hit_their_masses(
        first in 1usize..40,
        next40 in 1usize..200,
        next9 in 1usize..400,
        last in 1usize..800,
    ) {
        let buckets = CoverageBuckets {
            first_50: first,
            next_40: next40,
            next_9: next9,
            last_1: last,
        };
        let w = bucket_weights(&buckets);
        prop_assert_eq!(w.len(), buckets.total());
        prop_assert!(w.iter().all(|&x| x > 0.0));
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let head: f64 = w[..first].iter().sum();
        prop_assert!((head - 0.5).abs() < 1e-9, "head mass {head}");
        let to90: f64 = w[..first + next40].iter().sum();
        prop_assert!((to90 - 0.9).abs() < 1e-9, "90% mass {to90}");
    }

    #[test]
    fn bucket_weights_are_heaviest_first_across_buckets(
        first in 1usize..20,
        next40 in 1usize..60,
    ) {
        // The lightest branch of the 50%-bucket must outweigh the
        // heaviest of the 40%-bucket whenever per-branch mass says so;
        // at minimum, weights within each bucket are non-increasing.
        let buckets = CoverageBuckets {
            first_50: first,
            next_40: next40,
            next_9: 1,
            last_1: 1,
        };
        let w = bucket_weights(&buckets);
        prop_assert!(w[..first].windows(2).all(|p| p[0] >= p[1]));
        prop_assert!(w[first..first + next40].windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn alias_table_samples_in_bounds(
        weights in prop::collection::vec(0.0f64..10.0, 1..100),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight index {idx}");
        }
    }

    #[test]
    fn layout_addresses_are_unique_and_aligned(n in 1usize..2000, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let layout = TextLayout::generate(n, &mut rng);
        prop_assert_eq!(layout.branch_pcs().len(), n);
        let mut pcs: Vec<u64> = layout.branch_pcs().to_vec();
        pcs.sort_unstable();
        pcs.dedup();
        prop_assert_eq!(pcs.len(), n, "duplicate branch addresses");
        prop_assert!(layout.branch_pcs().iter().all(|pc| pc % 4 == 0));
    }

    #[test]
    fn traces_are_seed_deterministic(seed in any::<u64>(), len in 100usize..2000) {
        let model = suite::compress().scaled(len);
        prop_assert_eq!(model.trace(seed), model.trace(seed));
        prop_assert_eq!(model.trace(seed).conditional_len(), len);
    }

    #[test]
    fn different_seeds_usually_differ(seed in any::<u64>()) {
        let model = suite::compress().scaled(500);
        prop_assert_ne!(model.trace(seed), model.trace(seed.wrapping_add(1)));
    }

    #[test]
    fn all_emitted_pcs_belong_to_the_program(seed in any::<u64>()) {
        let model = suite::xlisp().scaled(1_000);
        let valid: std::collections::HashSet<u64> =
            model.branches().iter().map(|b| b.pc).collect();
        for r in model.trace(seed).iter().filter(|r| r.is_conditional()) {
            prop_assert!(valid.contains(&r.pc));
        }
    }
}

mod cfg_properties {
    use proptest::prelude::*;

    use bpred_workloads::{CfgConfig, CfgProgram, Terminator};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated programs are structurally sound for any seed and
        /// a range of shapes.
        #[test]
        fn cfg_structure_is_sound(
            seed in any::<u64>(),
            functions in 1usize..12,
            variables in 1u8..24,
        ) {
            let program = CfgProgram::generate(
                CfgConfig {
                    functions,
                    variables,
                    ..CfgConfig::default()
                },
                seed,
            );
            let n = program.blocks().len();
            prop_assert_eq!(program.entries().len(), functions);
            for block in program.blocks() {
                match block.terminator {
                    Terminator::Cond { taken, fall, .. } => {
                        prop_assert!(taken < n && fall < n);
                    }
                    Terminator::Jump { to } => prop_assert!(to < n),
                    Terminator::Call { callee, resume } => {
                        prop_assert!(callee < n && resume < n);
                        prop_assert!(program.entries().contains(&callee));
                    }
                    Terminator::Return | Terminator::Exit => {}
                }
            }
        }

        /// Execution always terminates with the requested number of
        /// conditionals, for any seed.
        #[test]
        fn cfg_traces_hit_their_length(seed in any::<u64>(), len in 1usize..3000) {
            let program = CfgProgram::generate(CfgConfig::default(), seed);
            let trace = program.trace(seed, len);
            prop_assert_eq!(trace.conditional_len(), len);
        }
    }
}
