//! Multiprogrammed workloads.
//!
//! The IBS-Ultrix traces the paper uses "include both instructions
//! executed at the user level and at the kernel level, as well as
//! instructions executed by auxiliary processes such as the X server"
//! (§2) — i.e. several instruction streams time-sliced through one
//! predictor. [`Multiprogrammed`] reproduces that: two or more
//! workload models execute in round-robin quanta over a shared
//! predictor, so context switches pollute global history, counter
//! tables, and first-level tables exactly as OS interleaving does.
//! Each context's code is placed in its own 256 MiB address segment
//! (like user/kernel/X-server text), so distinct contexts never share
//! branch addresses — only predictor state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bpred_trace::Trace;

use crate::behavior::mix64;
use crate::model::WorkloadModel;

/// A round-robin interleaving of several workload models.
///
/// # Examples
///
/// ```
/// use bpred_workloads::{suite, Multiprogrammed};
///
/// // An application time-sliced with "kernel" activity.
/// let mix = Multiprogrammed::new(vec![suite::mpeg_play(), suite::sdet()], 5_000);
/// let trace = mix.trace(1, 40_000);
/// assert_eq!(trace.conditional_len(), 40_000);
/// ```
#[derive(Debug, Clone)]
pub struct Multiprogrammed {
    contexts: Vec<WorkloadModel>,
    quantum: usize,
}

impl Multiprogrammed {
    /// Creates a mix of `contexts` switched every `quantum`
    /// conditional branches.
    ///
    /// The paper-era context-switch interval was on the order of
    /// thousands of instructions; with ~14% branch density a quantum
    /// of 1,000–10,000 branches spans the realistic range.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two contexts are given or the quantum is
    /// zero.
    pub fn new(contexts: Vec<WorkloadModel>, quantum: usize) -> Self {
        assert!(contexts.len() >= 2, "a mix needs at least two contexts");
        assert!(quantum > 0, "quantum must be positive");
        Multiprogrammed { contexts, quantum }
    }

    /// The constituent models.
    pub fn contexts(&self) -> &[WorkloadModel] {
        &self.contexts
    }

    /// Branches per scheduling quantum.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The address-segment base of context `i`: contexts are placed
    /// 256 MiB apart.
    pub fn segment_base(i: usize) -> u64 {
        (i as u64) << 28
    }

    /// Generates an interleaved trace with exactly `conditionals`
    /// conditional branches.
    ///
    /// Each context's stream is generated once (deterministically from
    /// `seed`), relocated into its own address segment, and consumed
    /// in quanta with a ±25% jitter, like real scheduler slices.
    pub fn trace(&self, seed: u64, conditionals: usize) -> Trace {
        // Generate each context's private stream, long enough that the
        // round-robin never starves.
        let per_context = conditionals / self.contexts.len() + self.quantum + 1;
        let streams: Vec<Vec<bpred_trace::BranchRecord>> = self
            .contexts
            .iter()
            .enumerate()
            .map(|(i, model)| {
                model
                    .trace_of_length(mix64(seed ^ (i as u64)), per_context)
                    .into_records()
            })
            .collect();

        let mut rng = SmallRng::seed_from_u64(mix64(seed ^ 0x5C4E_D01E));
        let mut cursors = vec![0usize; streams.len()];
        let mut trace = Trace::with_capacity(conditionals + conditionals / 8);
        let mut emitted = 0usize;
        let mut context = 0usize;

        while emitted < conditionals {
            let slice = self.jittered_quantum(&mut rng);
            let cursor = &mut cursors[context];
            let stream = &streams[context];
            let mut in_slice = 0usize;
            let base = Self::segment_base(context);
            while in_slice < slice && emitted < conditionals && *cursor < stream.len() {
                let mut record = stream[*cursor];
                *cursor += 1;
                record.pc += base;
                record.target += base;
                if record.is_conditional() {
                    in_slice += 1;
                    emitted += 1;
                }
                trace.push(record);
            }
            context = (context + 1) % streams.len();
        }
        trace
    }

    fn jittered_quantum(&self, rng: &mut SmallRng) -> usize {
        let low = (self.quantum * 3) / 4;
        let high = (self.quantum * 5) / 4;
        rng.gen_range(low.max(1)..=high.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use std::collections::HashSet;

    fn mix(quantum: usize) -> Multiprogrammed {
        Multiprogrammed::new(
            vec![
                suite::mpeg_play().scaled(50_000),
                suite::sdet().scaled(50_000),
            ],
            quantum,
        )
    }

    #[test]
    fn trace_has_requested_length_and_is_deterministic() {
        let m = mix(1_000);
        let t = m.trace(3, 20_000);
        assert_eq!(t.conditional_len(), 20_000);
        assert_eq!(m.trace(3, 20_000), t);
        assert_ne!(m.trace(4, 20_000), t);
    }

    #[test]
    fn both_contexts_appear_in_their_segments() {
        let m = mix(500);
        let t = m.trace(1, 10_000);
        let mpeg_pcs: HashSet<u64> = m.contexts()[0].branches().iter().map(|b| b.pc).collect();
        let sdet_pcs: HashSet<u64> = m.contexts()[1].branches().iter().map(|b| b.pc).collect();
        let mut saw = [false, false];
        for r in t.iter().filter(|r| r.is_conditional()) {
            let segment = (r.pc >> 28) as usize;
            assert!(segment < 2, "{:#x} outside both segments", r.pc);
            let local = r.pc - Multiprogrammed::segment_base(segment);
            if segment == 0 {
                assert!(mpeg_pcs.contains(&local));
            } else {
                assert!(sdet_pcs.contains(&local));
            }
            saw[segment] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn contexts_alternate_in_quanta() {
        let m = mix(200);
        let t = m.trace(2, 5_000);
        // Count context switches along the conditional stream.
        let mut switches = 0;
        let mut last: Option<u64> = None;
        for r in t.iter().filter(|r| r.is_conditional()) {
            let segment = r.pc >> 28;
            if last.is_some() && last != Some(segment) {
                switches += 1;
            }
            last = Some(segment);
        }
        // ~5000/200 = 25 quanta expected.
        assert!((15..=40).contains(&switches), "{switches} switches");
    }

    #[test]
    #[should_panic(expected = "at least two contexts")]
    fn single_context_panics() {
        let _ = Multiprogrammed::new(vec![suite::sdet()], 100);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        let _ = mix(0);
    }
}
