//! Workload materialisation and trace generation.
//!
//! [`WorkloadModel::from_spec`] turns a [`BenchmarkSpec`] into a
//! concrete synthetic program — static branches with addresses,
//! targets, execution weights, and behaviours — deterministically from
//! the spec (the program *structure* depends only on the spec, so two
//! traces of the same model with different seeds exercise the same
//! code). [`WorkloadModel::trace`] then replays the program.
//!
//! # Why generation is block-structured
//!
//! Branches are not emitted i.i.d.: real code executes *basic blocks*,
//! so the global history observed just before a branch is produced by
//! a characteristic set of predecessors. That structure is exactly
//! what two-level global predictors exploit ("many global history
//! patterns occur only in concert with specific branches" —
//! McFarling), and i.i.d. interleaving would erase it, making every
//! global scheme look uniformly bad. The generator therefore groups
//! static branches into short blocks, repeats a block while its
//! loop-latch branch stays taken (producing the paper's all-ones
//! tight-loop patterns and realistic first-level-table locality), and
//! chains blocks into preferred successor sequences, re-sampling by
//! execution weight with probability `1 - sequence_coherence`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bpred_trace::{BranchKind, BranchRecord, ChunkFeeder, Outcome, Trace, TraceChunk, TraceSource};

use crate::behavior::{mix64, BehaviorState, BranchBehavior};
use crate::layout::TextLayout;
use crate::sampling::AliasTable;
use crate::spec::{BehaviorMix, BenchmarkSpec, BiasRange, PaperReference};
use crate::weights::bucket_weights;

/// One static branch of a materialised synthetic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticBranch {
    /// Branch instruction address (4-byte aligned).
    pub pc: u64,
    /// Taken-target address.
    pub target: u64,
    /// Relative execution weight (all weights sum to 1).
    pub weight: f64,
    /// Resolution behaviour.
    pub behavior: BranchBehavior,
}

/// A basic block: an ordered run of static branches executed together.
#[derive(Debug, Clone, PartialEq)]
struct BasicBlock {
    /// Indices into the branch array, executed in order.
    members: Vec<usize>,
    /// Whether the final member is a loop latch that repeats the block
    /// while taken.
    latch: bool,
    /// Preferred successor block.
    successor: usize,
}

/// A materialised synthetic benchmark: a fixed program whose traces
/// stand in for one of the paper's trace benchmarks.
///
/// # Examples
///
/// ```
/// use bpred_workloads::suite;
///
/// let model = suite::espresso().scaled(10_000);
/// let trace = model.trace(1);
/// assert_eq!(trace.conditional_len(), 10_000);
/// // Same seed, same trace; different seed, different trace.
/// assert_eq!(model.trace(1), trace);
/// assert_ne!(model.trace(2), trace);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    name: String,
    branches: Vec<StaticBranch>,
    blocks: Vec<BasicBlock>,
    block_sampler: AliasTable,
    jump_targets: Vec<u64>,
    dynamic_branches: usize,
    jump_fraction: f64,
    sequence_coherence: f64,
    paper: PaperReference,
    /// Stable FNV-1a hash of the originating spec's
    /// [canonical string](BenchmarkSpec::canonical_string).
    fingerprint: u64,
}

impl WorkloadModel {
    /// Materialises the program a spec describes. Structure is
    /// deterministic in the spec's name and parameters.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`BenchmarkSpec::validate`].
    pub fn from_spec(spec: &BenchmarkSpec) -> Self {
        spec.validate();
        let mut rng = SmallRng::seed_from_u64(structure_seed(&spec.name));
        let weights = bucket_weights(&spec.coverage);
        let layout = TextLayout::generate(weights.len(), &mut rng);
        let hot_cutoff = spec.coverage.first_50 + spec.coverage.next_40;

        let branches: Vec<StaticBranch> = weights
            .iter()
            .enumerate()
            .map(|(i, &weight)| {
                let hot = i < hot_cutoff;
                let (mix, bias) = if hot {
                    (&spec.hot_mix, &spec.hot_bias)
                } else {
                    (&spec.cold_mix, &spec.cold_bias)
                };
                let behavior = sample_behavior(mix, bias, spec, &mut rng);
                let pc = layout.branch_pcs()[i];
                // Loop latches jump backward; other branches mostly
                // jump forward, with direction only loosely coupled to
                // bias (plenty of real taken-biased branches are
                // forward jumps, which is why BTFN is a weak baseline).
                let backward = behavior.is_loop_shaped()
                    || (behavior.expected_taken_rate() > 0.8 && rng.gen::<f64>() < 0.4)
                    || rng.gen::<f64>() < 0.1;
                let target = layout.target_for(pc, backward, &mut rng);
                StaticBranch {
                    pc,
                    target,
                    weight,
                    behavior,
                }
            })
            .collect();

        let blocks = build_blocks(&branches, &mut rng);
        let block_sampler = AliasTable::new(&block_weights(&branches, &blocks));

        WorkloadModel {
            name: spec.name.clone(),
            block_sampler,
            blocks,
            jump_targets: layout.function_entries().to_vec(),
            branches,
            dynamic_branches: spec.dynamic_branches,
            jump_fraction: spec.jump_fraction,
            sequence_coherence: spec.sequence_coherence,
            paper: spec.paper,
            fingerprint: bpred_trace::fnv::fnv64(spec.canonical_string().as_bytes()),
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The materialised static branches, heaviest first.
    pub fn branches(&self) -> &[StaticBranch] {
        &self.branches
    }

    /// Number of static branches.
    pub fn static_branches(&self) -> usize {
        self.branches.len()
    }

    /// Default trace length in conditional branches.
    pub fn dynamic_branches(&self) -> usize {
        self.dynamic_branches
    }

    /// Fraction of records that are non-conditional transfers.
    pub fn jump_fraction(&self) -> f64 {
        self.jump_fraction
    }

    /// Stable fingerprint of the spec this model was materialised
    /// from: the FNV-1a hash of
    /// [`BenchmarkSpec::canonical_string`]. Two models with equal
    /// fingerprints generate bit-identical streams for equal `(seed,
    /// length, jump fraction)`, which is what lets the fingerprint
    /// anchor persistent cache keys. [`scaled`](Self::scaled) and
    /// [`with_jump_fraction`](Self::with_jump_fraction) do *not*
    /// change the fingerprint — their effects are keyed separately
    /// (see [`WorkloadSource::cache_id`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The paper's published numbers for the benchmark this model
    /// stands in for.
    pub fn paper_reference(&self) -> &PaperReference {
        &self.paper
    }

    /// Returns the model with a different default trace length.
    pub fn scaled(mut self, dynamic_branches: usize) -> Self {
        assert!(dynamic_branches > 0, "trace length must be positive");
        self.dynamic_branches = dynamic_branches;
        self
    }

    /// Returns the model with a different non-conditional-transfer
    /// fraction.
    pub fn with_jump_fraction(mut self, jump_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&jump_fraction),
            "jump fraction {jump_fraction} out of range"
        );
        self.jump_fraction = jump_fraction;
        self
    }

    /// Generates a trace of the default length.
    ///
    /// Traces are deterministic in `(model structure, seed)`.
    pub fn trace(&self, seed: u64) -> Trace {
        self.trace_of_length(seed, self.dynamic_branches)
    }

    /// Generates a trace with exactly `conditionals` conditional
    /// branches (non-conditional transfers are interleaved on top).
    ///
    /// Equivalent to collecting [`stream_of_length`]
    /// (Self::stream_of_length) — the stream *is* the generator.
    pub fn trace_of_length(&self, seed: u64, conditionals: usize) -> Trace {
        let mut trace = Trace::with_capacity(conditionals + conditionals / 8);
        trace.extend(self.stream_of_length(seed, conditionals));
        trace
    }

    /// Opens a lazy record stream of the default trace length; see
    /// [`stream_of_length`](Self::stream_of_length).
    pub fn stream(&self, seed: u64) -> TraceStream<'_> {
        self.stream_of_length(seed, self.dynamic_branches)
    }

    /// Opens a lazy stream yielding exactly the records
    /// [`trace_of_length`](Self::trace_of_length) would produce for the
    /// same `(seed, conditionals)`, without materialising them.
    ///
    /// Sweeps over long traces replay the stream once per worker shard
    /// instead of holding 100k+ records in memory; the stream and the
    /// materialised trace are bit-identical record for record.
    pub fn stream_of_length(&self, seed: u64, conditionals: usize) -> TraceStream<'_> {
        let mut rng = SmallRng::seed_from_u64(mix64(seed ^ structure_seed(&self.name)));
        let block_idx = self.block_sampler.sample(&mut rng);
        TraceStream {
            model: self,
            rng,
            states: vec![BehaviorState::new(); self.branches.len()],
            global_history: 0,
            block_idx,
            pos: 0,
            emitted: 0,
            conditionals,
            pending: None,
        }
    }
}

/// Lazy single-pass trace generator returned by
/// [`WorkloadModel::stream_of_length`].
///
/// Yields the same record sequence the materialising generator
/// produces: the iterator advances the same RNG through the same draws
/// in the same order, so `model.stream_of_length(s, n).collect()` and
/// `model.trace_of_length(s, n)` are bit-identical.
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    model: &'a WorkloadModel,
    rng: SmallRng,
    states: Vec<BehaviorState>,
    global_history: u64,
    block_idx: usize,
    /// Position of the next member within the current block.
    pos: usize,
    emitted: usize,
    conditionals: usize,
    /// Jump record generated alongside the previous conditional,
    /// awaiting emission.
    pending: Option<BranchRecord>,
}

impl TraceStream<'_> {
    /// Generates up to `max` records straight into `chunk`'s
    /// structure-of-arrays storage, returning how many were emitted.
    ///
    /// This is the generator's chunk-fill path: the loop is
    /// monomorphized over the concrete stream, so records go from the
    /// sampler into the chunk arrays without a boxed per-record
    /// iterator call. The emitted sequence is exactly what [`next`]
    /// (Iterator::next) would yield — chunking never perturbs the
    /// RNG draw order.
    pub fn fill_chunk(&mut self, chunk: &mut TraceChunk, max: usize) -> usize {
        chunk.fill_from(self, max)
    }
}

impl Iterator for TraceStream<'_> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        if let Some(jump) = self.pending.take() {
            return Some(jump);
        }
        if self.emitted >= self.conditionals {
            return None;
        }
        let model = self.model;
        let block = &model.blocks[self.block_idx];
        let last = block.members.len() - 1;
        let branch_idx = block.members[self.pos];

        self.emitted += 1;
        let b = &model.branches[branch_idx];
        let outcome =
            self.states[branch_idx].resolve(b.behavior, self.global_history, &mut self.rng);
        self.global_history = (self.global_history << 1) | outcome.as_bit();
        let record = BranchRecord::conditional(b.pc, b.target, outcome);
        let latch_taken = block.latch && self.pos == last && outcome.is_taken();

        if model.jump_fraction > 0.0 && self.rng.gen::<f64>() < model.jump_fraction {
            let entry = model.jump_targets[self.rng.gen_range(0..model.jump_targets.len())];
            let kind = if self.rng.gen::<f64>() < 0.5 {
                BranchKind::Call
            } else {
                BranchKind::Unconditional
            };
            self.pending = Some(BranchRecord::new(b.pc + 4, entry, kind, Outcome::Taken));
        }

        // Advance: next member, repeat the block while its latch stays
        // taken, or move to the next block. The draws here happen
        // between records, exactly where the materialising loop made
        // them.
        if self.pos < last {
            self.pos += 1;
        } else {
            self.pos = 0;
            if !latch_taken {
                // Follow the preferred successor or re-sample by weight.
                self.block_idx = if self.rng.gen::<f64>() < model.sequence_coherence {
                    model.blocks[self.block_idx].successor
                } else {
                    model.block_sampler.sample(&mut self.rng)
                };
            }
        }
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // At least the remaining conditionals; jumps are on top.
        (
            self.conditionals - self.emitted + usize::from(self.pending.is_some()),
            None,
        )
    }
}

/// A [`TraceSource`] view of a workload model at a fixed seed and
/// length: each [`stream`](TraceSource::stream) call replays the same
/// deterministic record sequence from the start.
///
/// This is what lets sweep and experiment drivers hand a *generator* to
/// the batched replay engine where an in-memory [`Trace`] was needed
/// before.
///
/// # Examples
///
/// ```
/// use bpred_trace::TraceSource;
/// use bpred_workloads::{suite, WorkloadSource};
///
/// let source = WorkloadSource::new(suite::espresso().scaled(1_000), 7);
/// assert_eq!(source.collect_trace(), source.model().trace(7));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    model: WorkloadModel,
    seed: u64,
    conditionals: usize,
}

impl WorkloadSource {
    /// A source replaying `model` at `seed` for the model's default
    /// trace length.
    pub fn new(model: WorkloadModel, seed: u64) -> Self {
        let conditionals = model.dynamic_branches();
        WorkloadSource {
            model,
            seed,
            conditionals,
        }
    }

    /// A source replaying `model` at `seed` with exactly
    /// `conditionals` conditional branches.
    pub fn with_length(model: WorkloadModel, seed: u64, conditionals: usize) -> Self {
        WorkloadSource {
            model,
            seed,
            conditionals,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &WorkloadModel {
        &self.model
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Conditional branches per replay.
    pub fn conditionals(&self) -> usize {
        self.conditionals
    }

    /// Stable identity of the exact record stream this source replays,
    /// for keying persistent result caches.
    ///
    /// Combines the model's [spec fingerprint](WorkloadModel::fingerprint)
    /// with every post-materialisation knob that changes the stream:
    /// seed, replay length, and jump fraction. Equal ids guarantee
    /// bit-identical streams; distinct streams get distinct ids (up to
    /// the 64-bit fingerprint). The format is part of the on-disk
    /// cache-key scheme — change it only alongside an engine-version
    /// bump in the consumer.
    ///
    /// # Examples
    ///
    /// ```
    /// use bpred_workloads::{suite, WorkloadSource};
    ///
    /// let a = WorkloadSource::new(suite::espresso().scaled(1_000), 7);
    /// let b = WorkloadSource::new(suite::espresso().scaled(1_000), 7);
    /// assert_eq!(a.cache_id(), b.cache_id());
    /// let c = WorkloadSource::new(suite::espresso().scaled(1_000), 8);
    /// assert_ne!(a.cache_id(), c.cache_id());
    /// ```
    pub fn cache_id(&self) -> String {
        format!(
            "workload:{}@{:016x}/s{}/n{}/j{}",
            self.model.name(),
            self.model.fingerprint(),
            self.seed,
            self.conditionals,
            self.model.jump_fraction(),
        )
    }
}

impl TraceSource for WorkloadSource {
    fn stream(&self) -> Box<dyn Iterator<Item = BranchRecord> + '_> {
        Box::new(self.model.stream_of_length(self.seed, self.conditionals))
    }

    fn chunks(&self, chunk_len: usize) -> Box<dyn Iterator<Item = TraceChunk> + '_> {
        assert!(chunk_len > 0, "chunk length must be positive");
        // One generator pass per chunk sequence; each chunk is filled
        // through the monomorphized `TraceStream::fill_chunk` loop
        // rather than the boxed record stream.
        let mut stream = self.model.stream_of_length(self.seed, self.conditionals);
        Box::new(std::iter::from_fn(move || {
            let mut chunk = TraceChunk::with_capacity(chunk_len);
            stream.fill_chunk(&mut chunk, chunk_len);
            (!chunk.is_empty()).then_some(chunk)
        }))
    }

    fn chunk_feeder(&self) -> Box<dyn ChunkFeeder + '_> {
        // One generator pass, refilling the caller's buffer through the
        // monomorphized `TraceStream::fill_chunk` loop.
        struct GeneratorFeeder<'a>(TraceStream<'a>);
        impl ChunkFeeder for GeneratorFeeder<'_> {
            fn refill(&mut self, chunk: &mut TraceChunk, max: usize) -> usize {
                chunk.clear();
                self.0.fill_chunk(chunk, max)
            }
        }
        Box::new(GeneratorFeeder(
            self.model.stream_of_length(self.seed, self.conditionals),
        ))
    }
}

/// Groups branches (already in descending weight order) into basic
/// blocks of 1–5 members, moving any loop-behaviour branch to the end
/// of its block as the latch, and chains blocks into preferred
/// successor cycles of 3–8 blocks.
fn build_blocks(branches: &[StaticBranch], rng: &mut SmallRng) -> Vec<BasicBlock> {
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut i = 0usize;
    while i < branches.len() {
        let size = rng.gen_range(1..=5usize).min(branches.len() - i);
        let mut members: Vec<usize> = (i..i + size).collect();
        // Move the first loop-shaped member (if any) to the end: it
        // becomes the block's loop latch, so the block body repeats
        // like a real loop (the source of the paper's all-ones
        // patterns and of first-level-table locality).
        if let Some(pos) = members
            .iter()
            .position(|&m| branches[m].behavior.is_loop_shaped())
        {
            let latch = members.remove(pos);
            members.push(latch);
        }
        let latch = branches[*members.last().expect("non-empty block")]
            .behavior
            .is_loop_shaped();
        blocks.push(BasicBlock {
            members,
            latch,
            successor: 0,
        });
        i += size;
    }
    // Chain blocks into successor cycles of 3-8 blocks of similar
    // *sampler* weight (mean member weight over latch repeats). Chain
    // mates inherit each other's visit rate through the coherence
    // walk, so grouping by raw branch weight instead would let a
    // high-trip-count loop block ride its neighbours' visit rate and
    // emit trip_count times more instances than its coverage bucket
    // allows, concentrating the measured coverage head well below the
    // Table 2 calibration.
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    let sampler_weight: Vec<f64> = blocks
        .iter()
        .map(|b| block_sampler_weight(branches, b))
        .collect();
    order.sort_by(|&a, &b| {
        sampler_weight[b]
            .partial_cmp(&sampler_weight[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut start = 0usize;
    while start < order.len() {
        let len = rng.gen_range(3..=8usize).min(order.len() - start);
        for offset in 0..len {
            blocks[order[start + offset]].successor = order[start + (offset + 1) % len];
        }
        start += len;
    }
    blocks
}

/// Per-block selection weight: mean member weight, divided by the
/// expected executions per visit (the latch trip count for loop
/// blocks) so realised branch frequencies track their targets.
fn block_sampler_weight(branches: &[StaticBranch], block: &BasicBlock) -> f64 {
    let mean: f64 = block
        .members
        .iter()
        .map(|&m| branches[m].weight)
        .sum::<f64>()
        / block.members.len() as f64;
    let repeats = if block.latch {
        match branches[*block.members.last().expect("non-empty")].behavior {
            BranchBehavior::Loop { trip_count } => f64::from(trip_count.max(1)),
            _ => 1.0,
        }
    } else {
        1.0
    };
    mean / repeats
}

/// Per-block selection weights for the whole program; see
/// [`block_sampler_weight`].
fn block_weights(branches: &[StaticBranch], blocks: &[BasicBlock]) -> Vec<f64> {
    blocks
        .iter()
        .map(|block| block_sampler_weight(branches, block))
        .collect()
}

/// Derives the deterministic structure seed from a benchmark name.
fn structure_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Samples one behaviour according to a mix.
fn sample_behavior(
    mix: &BehaviorMix,
    bias: &BiasRange,
    spec: &BenchmarkSpec,
    rng: &mut SmallRng,
) -> BranchBehavior {
    let tuning = &spec.tuning;
    let t = mix.thresholds();
    let draw: f64 = rng.gen();
    if draw < t[0] {
        BranchBehavior::Biased {
            taken_prob: rng.gen_range(bias.low..=bias.high),
        }
    } else if draw < t[1] {
        BranchBehavior::Biased {
            taken_prob: 1.0 - rng.gen_range(bias.low..=bias.high),
        }
    } else if draw < t[2] {
        BranchBehavior::Loop {
            trip_count: if rng.gen::<f64>() < tuning.loop_long_fraction {
                rng.gen_range(tuning.loop_short_max.max(2)..=tuning.loop_long_max)
            } else {
                rng.gen_range(2..=tuning.loop_short_max)
            },
        }
    } else if draw < t[3] {
        let length = rng.gen_range(tuning.pattern_min_bits..=tuning.pattern_max_bits);
        BranchBehavior::Pattern {
            bits: rng.gen::<u64>() & ((1 << length) - 1),
            length,
        }
    } else {
        // Draw the function from the shared pool (if bounded) so
        // branches testing "the same condition" train counters
        // compatibly; the taken-weight is quantised with the seed so
        // pool-mates share it too.
        let (seed, taken_weight) = if tuning.correlated_pool > 0 {
            let member = rng.gen_range(0..tuning.correlated_pool);
            let seed = mix64(0xC0_44E1 ^ u64::from(member));
            let span = tuning.correlated_taken_high - tuning.correlated_taken_low;
            let weight = tuning.correlated_taken_low
                + span * (member as f64 + 0.5) / f64::from(tuning.correlated_pool);
            (seed, weight)
        } else {
            (
                rng.gen(),
                rng.gen_range(tuning.correlated_taken_low..=tuning.correlated_taken_high),
            )
        };
        BranchBehavior::Correlated {
            seed,
            history_bits: spec.correlation_bits,
            noise: spec.correlation_noise,
            taken_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use bpred_trace::stats::TraceStats;

    #[test]
    fn structure_is_deterministic() {
        let a = WorkloadModel::from_spec(&suite::espresso_spec());
        let b = WorkloadModel::from_spec(&suite::espresso_spec());
        assert_eq!(a.branches(), b.branches());
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn different_names_give_different_structures() {
        let a = suite::espresso();
        let b = suite::mpeg_play();
        assert_ne!(a.branches().first(), b.branches().first());
    }

    #[test]
    fn trace_length_is_exact() {
        let model = suite::espresso().scaled(5_000);
        let t = model.trace(3);
        assert_eq!(t.conditional_len(), 5_000);
        assert!(t.len() >= 5_000);
    }

    #[test]
    fn traces_are_reproducible() {
        let model = suite::sdet().scaled(2_000);
        assert_eq!(model.trace(9), model.trace(9));
        assert_ne!(model.trace(9), model.trace(10));
    }

    #[test]
    fn coverage_calibration_holds_in_generated_traces() {
        // The defining property of the substitution: the synthetic
        // trace's coverage statistics match the spec's targets.
        let spec = suite::espresso_spec();
        let model = WorkloadModel::from_spec(&spec).scaled(300_000);
        let stats = TraceStats::measure(&model.trace(1));
        let n50 = stats.static_for_fraction(0.5);
        let n90 = stats.static_for_fraction(0.9);
        let want50 = spec.coverage.first_50;
        let want90 = spec.coverage.first_50 + spec.coverage.next_40;
        assert!(
            (n50 as f64) < 2.5 * want50 as f64 && n50 >= want50 / 3,
            "50% coverage: got {n50}, want ~{want50}"
        );
        assert!(
            (n90 as f64) < 2.0 * want90 as f64 && n90 >= want90 / 3,
            "90% coverage: got {n90}, want ~{want90}"
        );
    }

    #[test]
    fn jump_fraction_controls_non_conditionals() {
        let model = suite::espresso().scaled(20_000).with_jump_fraction(0.25);
        let t = model.trace(4);
        let jumps = t.len() - t.conditional_len();
        let rate = jumps as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "{rate}");

        let none = suite::espresso().scaled(1_000).with_jump_fraction(0.0);
        let t = none.trace(4);
        assert_eq!(t.len(), t.conditional_len());
    }

    #[test]
    fn branch_addresses_match_materialised_program() {
        let model = suite::verilog().scaled(10_000);
        let valid: std::collections::HashSet<u64> = model.branches().iter().map(|b| b.pc).collect();
        for r in model.trace(5).iter().filter(|r| r.is_conditional()) {
            assert!(valid.contains(&r.pc));
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let model = suite::groff();
        let sum: f64 = model.branches().iter().map(|b| b.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn taken_rate_is_realistic() {
        // Real integer code is taken roughly 50-80% of the time.
        let t = suite::espresso().scaled(100_000).trace(2);
        let rate = t.taken_rate().unwrap();
        assert!((0.4..0.9).contains(&rate), "taken rate {rate}");
    }

    #[test]
    fn blocks_partition_the_branches() {
        let model = suite::nroff();
        let mut seen = vec![false; model.branches().len()];
        for block in &model.blocks {
            for &m in &block.members {
                assert!(!seen[m], "branch {m} in two blocks");
                seen[m] = true;
            }
            assert!(block.successor < model.blocks.len());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn latch_blocks_end_with_loops() {
        let model = suite::mpeg_play();
        for block in model.blocks.iter().filter(|b| b.latch) {
            let last = *block.members.last().unwrap();
            assert!(model.branches()[last].behavior.is_loop_shaped());
        }
    }

    #[test]
    fn loops_create_consecutive_runs() {
        // Loop latches repeating their block give the trace temporal
        // locality: the same pc must appear in runs far more often
        // than under i.i.d. sampling over thousands of branches.
        let t = suite::real_gcc().scaled(50_000).trace(3);
        let records: Vec<_> = t.iter().filter(|r| r.is_conditional()).collect();
        let mut near_repeats = 0usize;
        for w in records.windows(12) {
            if w[1..].iter().any(|r| r.pc == w[0].pc) {
                near_repeats += 1;
            }
        }
        let rate = near_repeats as f64 / records.len() as f64;
        assert!(rate > 0.3, "near-repeat rate {rate} too low for real code");
    }

    #[test]
    fn structure_seed_differs_by_name() {
        assert_ne!(structure_seed("espresso"), structure_seed("mpeg_play"));
        assert_eq!(structure_seed("gs"), structure_seed("gs"));
    }

    #[test]
    fn fingerprint_is_spec_identity() {
        assert_eq!(
            suite::espresso().fingerprint(),
            suite::espresso().fingerprint()
        );
        assert_ne!(
            suite::espresso().fingerprint(),
            suite::mpeg_play().fingerprint()
        );
        // Post-materialisation knobs leave the fingerprint alone; the
        // cache id carries them instead.
        let model = suite::espresso();
        let scaled = model.clone().scaled(123);
        assert_eq!(model.fingerprint(), scaled.fingerprint());
        assert_ne!(
            WorkloadSource::new(model, 1).cache_id(),
            WorkloadSource::new(scaled, 1).cache_id()
        );
    }

    #[test]
    fn chunked_generation_is_bit_identical_to_the_stream() {
        let source = WorkloadSource::new(suite::mpeg_play().scaled(3_000), 13);
        let streamed: Vec<_> = source.stream().collect();
        for chunk_len in [1, 7, 1024, streamed.len(), streamed.len() + 9] {
            let chunked: Vec<_> = source
                .chunks(chunk_len)
                .flat_map(|chunk| chunk.iter().collect::<Vec<_>>())
                .collect();
            assert_eq!(chunked, streamed, "chunk_len {chunk_len}");
        }
        // Chunk sequences restart like streams do.
        let again: Vec<_> = source
            .chunks(512)
            .flat_map(|chunk| chunk.iter().collect::<Vec<_>>())
            .collect();
        assert_eq!(again, streamed);
    }

    #[test]
    fn cache_id_tracks_every_stream_knob() {
        let base = || WorkloadSource::new(suite::sdet().scaled(500), 3);
        assert_eq!(base().cache_id(), base().cache_id());
        let longer = WorkloadSource::with_length(suite::sdet(), 3, 501);
        assert_ne!(base().cache_id(), longer.cache_id());
        let jumpy = WorkloadSource::new(suite::sdet().scaled(500).with_jump_fraction(0.3), 3);
        assert_ne!(base().cache_id(), jumpy.cache_id());
    }
}
