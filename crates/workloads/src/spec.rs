//! Benchmark specifications.
//!
//! A [`BenchmarkSpec`] captures everything needed to synthesise a
//! workload standing in for one of the paper's fourteen trace
//! benchmarks: the coverage skew (how many static branches supply each
//! slice of the dynamic instances), the behaviour mix of hot and cold
//! branches, and the published reference numbers used for side-by-side
//! reporting.

use bpred_trace::stats::CoverageBuckets;

/// Which benchmark suite a specification models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// The six SPECint92 programs (user-level traces).
    SpecInt92,
    /// The eight IBS-Ultrix programs (user + kernel traces).
    IbsUltrix,
}

impl SuiteKind {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::SpecInt92 => "SPECint92",
            SuiteKind::IbsUltrix => "IBS-Ultrix",
        }
    }
}

/// Fractions of branches assigned to each behaviour class. Fields must
/// be non-negative and sum to 1 (validated by
/// [`BehaviorMix::validate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorMix {
    /// Bernoulli branches biased towards taken.
    pub biased_taken: f64,
    /// Bernoulli branches biased towards not taken.
    pub biased_not_taken: f64,
    /// Loop-closing branches with fixed trip counts.
    pub loops: f64,
    /// Short periodic patterns.
    pub patterns: f64,
    /// Branches whose outcome is a function of recent global history.
    pub correlated: f64,
}

impl BehaviorMix {
    /// Checks the mix is a probability distribution.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum deviates from 1
    /// by more than 1e-6.
    pub fn validate(&self) {
        let parts = [
            self.biased_taken,
            self.biased_not_taken,
            self.loops,
            self.patterns,
            self.correlated,
        ];
        assert!(
            parts.iter().all(|&p| p >= 0.0),
            "behaviour fractions must be non-negative: {self:?}"
        );
        let sum: f64 = parts.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "behaviour fractions must sum to 1, got {sum}: {self:?}"
        );
    }

    /// Cumulative thresholds used for sampling a class from a uniform
    /// draw in `[0, 1)`.
    pub(crate) fn thresholds(&self) -> [f64; 4] {
        let t0 = self.biased_taken;
        let t1 = t0 + self.biased_not_taken;
        let t2 = t1 + self.loops;
        let t3 = t2 + self.patterns;
        [t0, t1, t2, t3]
    }
}

/// Range of per-branch bias (probability of the dominant direction)
/// for Bernoulli branches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasRange {
    /// Minimum bias, ≥ 0.5.
    pub low: f64,
    /// Maximum bias, ≤ 1.0.
    pub high: f64,
}

impl BiasRange {
    /// Validates `0.5 ≤ low ≤ high ≤ 1.0`.
    ///
    /// # Panics
    ///
    /// Panics when the range is malformed.
    pub fn validate(&self) {
        assert!(
            (0.5..=1.0).contains(&self.low)
                && (0.5..=1.0).contains(&self.high)
                && self.low <= self.high,
            "invalid bias range {self:?}"
        );
    }
}

/// Fine-grained behaviour parameters: loop trip-count distribution,
/// periodic-pattern lengths, and the bias of correlated branches'
/// underlying functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorTuning {
    /// Maximum trip count of "short" loops (drawn uniformly in
    /// `2..=loop_short_max`).
    pub loop_short_max: u32,
    /// Maximum trip count of "long" loops.
    pub loop_long_max: u32,
    /// Fraction of loops drawn from the long range.
    pub loop_long_fraction: f64,
    /// Minimum periodic-pattern length in bits.
    pub pattern_min_bits: u32,
    /// Maximum periodic-pattern length in bits (≤ 32).
    pub pattern_max_bits: u32,
    /// Lower bound of correlated branches' taken-weight.
    pub correlated_taken_low: f64,
    /// Upper bound of correlated branches' taken-weight.
    pub correlated_taken_high: f64,
    /// Size of the pool of distinct correlated functions branches draw
    /// from (0 = every branch gets its own function). Real programs
    /// reuse predicate structure — many branches test the same
    /// conditions — which is what makes counter aliasing between
    /// correlated branches partly harmless.
    pub correlated_pool: u32,
}

impl Default for BehaviorTuning {
    /// Short loops, short patterns, taken-leaning correlation — the
    /// profile of the large IBS-style programs.
    fn default() -> Self {
        BehaviorTuning {
            loop_short_max: 8,
            loop_long_max: 48,
            loop_long_fraction: 0.25,
            pattern_min_bits: 2,
            pattern_max_bits: 8,
            correlated_taken_low: 0.7,
            correlated_taken_high: 0.95,
            correlated_pool: 12,
        }
    }
}

impl BehaviorTuning {
    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics when any range is malformed.
    pub fn validate(&self) {
        assert!(
            self.loop_short_max >= 2 && self.loop_short_max <= self.loop_long_max,
            "invalid loop trip ranges in {self:?}"
        );
        assert!(
            (0.0..=1.0).contains(&self.loop_long_fraction),
            "invalid loop_long_fraction in {self:?}"
        );
        assert!(
            self.pattern_min_bits >= 2
                && self.pattern_min_bits <= self.pattern_max_bits
                && self.pattern_max_bits <= 32,
            "invalid pattern lengths in {self:?}"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlated_taken_low)
                && self.correlated_taken_low <= self.correlated_taken_high
                && self.correlated_taken_high <= 1.0,
            "invalid correlated taken-weight range in {self:?}"
        );
    }
}

/// Published Table 1 / Table 2 numbers for one benchmark, reported
/// alongside the synthetic model's measured statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperReference {
    /// Dynamic instruction count of the original trace.
    pub dynamic_instructions: u64,
    /// Dynamic conditional-branch count of the original trace.
    pub dynamic_conditionals: u64,
    /// Static conditional branches in the original binary.
    pub static_conditionals: u32,
    /// Static branches supplying 90% of dynamic instances (Table 1).
    pub static_for_90: u32,
    /// Table 2 coverage buckets, where the paper published them.
    pub table2: Option<CoverageBuckets>,
}

/// Complete description of one synthetic benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (matches the paper, e.g. `"mpeg_play"`).
    pub name: String,
    /// Which suite it belongs to.
    pub suite: SuiteKind,
    /// Static-branch coverage targets (the model's branch count is
    /// `coverage.total()`).
    pub coverage: CoverageBuckets,
    /// Behaviour mix of the hot set (branches supplying the first 90%
    /// of dynamic instances).
    pub hot_mix: BehaviorMix,
    /// Behaviour mix of the cold tail.
    pub cold_mix: BehaviorMix,
    /// Bias range of hot Bernoulli branches.
    pub hot_bias: BiasRange,
    /// Bias range of cold Bernoulli branches.
    pub cold_bias: BiasRange,
    /// Global-history depth that correlated branches depend on.
    pub correlation_bits: u32,
    /// Noise rate of correlated branches.
    pub correlation_noise: f64,
    /// Fine behaviour parameters (loop trips, pattern lengths,
    /// correlated-function bias).
    pub tuning: BehaviorTuning,
    /// Probability that execution follows a block's fixed successor
    /// instead of re-sampling by frequency. Higher coherence means
    /// longer deterministic macro-sequences, which is what lets global
    /// history identify branches in small programs.
    pub sequence_coherence: f64,
    /// Default trace length in conditional branches.
    pub dynamic_branches: usize,
    /// Fraction of records that are non-conditional transfers
    /// (interleaved jumps/calls, exercising path predictors).
    pub jump_fraction: f64,
    /// The paper's published numbers for this benchmark.
    pub paper: PaperReference,
}

impl BenchmarkSpec {
    /// Validates all the embedded distributions.
    ///
    /// # Panics
    ///
    /// Panics if any mix, bias range, or fraction is malformed.
    pub fn validate(&self) {
        self.hot_mix.validate();
        self.cold_mix.validate();
        self.hot_bias.validate();
        self.cold_bias.validate();
        self.tuning.validate();
        assert!(
            (0.0..1.0).contains(&self.sequence_coherence),
            "{}: sequence coherence {} out of range",
            self.name,
            self.sequence_coherence
        );
        assert!(self.coverage.total() > 0, "{}: no branches", self.name);
        assert!(
            (0.0..1.0).contains(&self.jump_fraction),
            "{}: jump fraction {} out of range",
            self.name,
            self.jump_fraction
        );
        assert!(
            (0.0..=0.5).contains(&self.correlation_noise),
            "{}: correlation noise {} out of range",
            self.name,
            self.correlation_noise
        );
        assert!(
            self.correlation_bits <= 16,
            "{}: correlation too deep",
            self.name
        );
        assert!(self.dynamic_branches > 0, "{}: empty trace", self.name);
    }

    /// Total static branches in the model.
    pub fn static_branches(&self) -> usize {
        self.coverage.total()
    }

    /// Canonical serialization of every generation-relevant field, in
    /// a fixed order with a leading format version.
    ///
    /// This string is the *identity* of the workload a spec describes:
    /// two specs produce bit-identical trace streams (per seed and
    /// length) whenever their canonical strings are equal. The result
    /// store hashes it into persistent cache keys, so the format must
    /// stay stable — extend it only together with a version bump of
    /// the consuming cache. [`PaperReference`] is deliberately
    /// excluded: the published numbers are reporting metadata and do
    /// not influence generation.
    ///
    /// Floats are rendered with Rust's shortest round-trip `Display`,
    /// which is platform-independent, so equal field values always
    /// produce equal text.
    pub fn canonical_string(&self) -> String {
        let mix = |m: &BehaviorMix| {
            format!(
                "{},{},{},{},{}",
                m.biased_taken, m.biased_not_taken, m.loops, m.patterns, m.correlated
            )
        };
        let t = &self.tuning;
        format!(
            "spec-v1|name={}|suite={}|cov={},{},{},{}|hot={}|cold={}|hbias={},{}|cbias={},{}\
             |corr={},{}|tune={},{},{},{},{},{},{},{}|coh={}|dyn={}|jump={}",
            self.name,
            self.suite.label(),
            self.coverage.first_50,
            self.coverage.next_40,
            self.coverage.next_9,
            self.coverage.last_1,
            mix(&self.hot_mix),
            mix(&self.cold_mix),
            self.hot_bias.low,
            self.hot_bias.high,
            self.cold_bias.low,
            self.cold_bias.high,
            self.correlation_bits,
            self.correlation_noise,
            t.loop_short_max,
            t.loop_long_max,
            t.loop_long_fraction,
            t.pattern_min_bits,
            t.pattern_max_bits,
            t.correlated_taken_low,
            t.correlated_taken_high,
            t.correlated_pool,
            self.sequence_coherence,
            self.dynamic_branches,
            self.jump_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> BehaviorMix {
        BehaviorMix {
            biased_taken: 0.4,
            biased_not_taken: 0.3,
            loops: 0.15,
            patterns: 0.05,
            correlated: 0.1,
        }
    }

    #[test]
    fn valid_mix_passes() {
        mix().validate();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn non_normalised_mix_panics() {
        BehaviorMix {
            biased_taken: 0.9,
            ..mix()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mix_panics() {
        BehaviorMix {
            biased_taken: -0.1,
            biased_not_taken: 0.5,
            loops: 0.3,
            patterns: 0.2,
            correlated: 0.1,
        }
        .validate();
    }

    #[test]
    fn thresholds_are_cumulative() {
        let t = mix().thresholds();
        assert!((t[0] - 0.4).abs() < 1e-12);
        assert!((t[1] - 0.7).abs() < 1e-12);
        assert!((t[2] - 0.85).abs() < 1e-12);
        assert!((t[3] - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bias range")]
    fn inverted_bias_range_panics() {
        BiasRange {
            low: 0.95,
            high: 0.9,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "invalid bias range")]
    fn sub_half_bias_panics() {
        BiasRange {
            low: 0.3,
            high: 0.9,
        }
        .validate();
    }

    #[test]
    fn default_tuning_validates() {
        BehaviorTuning::default().validate();
    }

    #[test]
    #[should_panic(expected = "invalid pattern lengths")]
    fn inverted_pattern_range_panics() {
        BehaviorTuning {
            pattern_min_bits: 9,
            pattern_max_bits: 4,
            ..BehaviorTuning::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "invalid loop trip ranges")]
    fn inverted_loop_range_panics() {
        BehaviorTuning {
            loop_short_max: 32,
            loop_long_max: 8,
            ..BehaviorTuning::default()
        }
        .validate();
    }

    #[test]
    fn suite_labels() {
        assert_eq!(SuiteKind::SpecInt92.label(), "SPECint92");
        assert_eq!(SuiteKind::IbsUltrix.label(), "IBS-Ultrix");
    }

    #[test]
    fn canonical_string_is_stable_and_discriminating() {
        let a = crate::suites::espresso_spec();
        assert_eq!(
            a.canonical_string(),
            crate::suites::espresso_spec().canonical_string()
        );
        assert!(a.canonical_string().starts_with("spec-v1|name=espresso|"));

        // Every generation-relevant change must change the string...
        let mut longer = crate::suites::espresso_spec();
        longer.dynamic_branches += 1;
        assert_ne!(a.canonical_string(), longer.canonical_string());
        let mut biased = crate::suites::espresso_spec();
        biased.hot_bias.high -= 1e-9;
        assert_ne!(a.canonical_string(), biased.canonical_string());

        // ...while reporting metadata must not.
        let mut reported = crate::suites::espresso_spec();
        reported.paper.dynamic_instructions += 1;
        assert_eq!(a.canonical_string(), reported.canonical_string());
    }

    #[test]
    fn canonical_strings_differ_across_suite() {
        let specs = crate::suites::all_specs();
        let mut seen = std::collections::HashSet::new();
        for spec in &specs {
            assert!(
                seen.insert(spec.canonical_string()),
                "duplicate canonical string for {}",
                spec.name
            );
        }
    }
}
