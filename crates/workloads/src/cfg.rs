//! Control-flow-graph program workloads.
//!
//! The statistical models in [`crate::suites`] are calibrated to the
//! paper's published numbers; this module complements them with a
//! *structural* workload: a randomly generated program of functions,
//! basic blocks, loops, and if/else tests over shared boolean
//! variables, executed block by block. Branch correlation arises here
//! the way it does in real code — two branches test the same variable,
//! or a loop guard implies the tests inside the loop body — rather
//! than being injected as an explicit history function. Useful as an
//! independent check that predictor rankings are not an artefact of
//! the statistical generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bpred_trace::{BranchKind, BranchRecord, Outcome, Trace};

use crate::behavior::mix64;
use crate::layout::TEXT_BASE;

/// Identifies a basic block within a [`CfgProgram`].
pub type BlockId = usize;

/// A runtime condition tested by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Taken when boolean variable `v` is true.
    Var(u8),
    /// Taken when boolean variable `v` is false.
    NotVar(u8),
    /// Loop back-edge: taken while the block's iteration counter is
    /// below `limit`, then resets (a `limit + 1`-trip loop latch).
    Loop {
        /// Iterations before the loop exits.
        limit: u8,
    },
    /// Taken with fixed probability (data-dependent noise).
    Chance(f64),
}

/// A side effect executed when control enters a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Sets variable `var` to a fresh random value, true with
    /// probability `p`.
    SetRandom {
        /// Variable index.
        var: u8,
        /// Probability the new value is true.
        p: f64,
    },
    /// Inverts variable `var`.
    Toggle {
        /// Variable index.
        var: u8,
    },
    /// Copies variable `from` into variable `to` — the source of
    /// inter-branch correlation.
    Copy {
        /// Destination variable.
        to: u8,
        /// Source variable.
        from: u8,
    },
}

/// How a basic block transfers control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Terminator {
    /// Conditional branch: to `taken` when `cond` holds, else `fall`.
    Cond {
        /// Tested condition.
        cond: Condition,
        /// Block reached when taken.
        taken: BlockId,
        /// Fall-through block.
        fall: BlockId,
    },
    /// Unconditional jump.
    Jump {
        /// Destination block.
        to: BlockId,
    },
    /// Call `callee`, resuming at `resume` on return.
    Call {
        /// First block of the called function.
        callee: BlockId,
        /// Block executed after the call returns.
        resume: BlockId,
    },
    /// Return to the caller.
    Return,
    /// Program exit (the executor restarts from the entry).
    Exit,
}

/// One basic block: an optional variable effect plus a terminator at a
/// fixed instruction address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Address of the block's terminating control transfer.
    pub pc: u64,
    /// Effect applied when the block executes.
    pub effect: Option<Effect>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

/// Generation parameters for [`CfgProgram::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfgConfig {
    /// Number of functions.
    pub functions: usize,
    /// Basic blocks per function (uniform in this inclusive range).
    pub min_blocks: usize,
    /// Upper bound of blocks per function.
    pub max_blocks: usize,
    /// Number of shared boolean variables.
    pub variables: u8,
    /// Fraction of conditional branches that are loop latches.
    pub loop_fraction: f64,
    /// Fraction of blocks that call another function.
    pub call_fraction: f64,
}

impl Default for CfgConfig {
    /// A mid-sized program: 40 functions of 6–20 blocks over 16
    /// variables.
    fn default() -> Self {
        CfgConfig {
            functions: 40,
            min_blocks: 6,
            max_blocks: 20,
            variables: 16,
            loop_fraction: 0.3,
            call_fraction: 0.15,
        }
    }
}

/// A generated program: blocks, function entries, and an entry point.
///
/// # Examples
///
/// ```
/// use bpred_workloads::{CfgConfig, CfgProgram};
///
/// let program = CfgProgram::generate(CfgConfig::default(), 7);
/// let trace = program.trace(1, 10_000);
/// assert_eq!(trace.conditional_len(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct CfgProgram {
    blocks: Vec<Block>,
    entries: Vec<BlockId>,
    variables: u8,
}

impl CfgProgram {
    /// Generates a random program. Structure is deterministic in
    /// `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has no functions, no variables, a malformed
    /// block range, or out-of-range fractions.
    pub fn generate(config: CfgConfig, seed: u64) -> Self {
        assert!(config.functions > 0, "program needs at least one function");
        assert!(config.variables > 0, "program needs at least one variable");
        assert!(
            config.min_blocks >= 2 && config.min_blocks <= config.max_blocks,
            "block range must be 2..=max"
        );
        assert!((0.0..=1.0).contains(&config.loop_fraction));
        assert!((0.0..=1.0).contains(&config.call_fraction));

        let mut rng = SmallRng::seed_from_u64(mix64(seed ^ 0xCF6_F00D));
        let mut blocks: Vec<Block> = Vec::new();
        let mut entries: Vec<BlockId> = Vec::new();
        let mut pc = TEXT_BASE;

        // First pass: lay out functions; calls are patched afterwards so
        // any function may call any other.
        for _ in 0..config.functions {
            let n = rng.gen_range(config.min_blocks..=config.max_blocks);
            let base = blocks.len();
            entries.push(base);
            for i in 0..n {
                let effect =
                    (rng.gen::<f64>() < 0.6).then(|| random_effect(&mut rng, config.variables));
                let last = i == n - 1;
                let terminator = if last {
                    Terminator::Return
                } else if rng.gen::<f64>() < config.call_fraction {
                    Terminator::Call {
                        callee: usize::MAX, // patched below
                        resume: base + i + 1,
                    }
                } else if rng.gen::<f64>() < config.loop_fraction {
                    // Loop latch back to an earlier block of this function.
                    let back = rng.gen_range(base..=base + i);
                    Terminator::Cond {
                        cond: Condition::Loop {
                            limit: rng.gen_range(1..=15),
                        },
                        taken: back,
                        fall: base + i + 1,
                    }
                } else if rng.gen::<f64>() < 0.85 {
                    // Forward if: skip ahead within the function.
                    let skip = rng.gen_range(base + i + 1..base + n);
                    let var = rng.gen_range(0..config.variables);
                    let cond = match rng.gen_range(0..3u8) {
                        0 => Condition::Var(var),
                        1 => Condition::NotVar(var),
                        _ => Condition::Chance(rng.gen_range(0.02..0.98)),
                    };
                    Terminator::Cond {
                        cond,
                        taken: skip,
                        fall: base + i + 1,
                    }
                } else {
                    Terminator::Jump {
                        to: base + rng.gen_range(i + 1..n),
                    }
                };
                blocks.push(Block {
                    pc,
                    effect,
                    terminator,
                });
                pc += 4 * rng.gen_range(3..12u64);
            }
            pc += 4 * rng.gen_range(8..40u64);
        }

        // Patch call targets now that every entry exists.
        let function_count = entries.len();
        for block in &mut blocks {
            if let Terminator::Call { callee, .. } = &mut block.terminator {
                *callee = entries[rng.gen_range(0..function_count)];
            }
        }
        // Liveness: every function must emit at least one conditional
        // per visit, or an unlucky all-jump/all-call program would let
        // the executor spin forever without producing a predictable
        // branch. Functions that came out conditional-free get their
        // entry block rewritten into a data-dependent if.
        for (f, &entry) in entries.iter().enumerate() {
            let end = if f + 1 < function_count {
                entries[f + 1]
            } else {
                blocks.len()
            };
            let has_conditional = blocks[entry..end]
                .iter()
                .any(|b| matches!(b.terminator, Terminator::Cond { .. }));
            if !has_conditional {
                let skip = rng.gen_range(entry + 1..end);
                blocks[entry].terminator = Terminator::Cond {
                    cond: Condition::Chance(rng.gen_range(0.1..0.9)),
                    taken: skip,
                    fall: entry + 1,
                };
            }
        }
        // main() is function 0; its final Return becomes Exit.
        let main_entry = entries[0];
        let main_len = if function_count > 1 {
            entries[1] - main_entry
        } else {
            blocks.len()
        };
        blocks[main_entry + main_len - 1].terminator = Terminator::Exit;

        CfgProgram {
            blocks,
            entries,
            variables: config.variables,
        }
    }

    /// The program's basic blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Function entry block ids.
    pub fn entries(&self) -> &[BlockId] {
        &self.entries
    }

    /// Number of static conditional branches in the program.
    pub fn static_conditionals(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Cond { .. }))
            .count()
    }

    /// Executes the program until `conditionals` conditional branches
    /// have been emitted, restarting from the entry whenever the
    /// program exits. Deterministic in `(program, seed)`.
    pub fn trace(&self, seed: u64, conditionals: usize) -> Trace {
        const MAX_CALL_DEPTH: usize = 24;
        let mut rng = SmallRng::seed_from_u64(mix64(seed ^ 0x7ACE_5EED));
        let mut vars = vec![false; usize::from(self.variables)];
        let mut loop_counters = vec![0u8; self.blocks.len()];
        let mut stack: Vec<BlockId> = Vec::new();
        let mut trace = Trace::with_capacity(conditionals * 2);
        let mut current = self.entries[0];
        let mut emitted = 0usize;

        while emitted < conditionals {
            let block = self.blocks[current];
            if let Some(effect) = block.effect {
                apply_effect(effect, &mut vars, &mut rng);
            }
            match block.terminator {
                Terminator::Cond { cond, taken, fall } => {
                    let outcome = self.evaluate(cond, current, &vars, &mut loop_counters, &mut rng);
                    trace.push(BranchRecord::conditional(
                        block.pc,
                        self.blocks[taken].pc,
                        outcome,
                    ));
                    emitted += 1;
                    current = if outcome.is_taken() { taken } else { fall };
                }
                Terminator::Jump { to } => {
                    trace.push(BranchRecord::jump(block.pc, self.blocks[to].pc));
                    current = to;
                }
                Terminator::Call { callee, resume } => {
                    if stack.len() < MAX_CALL_DEPTH {
                        trace.push(BranchRecord::new(
                            block.pc,
                            self.blocks[callee].pc,
                            BranchKind::Call,
                            Outcome::Taken,
                        ));
                        stack.push(resume);
                        current = callee;
                    } else {
                        // Too deep: treat as an inlined no-op call.
                        current = resume;
                    }
                }
                Terminator::Return => match stack.pop() {
                    Some(resume) => {
                        trace.push(BranchRecord::new(
                            block.pc,
                            self.blocks[resume].pc,
                            BranchKind::Return,
                            Outcome::Taken,
                        ));
                        current = resume;
                    }
                    None => current = self.entries[0],
                },
                Terminator::Exit => {
                    stack.clear();
                    current = self.entries[0];
                }
            }
        }
        trace
    }

    fn evaluate(
        &self,
        cond: Condition,
        block: BlockId,
        vars: &[bool],
        loop_counters: &mut [u8],
        rng: &mut SmallRng,
    ) -> Outcome {
        match cond {
            Condition::Var(v) => Outcome::from(vars[usize::from(v)]),
            Condition::NotVar(v) => Outcome::from(!vars[usize::from(v)]),
            Condition::Loop { limit } => {
                let c = &mut loop_counters[block];
                if *c < limit {
                    *c += 1;
                    Outcome::Taken
                } else {
                    *c = 0;
                    Outcome::NotTaken
                }
            }
            Condition::Chance(p) => Outcome::from(rng.gen::<f64>() < p),
        }
    }
}

fn random_effect(rng: &mut SmallRng, variables: u8) -> Effect {
    match rng.gen_range(0..3u8) {
        0 => Effect::SetRandom {
            var: rng.gen_range(0..variables),
            p: rng.gen_range(0.05..0.95),
        },
        1 => Effect::Toggle {
            var: rng.gen_range(0..variables),
        },
        _ => Effect::Copy {
            to: rng.gen_range(0..variables),
            from: rng.gen_range(0..variables),
        },
    }
}

fn apply_effect(effect: Effect, vars: &mut [bool], rng: &mut SmallRng) {
    match effect {
        Effect::SetRandom { var, p } => vars[usize::from(var)] = rng.gen::<f64>() < p,
        Effect::Toggle { var } => vars[usize::from(var)] ^= true,
        Effect::Copy { to, from } => vars[usize::from(to)] = vars[usize::from(from)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(seed: u64) -> CfgProgram {
        CfgProgram::generate(CfgConfig::default(), seed)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(program(3).blocks(), program(3).blocks());
        assert_ne!(program(3).blocks(), program(4).blocks());
    }

    #[test]
    fn call_targets_are_patched() {
        let p = program(1);
        for b in p.blocks() {
            if let Terminator::Call { callee, resume } = b.terminator {
                assert!(callee < p.blocks().len());
                assert!(resume < p.blocks().len());
                assert!(p.entries().contains(&callee));
            }
        }
    }

    #[test]
    fn block_targets_are_in_bounds() {
        let p = program(2);
        let n = p.blocks().len();
        for b in p.blocks() {
            match b.terminator {
                Terminator::Cond { taken, fall, .. } => {
                    assert!(taken < n && fall < n);
                }
                Terminator::Jump { to } => assert!(to < n),
                _ => {}
            }
        }
    }

    #[test]
    fn trace_has_requested_conditionals() {
        let p = program(5);
        let t = p.trace(1, 5_000);
        assert_eq!(t.conditional_len(), 5_000);
        // Jumps, calls, and returns are interleaved.
        assert!(t.len() > 5_000);
    }

    #[test]
    fn traces_are_reproducible_and_seed_sensitive() {
        let p = program(6);
        assert_eq!(p.trace(1, 1_000), p.trace(1, 1_000));
        assert_ne!(p.trace(1, 1_000), p.trace(2, 1_000));
    }

    #[test]
    fn loops_produce_periodic_latches() {
        // Find a loop latch in the trace and check it repeats its
        // taken-run length.
        let p = CfgProgram::generate(
            CfgConfig {
                loop_fraction: 0.9,
                call_fraction: 0.0,
                functions: 3,
                ..CfgConfig::default()
            },
            8,
        );
        let t = p.trace(1, 20_000);
        // At least one backward conditional branch must exist.
        assert!(t.iter().any(|r| r.is_conditional() && r.is_backward()));
    }

    #[test]
    fn program_has_conditionals_and_functions() {
        let p = program(9);
        assert!(p.static_conditionals() > 50);
        assert_eq!(p.entries().len(), 40);
    }

    #[test]
    fn every_function_contains_a_conditional() {
        // The liveness guarantee: even tiny degenerate configurations
        // must not produce conditional-free functions (which would
        // let the executor spin forever).
        for seed in 0..200u64 {
            let p = CfgProgram::generate(
                CfgConfig {
                    functions: 2,
                    min_blocks: 2,
                    max_blocks: 3,
                    call_fraction: 0.9,
                    loop_fraction: 0.0,
                    ..CfgConfig::default()
                },
                seed,
            );
            for (f, &entry) in p.entries().iter().enumerate() {
                let end = p.entries().get(f + 1).copied().unwrap_or(p.blocks().len());
                assert!(
                    p.blocks()[entry..end]
                        .iter()
                        .any(|b| matches!(b.terminator, Terminator::Cond { .. })),
                    "seed {seed}, function {f} has no conditional"
                );
            }
            // And tracing such a program terminates.
            let t = p.trace(seed, 500);
            assert_eq!(t.conditional_len(), 500);
        }
    }

    #[test]
    fn restart_after_exit_keeps_running() {
        // A tiny program exits quickly and must restart to fill the trace.
        let p = CfgProgram::generate(
            CfgConfig {
                functions: 1,
                min_blocks: 3,
                max_blocks: 4,
                call_fraction: 0.0,
                ..CfgConfig::default()
            },
            10,
        );
        let t = p.trace(1, 2_000);
        assert_eq!(t.conditional_len(), 2_000);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_functions_panics() {
        let _ = CfgProgram::generate(
            CfgConfig {
                functions: 0,
                ..CfgConfig::default()
            },
            1,
        );
    }

    #[test]
    fn addresses_are_increasing_and_aligned() {
        let p = program(11);
        for w in p.blocks().windows(2) {
            assert!(w[0].pc < w[1].pc);
        }
        assert!(p.blocks().iter().all(|b| b.pc % 4 == 0));
    }
}
