//! Frequency-weight construction calibrated to coverage buckets.
//!
//! The paper characterises each benchmark by how many static branches
//! supply the first 50%, next 40%, next 9%, and last 1% of dynamic
//! conditional instances (Table 2). Rather than fitting a parametric
//! Zipf law and hoping, we construct per-branch execution weights
//! *directly* from those bucket counts: each bucket receives exactly its
//! share of the total mass, distributed within the bucket with a mild
//! geometric slope so the cumulative-coverage curve is smooth.

use bpred_trace::stats::CoverageBuckets;

/// Mass assigned to each bucket, in bucket order.
const BUCKET_MASS: [f64; 4] = [0.50, 0.40, 0.09, 0.01];

/// Ratio between the heaviest and lightest weight within one bucket.
const INTRA_BUCKET_SKEW: f64 = 4.0;

/// Builds per-branch weights (heaviest first) from bucket counts. The
/// result has `buckets.total()` entries summing to 1.0, with the first
/// `first_50` branches holding 50% of the mass, and so on.
///
/// Empty buckets simply contribute no branches; their mass is
/// redistributed proportionally over the remaining buckets so the
/// weights still sum to 1.
///
/// # Panics
///
/// Panics if every bucket is empty.
///
/// # Examples
///
/// ```
/// use bpred_trace::stats::CoverageBuckets;
/// use bpred_workloads::bucket_weights;
///
/// let buckets = CoverageBuckets { first_50: 2, next_40: 3, next_9: 5, last_1: 10 };
/// let w = bucket_weights(&buckets);
/// assert_eq!(w.len(), 20);
/// let head: f64 = w[..2].iter().sum();
/// assert!((head - 0.5).abs() < 1e-9);
/// ```
pub fn bucket_weights(buckets: &CoverageBuckets) -> Vec<f64> {
    let counts = [
        buckets.first_50,
        buckets.next_40,
        buckets.next_9,
        buckets.last_1,
    ];
    let present_mass: f64 = counts
        .iter()
        .zip(BUCKET_MASS)
        .filter(|(&c, _)| c > 0)
        .map(|(_, m)| m)
        .sum();
    assert!(present_mass > 0.0, "coverage buckets must not all be empty");

    let mut weights = Vec::with_capacity(buckets.total());
    for (&count, mass) in counts.iter().zip(BUCKET_MASS) {
        if count == 0 {
            continue;
        }
        let mass = mass / present_mass;
        weights.extend(geometric_slope(count, mass));
    }
    weights
}

/// `count` weights summing to `mass`, decaying geometrically so the
/// first is [`INTRA_BUCKET_SKEW`] times the last.
fn geometric_slope(count: usize, mass: f64) -> Vec<f64> {
    if count == 1 {
        return vec![mass];
    }
    // ratio^(count-1) = 1/INTRA_BUCKET_SKEW
    let ratio = (1.0 / INTRA_BUCKET_SKEW).powf(1.0 / (count - 1) as f64);
    let mut w: Vec<f64> = (0..count).map(|i| ratio.powi(i as i32)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x *= mass / total;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cumulative_at(w: &[f64], n: usize) -> f64 {
        w[..n].iter().sum()
    }

    #[test]
    fn buckets_receive_their_mass() {
        let b = CoverageBuckets {
            first_50: 12,
            next_40: 93,
            next_9: 296,
            last_1: 1376,
        };
        let w = bucket_weights(&b);
        assert_eq!(w.len(), 1777);
        assert!((cumulative_at(&w, 12) - 0.50).abs() < 1e-9);
        assert!((cumulative_at(&w, 105) - 0.90).abs() < 1e-9);
        assert!((cumulative_at(&w, 401) - 0.99).abs() < 1e-9);
        assert!((cumulative_at(&w, 1777) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_are_monotone_within_buckets() {
        let b = CoverageBuckets {
            first_50: 5,
            next_40: 10,
            next_9: 20,
            last_1: 40,
        };
        let w = bucket_weights(&b);
        for range in [0..5usize, 5..15, 15..35, 35..75] {
            let slice = &w[range];
            assert!(slice.windows(2).all(|p| p[0] >= p[1]));
        }
    }

    #[test]
    fn intra_bucket_skew_is_bounded() {
        let w = geometric_slope(50, 1.0);
        let ratio = w[0] / w[49];
        assert!((ratio - INTRA_BUCKET_SKEW).abs() < 1e-6);
    }

    #[test]
    fn empty_buckets_redistribute_mass() {
        let b = CoverageBuckets {
            first_50: 3,
            next_40: 0,
            next_9: 0,
            last_1: 0,
        };
        let w = bucket_weights(&b);
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_branch_bucket() {
        let b = CoverageBuckets {
            first_50: 1,
            next_40: 1,
            next_9: 1,
            last_1: 1,
        };
        let w = bucket_weights(&b);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 0.5).abs() < 1e-9);
        assert!((w[3] - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not all be empty")]
    fn all_empty_panics() {
        let _ = bucket_weights(&CoverageBuckets::default());
    }

    #[test]
    fn all_weights_positive() {
        let b = CoverageBuckets {
            first_50: 64,
            next_40: 466,
            next_9: 1372,
            last_1: 3694,
        };
        let w = bucket_weights(&b);
        assert!(w.iter().all(|&x| x > 0.0));
    }
}
