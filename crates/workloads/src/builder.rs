//! Builder for custom workload models.
//!
//! The fourteen [`suite`](crate::suites) models are calibrated to the
//! paper; downstream users studying their own design points need
//! workloads with different shapes. [`WorkloadBuilder`] exposes every
//! calibration axis with sensible (large-program) defaults, so a
//! usable model takes two lines and a fully bespoke one stays
//! readable.

use bpred_trace::stats::CoverageBuckets;

use crate::model::WorkloadModel;
use crate::spec::{
    BehaviorMix, BehaviorTuning, BenchmarkSpec, BiasRange, PaperReference, SuiteKind,
};

/// Non-consuming builder for [`WorkloadModel`]s (and their
/// [`BenchmarkSpec`]s).
///
/// # Examples
///
/// ```
/// use bpred_workloads::WorkloadBuilder;
///
/// // A 2000-branch program with an espresso-like correlated hot set.
/// let model = WorkloadBuilder::new("my-workload")
///     .static_branches(2_000)
///     .correlated_fraction(0.4)
///     .sequence_coherence(0.8)
///     .dynamic_branches(50_000)
///     .build();
/// assert_eq!(model.static_branches(), 2_000);
/// let trace = model.trace(1);
/// assert_eq!(trace.conditional_len(), 50_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    spec: BenchmarkSpec,
}

impl WorkloadBuilder {
    /// Starts from large-program (IBS-like) defaults: 5,000 static
    /// branches with a realistic coverage skew, a highly biased hot
    /// set, and 500k-branch traces.
    pub fn new(name: &str) -> Self {
        WorkloadBuilder {
            spec: BenchmarkSpec {
                name: name.to_owned(),
                suite: SuiteKind::IbsUltrix,
                coverage: derive_coverage(5_000),
                hot_mix: BehaviorMix {
                    biased_taken: 0.42,
                    biased_not_taken: 0.23,
                    loops: 0.22,
                    patterns: 0.04,
                    correlated: 0.09,
                },
                cold_mix: BehaviorMix {
                    biased_taken: 0.55,
                    biased_not_taken: 0.38,
                    loops: 0.05,
                    patterns: 0.01,
                    correlated: 0.01,
                },
                hot_bias: BiasRange {
                    low: 0.94,
                    high: 0.999,
                },
                cold_bias: BiasRange {
                    low: 0.96,
                    high: 1.0,
                },
                correlation_bits: 6,
                correlation_noise: 0.03,
                tuning: BehaviorTuning::default(),
                sequence_coherence: 0.65,
                dynamic_branches: 500_000,
                jump_fraction: 0.08,
                paper: PaperReference {
                    dynamic_instructions: 0,
                    dynamic_conditionals: 0,
                    static_conditionals: 0,
                    static_for_90: 0,
                    table2: None,
                },
            },
        }
    }

    /// Sets the static branch count, deriving a realistic coverage
    /// skew (≈1% of branches supply half the instances).
    pub fn static_branches(&mut self, statics: usize) -> &mut Self {
        self.spec.coverage = derive_coverage(statics);
        self
    }

    /// Sets exact coverage buckets (overrides
    /// [`static_branches`](Self::static_branches)).
    pub fn coverage(&mut self, coverage: CoverageBuckets) -> &mut Self {
        self.spec.coverage = coverage;
        self
    }

    /// Sets the hot-set behaviour mix.
    pub fn hot_mix(&mut self, mix: BehaviorMix) -> &mut Self {
        self.spec.hot_mix = mix;
        self
    }

    /// Sets the cold-tail behaviour mix.
    pub fn cold_mix(&mut self, mix: BehaviorMix) -> &mut Self {
        self.spec.cold_mix = mix;
        self
    }

    /// Sets the fraction of hot branches that are globally correlated,
    /// rebalancing the biased fractions to keep the mix normalised.
    pub fn correlated_fraction(&mut self, fraction: f64) -> &mut Self {
        let mix = &mut self.spec.hot_mix;
        let non_biased = mix.loops + mix.patterns + fraction;
        assert!(
            non_biased < 1.0,
            "correlated fraction {fraction} leaves no room for biased branches"
        );
        mix.correlated = fraction;
        let biased = 1.0 - non_biased;
        mix.biased_taken = biased * 0.62;
        mix.biased_not_taken = biased * 0.38;
        self
    }

    /// Sets the hot-set bias range.
    pub fn hot_bias(&mut self, low: f64, high: f64) -> &mut Self {
        self.spec.hot_bias = BiasRange { low, high };
        self
    }

    /// Sets how many global-history bits correlated branches depend
    /// on, and their noise rate.
    pub fn correlation(&mut self, bits: u32, noise: f64) -> &mut Self {
        self.spec.correlation_bits = bits;
        self.spec.correlation_noise = noise;
        self
    }

    /// Sets the fine behaviour tuning (loop trips, pattern lengths,
    /// correlated-function pool).
    pub fn tuning(&mut self, tuning: BehaviorTuning) -> &mut Self {
        self.spec.tuning = tuning;
        self
    }

    /// Sets the block-chain coherence (how deterministic the
    /// macro-level control flow is).
    pub fn sequence_coherence(&mut self, coherence: f64) -> &mut Self {
        self.spec.sequence_coherence = coherence;
        self
    }

    /// Sets the default trace length in conditional branches.
    pub fn dynamic_branches(&mut self, branches: usize) -> &mut Self {
        self.spec.dynamic_branches = branches;
        self
    }

    /// Sets the fraction of non-conditional transfer records.
    pub fn jump_fraction(&mut self, fraction: f64) -> &mut Self {
        self.spec.jump_fraction = fraction;
        self
    }

    /// The spec as configured so far.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`BenchmarkSpec::validate`].
    pub fn spec(&self) -> BenchmarkSpec {
        self.spec.validate();
        self.spec.clone()
    }

    /// Materialises the workload model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`BenchmarkSpec::validate`].
    pub fn build(&self) -> WorkloadModel {
        WorkloadModel::from_spec(&self.spec)
    }
}

/// Derives paper-shaped coverage buckets from a static count: ~1%
/// of branches supply 50% of instances, ~10% supply 90%.
fn derive_coverage(statics: usize) -> CoverageBuckets {
    assert!(statics >= 8, "a workload needs at least 8 static branches");
    let first_50 = (statics / 100).max(1);
    let next_40 = (statics / 10).max(2);
    let next_9 = (statics * 3 / 10).max(2);
    let last_1 = statics - first_50 - next_40 - next_9;
    CoverageBuckets {
        first_50,
        next_40,
        next_9,
        last_1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_valid_model() {
        let model = WorkloadBuilder::new("default").build();
        assert_eq!(model.name(), "default");
        assert_eq!(model.static_branches(), 5_000);
        let trace = model.scaled(5_000).trace(1);
        assert_eq!(trace.conditional_len(), 5_000);
    }

    #[test]
    fn static_branches_partition_into_buckets() {
        for statics in [8usize, 100, 1_000, 20_000] {
            let c = derive_coverage(statics);
            assert_eq!(c.total(), statics, "{statics}");
            assert!(c.first_50 >= 1);
        }
    }

    #[test]
    fn correlated_fraction_keeps_mix_normalised() {
        let mut b = WorkloadBuilder::new("x");
        b.correlated_fraction(0.5);
        let spec = b.spec();
        let sum = spec.hot_mix.biased_taken
            + spec.hot_mix.biased_not_taken
            + spec.hot_mix.loops
            + spec.hot_mix.patterns
            + spec.hot_mix.correlated;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((spec.hot_mix.correlated - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chained_configuration_applies() {
        let mut b = WorkloadBuilder::new("chained");
        b.static_branches(500)
            .hot_bias(0.8, 0.95)
            .correlation(8, 0.01)
            .sequence_coherence(0.9)
            .dynamic_branches(10_000)
            .jump_fraction(0.0);
        let spec = b.spec();
        assert_eq!(spec.static_branches(), 500);
        assert_eq!(spec.correlation_bits, 8);
        assert_eq!(spec.dynamic_branches, 10_000);
        let trace = b.build().trace(2);
        assert_eq!(trace.len(), trace.conditional_len()); // no jumps
    }

    #[test]
    fn different_names_produce_different_programs() {
        let a = WorkloadBuilder::new("alpha").build();
        let b = WorkloadBuilder::new("beta").build();
        assert_ne!(a.branches().first(), b.branches().first());
    }

    #[test]
    #[should_panic(expected = "no room for biased")]
    fn over_allocated_mix_panics() {
        WorkloadBuilder::new("x").correlated_fraction(0.9);
    }

    #[test]
    #[should_panic(expected = "at least 8 static branches")]
    fn tiny_program_panics() {
        WorkloadBuilder::new("x").static_branches(3);
    }
}
