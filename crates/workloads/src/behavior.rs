//! Per-branch behaviour models.
//!
//! Each static branch in a synthetic program resolves according to one
//! of these behaviours. The taxonomy follows the branch populations the
//! paper discusses: the bulk of dynamic instances come from *highly
//! biased* branches ("loops, error and bounds checking, and other
//! routine conditionals", §2); loop-closing branches show periodic
//! self-history patterns that per-address schemes capture; and a
//! minority of branches are *correlated* — their outcome is a function
//! of recent global branch outcomes, the case two-level global schemes
//! were invented for (Pan/So/Rahmeh 1992).

use rand::Rng;

use bpred_trace::Outcome;

/// Mixes the bits of `x` (splitmix64 finaliser). Deterministic hash used
/// to derive per-branch random boolean functions.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How a static branch resolves each time it executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBehavior {
    /// Bernoulli branch taken with probability `taken_prob`,
    /// independently each execution. `taken_prob` near 0 or 1 models
    /// the highly biased checks that dominate large programs.
    Biased {
        /// Probability the branch is taken.
        taken_prob: f64,
    },
    /// Loop-closing branch: taken `trip_count - 1` times, then not
    /// taken once, repeating. Perfectly predictable from
    /// `trip_count`-deep self-history.
    Loop {
        /// Loop trip count (≥ 1); a trip count of 1 never takes.
        trip_count: u32,
    },
    /// Periodic branch cycling through a fixed outcome pattern (bit 0
    /// first; `length` ≤ 64 bits). Generalises [`BranchBehavior::Loop`]
    /// to arbitrary short patterns.
    Pattern {
        /// Outcome bits, bit i = outcome of phase i (1 = taken).
        bits: u64,
        /// Pattern period in bits.
        length: u32,
    },
    /// Correlated branch: outcome is a fixed (per-branch, seeded)
    /// boolean function of the last `history_bits` global branch
    /// outcomes, XOR-flipped with probability `noise`. Global-history
    /// predictors with at least `history_bits` of history (and a
    /// conflict-free counter) learn it; predictors that cannot see the
    /// correlation observe a branch whose taken rate is roughly
    /// `taken_weight` (the fraction of history patterns mapping to
    /// taken), like the `if (a && b)` tests of real code.
    Correlated {
        /// Per-branch function seed.
        seed: u64,
        /// Number of global history bits the outcome depends on.
        history_bits: u32,
        /// Probability an execution deviates from the function.
        noise: f64,
        /// Fraction of history patterns that map to taken.
        taken_weight: f64,
    },
}

impl BranchBehavior {
    /// Whether this behaviour benefits from backward (loop-shaped)
    /// branch targets.
    pub fn is_loop_shaped(&self) -> bool {
        matches!(self, BranchBehavior::Loop { .. })
    }

    /// Long-run taken rate of the behaviour (ignoring noise
    /// asymmetries; used for layout decisions and tests).
    pub fn expected_taken_rate(&self) -> f64 {
        match *self {
            BranchBehavior::Biased { taken_prob } => taken_prob,
            BranchBehavior::Loop { trip_count } => {
                (trip_count.saturating_sub(1)) as f64 / trip_count.max(1) as f64
            }
            BranchBehavior::Pattern { bits, length } => {
                if length == 0 {
                    0.0
                } else {
                    (bits & mask(length)).count_ones() as f64 / length as f64
                }
            }
            BranchBehavior::Correlated { taken_weight, .. } => taken_weight,
        }
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    match bits {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Mutable per-branch execution state (loop phase, pattern position).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BehaviorState {
    phase: u32,
}

impl BehaviorState {
    /// A fresh state at phase zero.
    pub fn new() -> Self {
        BehaviorState::default()
    }

    /// Resolves one execution of a branch with behaviour `behavior`.
    ///
    /// `global_history` is the generator's record of the most recent
    /// conditional outcomes anywhere in the program (newest in bit 0),
    /// which correlated branches consume.
    pub fn resolve<R: Rng + ?Sized>(
        &mut self,
        behavior: BranchBehavior,
        global_history: u64,
        rng: &mut R,
    ) -> Outcome {
        match behavior {
            BranchBehavior::Biased { taken_prob } => Outcome::from(rng.gen::<f64>() < taken_prob),
            BranchBehavior::Loop { trip_count } => {
                let trip = trip_count.max(1);
                let taken = self.phase < trip - 1;
                self.phase = (self.phase + 1) % trip;
                Outcome::from(taken)
            }
            BranchBehavior::Pattern { bits, length } => {
                let len = length.clamp(1, 64);
                let taken = (bits >> self.phase) & 1 == 1;
                self.phase = (self.phase + 1) % len;
                Outcome::from(taken)
            }
            BranchBehavior::Correlated {
                seed,
                history_bits,
                noise,
                taken_weight,
            } => {
                let pattern = global_history & mask(history_bits);
                // Uniform in [0,1) derived from the (branch, pattern)
                // pair; comparing against taken_weight makes the
                // expected fraction of taken-mapped patterns equal
                // taken_weight while staying deterministic per pattern.
                let u = (mix64(seed ^ pattern) >> 11) as f64 / (1u64 << 53) as f64;
                let functional = u < taken_weight;
                let flip = noise > 0.0 && rng.gen::<f64>() < noise;
                Outcome::from(functional ^ flip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(behavior: BranchBehavior, n: usize, history: impl Fn(usize) -> u64) -> Vec<Outcome> {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut state = BehaviorState::new();
        (0..n)
            .map(|i| state.resolve(behavior, history(i), &mut rng))
            .collect()
    }

    #[test]
    fn biased_branch_matches_probability() {
        let outcomes = run(BranchBehavior::Biased { taken_prob: 0.9 }, 20_000, |_| 0);
        let rate = outcomes.iter().filter(|o| o.is_taken()).count() as f64 / 20_000.0;
        assert!((rate - 0.9).abs() < 0.01, "{rate}");
    }

    #[test]
    fn biased_extremes_are_deterministic() {
        assert!(run(BranchBehavior::Biased { taken_prob: 1.0 }, 100, |_| 0)
            .iter()
            .all(|o| o.is_taken()));
        assert!(run(BranchBehavior::Biased { taken_prob: 0.0 }, 100, |_| 0)
            .iter()
            .all(|o| o.is_not_taken()));
    }

    #[test]
    fn loop_behavior_cycles() {
        let outcomes = run(BranchBehavior::Loop { trip_count: 4 }, 12, |_| 0);
        let expected = [true, true, true, false];
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.is_taken(), expected[i % 4], "position {i}");
        }
    }

    #[test]
    fn degenerate_loop_never_takes() {
        assert!(run(BranchBehavior::Loop { trip_count: 1 }, 10, |_| 0)
            .iter()
            .all(|o| o.is_not_taken()));
    }

    #[test]
    fn pattern_behavior_repeats_bits() {
        let b = BranchBehavior::Pattern {
            bits: 0b0110,
            length: 4,
        };
        let outcomes = run(b, 8, |_| 0);
        let expected = [false, true, true, false];
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.is_taken(), expected[i % 4], "position {i}");
        }
    }

    #[test]
    fn correlated_is_deterministic_function_of_history() {
        let b = BranchBehavior::Correlated {
            seed: 1234,
            history_bits: 4,
            noise: 0.0,
            taken_weight: 0.5,
        };
        // Same history pattern -> same outcome, regardless of RNG.
        let a = run(b, 50, |_| 0b1010);
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        // Different patterns usually differ somewhere.
        let outcomes: Vec<Outcome> = (0..16u64)
            .map(|p| {
                let mut rng = SmallRng::seed_from_u64(0);
                BehaviorState::new().resolve(b, p, &mut rng)
            })
            .collect();
        assert!(outcomes.iter().any(|o| o.is_taken()));
        assert!(outcomes.iter().any(|o| o.is_not_taken()));
    }

    #[test]
    fn correlated_ignores_history_beyond_its_bits() {
        let b = BranchBehavior::Correlated {
            seed: 77,
            history_bits: 3,
            noise: 0.0,
            taken_weight: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let low = BehaviorState::new().resolve(b, 0b101, &mut rng);
        let high = BehaviorState::new().resolve(b, 0b101 | (0xFF << 3), &mut rng);
        assert_eq!(low, high);
    }

    #[test]
    fn correlated_noise_flips_sometimes() {
        let b = BranchBehavior::Correlated {
            seed: 9,
            history_bits: 2,
            noise: 0.3,
            taken_weight: 0.5,
        };
        let outcomes = run(b, 10_000, |_| 0b11);
        let taken = outcomes.iter().filter(|o| o.is_taken()).count() as f64 / 10_000.0;
        // Functional value is fixed; noise makes the minority direction
        // appear ~30% of the time.
        assert!((0.25..=0.75).contains(&taken), "{taken}");
        assert!(taken <= 0.35 || taken >= 0.65, "{taken}");
    }

    #[test]
    fn expected_taken_rates() {
        assert_eq!(
            BranchBehavior::Biased { taken_prob: 0.7 }.expected_taken_rate(),
            0.7
        );
        assert_eq!(
            BranchBehavior::Loop { trip_count: 4 }.expected_taken_rate(),
            0.75
        );
        assert_eq!(
            BranchBehavior::Pattern {
                bits: 0b0110,
                length: 4
            }
            .expected_taken_rate(),
            0.5
        );
    }

    #[test]
    fn loop_shape_detection() {
        assert!(BranchBehavior::Loop { trip_count: 8 }.is_loop_shaped());
        assert!(!BranchBehavior::Biased { taken_prob: 0.5 }.is_loop_shaped());
    }

    #[test]
    fn mix64_is_stable_and_spreads() {
        assert_ne!(mix64(0), mix64(1));
        assert_eq!(mix64(12345), mix64(12345));
        // A weak avalanche check: flipping one bit changes many.
        let d = (mix64(42) ^ mix64(43)).count_ones();
        assert!(d > 16, "{d}");
    }
}
