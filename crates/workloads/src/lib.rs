//! Synthetic branch-trace workloads calibrated to the SPECint92 and
//! IBS-Ultrix benchmarks of Sechrest, Lee & Mudge (ISCA 1996).
//!
//! The original MIPS traces are unavailable, so this crate substitutes
//! *statistical program models*: each benchmark is materialised as a
//! fixed synthetic program whose static-branch count, dynamic-coverage
//! skew (Tables 1–2 of the paper), branch-bias mix, and address layout
//! match the published characterization. See `DESIGN.md` at the
//! workspace root for the substitution argument.
//!
//! * [`suite`] — the fourteen benchmark models
//!   ([`suite::espresso`], [`suite::mpeg_play`], [`suite::real_gcc`], …);
//! * [`WorkloadModel`] / [`BenchmarkSpec`] — build custom workloads;
//! * [`BranchBehavior`] — the per-branch behaviour taxonomy (biased,
//!   loop, periodic pattern, globally correlated);
//! * [`CfgProgram`] — an independent control-flow-graph workload where
//!   correlation arises structurally;
//! * [`AliasTable`], [`bucket_weights`], [`TextLayout`] — the building
//!   blocks.
//!
//! # Examples
//!
//! ```
//! use bpred_trace::stats::TraceStats;
//! use bpred_workloads::suite;
//!
//! let trace = suite::espresso().scaled(50_000).trace(42);
//! let stats = TraceStats::measure(&trace);
//! // The model reproduces espresso's skew: ~12 branches supply half
//! // the dynamic instances.
//! assert!(stats.static_for_fraction(0.5) < 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod behavior;
mod builder;
mod cfg;
mod layout;
mod model;
mod multiprog;
mod sampling;
mod spec;
pub mod suites;
mod weights;

pub use behavior::{BehaviorState, BranchBehavior};
pub use builder::WorkloadBuilder;
pub use cfg::{Block, BlockId, CfgConfig, CfgProgram, Condition, Effect, Terminator};
pub use layout::{TextLayout, TEXT_BASE};
pub use model::{StaticBranch, TraceStream, WorkloadModel, WorkloadSource};
pub use multiprog::Multiprogrammed;
pub use sampling::AliasTable;
pub use spec::{BehaviorMix, BehaviorTuning, BenchmarkSpec, BiasRange, PaperReference, SuiteKind};
pub use weights::bucket_weights;

/// Alias of [`suites`] used throughout examples (`suite::espresso()`).
pub use suites as suite;
