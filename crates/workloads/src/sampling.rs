//! Weighted sampling utilities.
//!
//! Trace generation draws hundreds of thousands of branches from a
//! skewed frequency distribution; Walker's alias method gives O(1)
//! draws after O(n) setup.

use rand::Rng;

/// Walker alias table for O(1) weighted sampling of indices.
///
/// # Examples
///
/// ```
/// use bpred_workloads::AliasTable;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let table = AliasTable::new(&[8.0, 1.0, 1.0]);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut counts = [0u32; 3];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// assert!(counts[0] > 7_000); // ~80%
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for each cell.
    prob: Vec<f64>,
    /// Fallback index for each cell.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights
            .iter()
            .inspect(|w| {
                assert!(
                    w.is_finite() && **w >= 0.0,
                    "weights must be finite and non-negative"
                );
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining accepts outright.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of weights in the table.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no entries (never: construction
    /// requires at least one weight).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let cell = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_uniform_weights() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 100_000);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn matches_skewed_weights() {
        let freq = empirical(&[0.5, 0.25, 0.125, 0.125], 200_000);
        let expect = [0.5, 0.25, 0.125, 0.125];
        for (f, e) in freq.iter().zip(expect) {
            assert!((f - e).abs() < 0.01, "{f} vs {e}");
        }
    }

    #[test]
    fn zero_weight_entries_are_never_drawn() {
        let freq = empirical(&[1.0, 0.0, 1.0], 50_000);
        assert_eq!(freq[1], 0.0);
    }

    #[test]
    fn single_entry_always_selected() {
        let table = AliasTable::new(&[3.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn unnormalised_weights_are_accepted() {
        let a = empirical(&[2.0, 6.0], 100_000);
        assert!((a[0] - 0.25).abs() < 0.01);
    }

    #[test]
    fn len_reports_size() {
        let t = AliasTable::new(&[1.0, 2.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn large_table_samples_in_bounds() {
        let weights: Vec<f64> = (1..=5000).map(|i| 1.0 / i as f64).collect();
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(table.sample(&mut rng) < 5000);
        }
    }
}
