//! The fourteen benchmark models: six SPECint92 and eight IBS-Ultrix
//! programs, calibrated to the characterizations the paper publishes in
//! its Tables 1 and 2.
//!
//! Where the paper gives exact coverage buckets (espresso, mpeg_play,
//! real_gcc — Table 2) we use them verbatim; for the remaining
//! benchmarks the buckets are derived from the Table 1 columns
//! (static count and static-for-90%) with suite-typical tail shapes.
//! Behaviour mixes encode the paper's qualitative findings: the small
//! SPECint92 programs have a lower-bias, more correlated hot set
//! ("particularly eqntott and compress"), while gcc and the IBS
//! programs execute "proportionally even more instances of highly
//! biased branches".

use bpred_trace::stats::CoverageBuckets;

use crate::model::WorkloadModel;
use crate::spec::{
    BehaviorMix, BehaviorTuning, BenchmarkSpec, BiasRange, PaperReference, SuiteKind,
};

/// Behaviour mix of the hot set for the small SPECint92 programs:
/// fewer plain biased checks, more loop/pattern/correlated structure.
fn spec_hot_mix() -> BehaviorMix {
    BehaviorMix {
        biased_taken: 0.20,
        biased_not_taken: 0.10,
        loops: 0.20,
        patterns: 0.12,
        correlated: 0.38,
    }
}

/// Behaviour mix of the hot set for large programs (gcc, IBS-Ultrix):
/// dominated by highly biased checks, with loop structure.
fn large_hot_mix() -> BehaviorMix {
    BehaviorMix {
        biased_taken: 0.42,
        biased_not_taken: 0.23,
        loops: 0.22,
        patterns: 0.04,
        correlated: 0.09,
    }
}

/// Cold-tail mix shared by all models: overwhelmingly biased checks.
fn cold_mix() -> BehaviorMix {
    BehaviorMix {
        biased_taken: 0.55,
        biased_not_taken: 0.38,
        loops: 0.05,
        patterns: 0.01,
        correlated: 0.01,
    }
}

fn spec_hot_bias() -> BiasRange {
    BiasRange {
        low: 0.88,
        high: 0.995,
    }
}

fn large_hot_bias() -> BiasRange {
    BiasRange {
        low: 0.94,
        high: 0.999,
    }
}

fn cold_bias() -> BiasRange {
    BiasRange {
        low: 0.96,
        high: 1.0,
    }
}

/// Tuning for the small SPECint92 programs: longer loops and long
/// periodic patterns (espresso's hot branches need deep self-history,
/// which is why the paper's PAs(inf) does poorly on espresso at 512
/// counters but well at 4096).
fn spec_tuning() -> BehaviorTuning {
    BehaviorTuning {
        loop_short_max: 8,
        loop_long_max: 32,
        loop_long_fraction: 0.2,
        pattern_min_bits: 10,
        pattern_max_bits: 14,
        correlated_taken_low: 0.72,
        correlated_taken_high: 0.95,
        correlated_pool: 4,
    }
}

/// Derives coverage buckets for benchmarks without published Table 2
/// rows: `n50 ≈ 0.11·n90` (the ratio of the published rows), and the
/// tail split by a suite-typical fraction of the remaining statics.
fn derived_coverage(statics: u32, for_90: u32, tail_fraction: f64) -> CoverageBuckets {
    let n50 = ((0.11 * f64::from(for_90)).round() as usize).max(1);
    let n40 = (for_90 as usize).saturating_sub(n50).max(1);
    let remaining = (statics as usize).saturating_sub(n50 + n40);
    let n9 = ((remaining as f64 * tail_fraction).round() as usize).clamp(1, remaining.max(1));
    let n1 = remaining.saturating_sub(n9);
    CoverageBuckets {
        first_50: n50,
        next_40: n40,
        next_9: n9,
        last_1: n1,
    }
}

fn spec_benchmark(
    name: &str,
    coverage: CoverageBuckets,
    hot_mix: BehaviorMix,
    hot_bias: BiasRange,
    dynamic_branches: usize,
    paper: PaperReference,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.to_owned(),
        suite: SuiteKind::SpecInt92,
        coverage,
        hot_mix,
        cold_mix: cold_mix(),
        hot_bias,
        cold_bias: cold_bias(),
        correlation_bits: 6,
        correlation_noise: 0.02,
        tuning: spec_tuning(),
        sequence_coherence: 0.9,
        dynamic_branches,
        jump_fraction: 0.06,
        paper,
    }
}

fn ibs_benchmark(
    name: &str,
    coverage: CoverageBuckets,
    dynamic_branches: usize,
    paper: PaperReference,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.to_owned(),
        suite: SuiteKind::IbsUltrix,
        coverage,
        hot_mix: large_hot_mix(),
        cold_mix: cold_mix(),
        hot_bias: large_hot_bias(),
        cold_bias: cold_bias(),
        correlation_bits: 6,
        correlation_noise: 0.03,
        tuning: BehaviorTuning::default(),
        sequence_coherence: 0.65,
        dynamic_branches,
        jump_fraction: 0.08,
        paper,
    }
}

fn paper(
    dynamic_instructions: u64,
    dynamic_conditionals: u64,
    static_conditionals: u32,
    static_for_90: u32,
    table2: Option<CoverageBuckets>,
) -> PaperReference {
    PaperReference {
        dynamic_instructions,
        dynamic_conditionals,
        static_conditionals,
        static_for_90,
        table2,
    }
}

// ---------------------------------------------------------------- SPECint92

/// Specification of the `compress` model (SPECint92).
pub fn compress_spec() -> BenchmarkSpec {
    let mut spec = spec_benchmark(
        "compress",
        derived_coverage(236, 13, 0.20),
        spec_hot_mix(),
        // The paper singles out compress (with eqntott) for its low-bias
        // active branches.
        BiasRange {
            low: 0.70,
            high: 0.93,
        },
        400_000,
        paper(83_947_354, 11_739_532, 236, 13, None),
    );
    spec.hot_mix.correlated = 0.42;
    spec.hot_mix.biased_taken = 0.18;
    spec.hot_mix.biased_not_taken = 0.08;
    spec
}

/// Specification of the `eqntott` model (SPECint92).
pub fn eqntott_spec() -> BenchmarkSpec {
    let mut spec = spec_benchmark(
        "eqntott",
        derived_coverage(494, 51, 0.20),
        spec_hot_mix(),
        BiasRange {
            low: 0.68,
            high: 0.92,
        },
        500_000,
        paper(1_395_165_044, 342_595_193, 494, 51, None),
    );
    spec.hot_mix.correlated = 0.44;
    spec.hot_mix.biased_taken = 0.16;
    spec.hot_mix.biased_not_taken = 0.08;
    spec
}

/// Specification of the `espresso` model (SPECint92) — one of the
/// paper's three focus benchmarks, with its exact Table 2 buckets.
pub fn espresso_spec() -> BenchmarkSpec {
    let coverage = CoverageBuckets {
        first_50: 12,
        next_40: 93,
        next_9: 296,
        last_1: 1376,
    };
    spec_benchmark(
        "espresso",
        coverage,
        spec_hot_mix(),
        spec_hot_bias(),
        500_000,
        paper(521_130_798, 76_466_469, 1764, 110, Some(coverage)),
    )
}

/// Specification of the `gcc` model (SPECint92) — the one SPEC program
/// the paper notes behaves like a large application.
pub fn gcc_spec() -> BenchmarkSpec {
    let mut spec = spec_benchmark(
        "gcc",
        derived_coverage(9531, 2020, 0.40),
        large_hot_mix(),
        large_hot_bias(),
        800_000,
        paper(142_359_130, 21_579_307, 9531, 2020, None),
    );
    spec.jump_fraction = 0.07;
    spec.tuning = BehaviorTuning::default();
    spec.sequence_coherence = 0.65;
    spec.correlation_noise = 0.03;
    spec
}

/// Specification of the `xlisp` model (SPECint92).
pub fn xlisp_spec() -> BenchmarkSpec {
    spec_benchmark(
        "xlisp",
        derived_coverage(489, 48, 0.20),
        spec_hot_mix(),
        spec_hot_bias(),
        500_000,
        paper(1_307_000_716, 147_425_333, 489, 48, None),
    )
}

/// Specification of the `sc` model (SPECint92).
pub fn sc_spec() -> BenchmarkSpec {
    spec_benchmark(
        "sc",
        derived_coverage(1269, 157, 0.20),
        spec_hot_mix(),
        spec_hot_bias(),
        500_000,
        paper(689_057_006, 150_381_340, 1269, 157, None),
    )
}

// ---------------------------------------------------------------- IBS-Ultrix

/// Specification of the `groff` model (IBS-Ultrix).
pub fn groff_spec() -> BenchmarkSpec {
    ibs_benchmark(
        "groff",
        derived_coverage(6333, 459, 0.30),
        1_000_000,
        paper(104_943_750, 11_901_481, 6333, 459, None),
    )
}

/// Specification of the `gs` model (IBS-Ultrix).
pub fn gs_spec() -> BenchmarkSpec {
    ibs_benchmark(
        "gs",
        derived_coverage(12852, 1160, 0.35),
        1_000_000,
        paper(118_090_975, 16_308_247, 12852, 1160, None),
    )
}

/// Specification of the `mpeg_play` model (IBS-Ultrix) — focus
/// benchmark with its exact Table 2 buckets.
pub fn mpeg_play_spec() -> BenchmarkSpec {
    let coverage = CoverageBuckets {
        first_50: 64,
        next_40: 466,
        next_9: 1372,
        last_1: 3694,
    };
    ibs_benchmark(
        "mpeg_play",
        coverage,
        1_000_000,
        paper(99_430_055, 9_566_290, 5598, 532, Some(coverage)),
    )
}

/// Specification of the `nroff` model (IBS-Ultrix).
pub fn nroff_spec() -> BenchmarkSpec {
    ibs_benchmark(
        "nroff",
        derived_coverage(5249, 228, 0.30),
        1_000_000,
        paper(130_249_374, 22_574_884, 5249, 228, None),
    )
}

/// Specification of the `real_gcc` model (IBS-Ultrix) — focus
/// benchmark with its exact Table 2 buckets.
pub fn real_gcc_spec() -> BenchmarkSpec {
    let coverage = CoverageBuckets {
        first_50: 327,
        next_40: 2877,
        next_9: 6398,
        last_1: 5749,
    };
    ibs_benchmark(
        "real_gcc",
        coverage,
        1_200_000,
        paper(107_374_368, 14_309_667, 17361, 3214, Some(coverage)),
    )
}

/// Specification of the `sdet` model (IBS-Ultrix). The paper notes only
/// 8 branches supply 50% of its dynamic instances while the other half
/// spreads over a large tail.
pub fn sdet_spec() -> BenchmarkSpec {
    let statics = 5310usize;
    let n50 = 8;
    let n40 = 506 - n50;
    let remaining = statics - 506;
    let n9 = (remaining as f64 * 0.30).round() as usize;
    ibs_benchmark(
        "sdet",
        CoverageBuckets {
            first_50: n50,
            next_40: n40,
            next_9: n9,
            last_1: remaining - n9,
        },
        1_000_000,
        paper(42_051_612, 5_514_439, 5310, 506, None),
    )
}

/// Specification of the `verilog` model (IBS-Ultrix).
pub fn verilog_spec() -> BenchmarkSpec {
    ibs_benchmark(
        "verilog",
        derived_coverage(4636, 650, 0.30),
        1_000_000,
        paper(47_055_243, 6_212_381, 4636, 650, None),
    )
}

/// Specification of the `video_play` model (IBS-Ultrix).
pub fn video_play_spec() -> BenchmarkSpec {
    ibs_benchmark(
        "video_play",
        derived_coverage(4606, 757, 0.30),
        1_000_000,
        paper(52_508_059, 5_759_231, 4606, 757, None),
    )
}

// ---------------------------------------------------------------- models

macro_rules! model_fns {
    ($(($fn_name:ident, $spec_fn:ident)),* $(,)?) => {
        $(
            /// Materialised model for the like-named benchmark; see the
            /// `*_spec` function for its calibration.
            pub fn $fn_name() -> WorkloadModel {
                WorkloadModel::from_spec(&$spec_fn())
            }
        )*
    };
}

model_fns!(
    (compress, compress_spec),
    (eqntott, eqntott_spec),
    (espresso, espresso_spec),
    (gcc, gcc_spec),
    (xlisp, xlisp_spec),
    (sc, sc_spec),
    (groff, groff_spec),
    (gs, gs_spec),
    (mpeg_play, mpeg_play_spec),
    (nroff, nroff_spec),
    (real_gcc, real_gcc_spec),
    (sdet, sdet_spec),
    (verilog, verilog_spec),
    (video_play, video_play_spec),
);

/// All fourteen benchmark specifications in the paper's Table 1 order.
pub fn all_specs() -> Vec<BenchmarkSpec> {
    vec![
        compress_spec(),
        eqntott_spec(),
        espresso_spec(),
        gcc_spec(),
        xlisp_spec(),
        sc_spec(),
        groff_spec(),
        gs_spec(),
        mpeg_play_spec(),
        nroff_spec(),
        real_gcc_spec(),
        sdet_spec(),
        verilog_spec(),
        video_play_spec(),
    ]
}

/// All fourteen materialised models in the paper's Table 1 order.
pub fn all() -> Vec<WorkloadModel> {
    all_specs().iter().map(WorkloadModel::from_spec).collect()
}

/// The paper's three focus benchmarks (espresso, mpeg_play, real_gcc)
/// used for every surface figure.
pub fn focus() -> Vec<WorkloadModel> {
    vec![espresso(), mpeg_play(), real_gcc()]
}

/// Looks up a model by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadModel> {
    all_specs()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| WorkloadModel::from_spec(&s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for spec in all_specs() {
            spec.validate();
        }
    }

    #[test]
    fn fourteen_benchmarks_in_paper_order() {
        let specs = all_specs();
        assert_eq!(specs.len(), 14);
        assert_eq!(specs[0].name, "compress");
        assert_eq!(specs[13].name, "video_play");
        let spec_count = specs
            .iter()
            .filter(|s| s.suite == SuiteKind::SpecInt92)
            .count();
        assert_eq!(spec_count, 6);
    }

    #[test]
    fn static_counts_track_the_paper() {
        // Focus benchmarks use the exact Table 2 buckets (which count
        // *executed* branches and may fall short of Table 1's static
        // total — real_gcc's buckets sum to 15,351 of 17,361); the rest
        // must land within 1% of Table 1's static-branch column.
        for spec in all_specs() {
            let statics = spec.static_branches() as f64;
            let published = match spec.paper.table2 {
                Some(buckets) => buckets.total() as f64,
                None => f64::from(spec.paper.static_conditionals),
            };
            assert!(
                (statics - published).abs() / published < 0.01,
                "{}: {statics} vs {published}",
                spec.name
            );
        }
    }

    #[test]
    fn coverage_90_tracks_table_1() {
        for spec in all_specs() {
            let n90 = (spec.coverage.first_50 + spec.coverage.next_40) as f64;
            let published = f64::from(spec.paper.static_for_90);
            assert!(
                (n90 - published).abs() / published < 0.05,
                "{}: {n90} vs {published}",
                spec.name
            );
        }
    }

    #[test]
    fn focus_benchmarks_use_exact_table_2() {
        assert_eq!(espresso_spec().coverage.first_50, 12);
        assert_eq!(mpeg_play_spec().coverage.next_40, 466);
        assert_eq!(real_gcc_spec().coverage.last_1, 5749);
    }

    #[test]
    fn sdet_has_eight_branch_head() {
        assert_eq!(sdet_spec().coverage.first_50, 8);
    }

    #[test]
    fn by_name_finds_models() {
        assert!(by_name("espresso").is_some());
        assert!(by_name("real_gcc").is_some());
        assert!(by_name("quake").is_none());
    }

    #[test]
    fn focus_returns_the_three_paper_benchmarks() {
        let names: Vec<String> = focus().iter().map(|m| m.name().to_owned()).collect();
        assert_eq!(names, ["espresso", "mpeg_play", "real_gcc"]);
    }

    #[test]
    fn small_spec_programs_have_more_correlated_hot_branches() {
        assert!(espresso_spec().hot_mix.correlated > mpeg_play_spec().hot_mix.correlated);
        assert!(eqntott_spec().hot_bias.low < real_gcc_spec().hot_bias.low);
    }

    #[test]
    fn gcc_behaves_like_a_large_program() {
        let gcc = gcc_spec();
        assert_eq!(gcc.suite, SuiteKind::SpecInt92);
        assert!((gcc.hot_mix.correlated - large_hot_mix().correlated).abs() < 1e-12);
    }
}
