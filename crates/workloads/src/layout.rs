//! Instruction-address layout for synthetic programs.
//!
//! Aliasing structure depends on *where* branches sit in the address
//! space: real code clusters branches into function-sized extents
//! spread over a text segment whose size grows with the program. The
//! layout generator reproduces that: branches are grouped into
//! functions of a few dozen instructions, functions are packed
//! sequentially with realistic gaps, and the hot set is scattered over
//! the whole segment (hot code is not contiguous in real programs).

use rand::seq::SliceRandom;
use rand::Rng;

/// Base of the synthetic text segment (the MIPS user text base).
pub const TEXT_BASE: u64 = 0x0040_0000;

/// A generated code layout: one program counter per static branch, plus
/// the function entry points (used as targets for synthetic calls and
/// jumps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextLayout {
    branch_pcs: Vec<u64>,
    function_entries: Vec<u64>,
}

impl TextLayout {
    /// Generates a layout for `branches` static branches.
    ///
    /// Branch addresses are 4-byte aligned, grouped into functions of
    /// 4–24 branches separated by 2–8 instruction gaps, and shuffled
    /// before assignment so that consumers who assign execution weight
    /// by index spread the hot set across the whole text segment.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is zero.
    pub fn generate<R: Rng + ?Sized>(branches: usize, rng: &mut R) -> Self {
        assert!(branches > 0, "a program needs at least one branch");
        let mut branch_pcs = Vec::with_capacity(branches);
        let mut function_entries = Vec::new();
        let mut pc = TEXT_BASE;
        let mut remaining = branches;
        while remaining > 0 {
            // Function prologue.
            function_entries.push(pc);
            pc += 4 * rng.gen_range(2..8u64);
            let in_function = rng.gen_range(4..=24usize).min(remaining);
            for _ in 0..in_function {
                branch_pcs.push(pc);
                // A branch every few instructions.
                pc += 4 * rng.gen_range(2..=8u64);
            }
            remaining -= in_function;
            // Epilogue + inter-function padding.
            pc += 4 * rng.gen_range(4..32u64);
        }
        branch_pcs.shuffle(rng);
        TextLayout {
            branch_pcs,
            function_entries,
        }
    }

    /// The branch program counters, in (shuffled) assignment order.
    pub fn branch_pcs(&self) -> &[u64] {
        &self.branch_pcs
    }

    /// Function entry addresses, in text order.
    pub fn function_entries(&self) -> &[u64] {
        &self.function_entries
    }

    /// Extent of the generated text segment in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.branch_pcs
            .iter()
            .chain(self.function_entries.iter())
            .max()
            .map_or(0, |max| max - TEXT_BASE + 4)
    }

    /// Picks a plausible taken-target for the branch at `pc`:
    /// loop-shaped branches jump backward a short distance, others jump
    /// forward.
    pub fn target_for<R: Rng + ?Sized>(&self, pc: u64, backward: bool, rng: &mut R) -> u64 {
        let span = 4 * rng.gen_range(2..64u64);
        if backward {
            pc.saturating_sub(span).max(TEXT_BASE)
        } else {
            pc + span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn layout(n: usize, seed: u64) -> TextLayout {
        let mut rng = SmallRng::seed_from_u64(seed);
        TextLayout::generate(n, &mut rng)
    }

    #[test]
    fn produces_requested_branch_count() {
        for n in [1, 5, 100, 5000] {
            assert_eq!(layout(n, 1).branch_pcs().len(), n);
        }
    }

    #[test]
    fn addresses_are_aligned_and_distinct() {
        let l = layout(2000, 2);
        let mut seen = HashSet::new();
        for &pc in l.branch_pcs() {
            assert_eq!(pc % 4, 0, "{pc:#x} misaligned");
            assert!(pc >= TEXT_BASE);
            assert!(seen.insert(pc), "duplicate pc {pc:#x}");
        }
    }

    #[test]
    fn text_segment_grows_with_program_size() {
        let small = layout(100, 3).text_bytes();
        let large = layout(10_000, 3).text_bytes();
        assert!(large > 20 * small, "{small} vs {large}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(layout(500, 7), layout(500, 7));
        assert_ne!(layout(500, 7), layout(500, 8));
    }

    #[test]
    fn has_function_entries() {
        let l = layout(1000, 4);
        assert!(l.function_entries().len() >= 1000 / 24);
        assert!(l.function_entries().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hot_prefix_is_scattered() {
        // After shuffling, the first 10% of branch_pcs (the hot set)
        // must span most of the text segment, not just its start.
        let l = layout(5000, 5);
        let hot = &l.branch_pcs()[..500];
        let max_hot = *hot.iter().max().unwrap();
        assert!(max_hot - TEXT_BASE > l.text_bytes() / 2);
    }

    #[test]
    fn targets_respect_direction() {
        let l = layout(10, 6);
        let mut rng = SmallRng::seed_from_u64(9);
        let pc = l.branch_pcs()[5];
        for _ in 0..20 {
            assert!(l.target_for(pc, true, &mut rng) < pc);
            assert!(l.target_for(pc, false, &mut rng) > pc);
        }
    }

    #[test]
    fn backward_target_clamps_at_text_base() {
        let l = layout(5, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(l.target_for(TEXT_BASE, true, &mut rng) >= TEXT_BASE);
        }
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn zero_branches_panics() {
        let _ = layout(0, 1);
    }
}
