//! Property fuzz for the incremental HTTP/1.1 parser: arbitrary byte
//! noise never panics, valid requests round-trip under any read-chunk
//! split (including folding and body boundaries landing mid-chunk),
//! and prefix feeding is monotone — `Incomplete` until the full
//! request, then the same parse as one-shot.

use bpred_serve::http::{parse_request, Parsed, Request};
use proptest::prelude::*;

/// A string drawn from `alphabet`, `min..max` chars (the vendored
/// proptest subset has no regex strategies).
fn chars_of(alphabet: &'static str, min: usize, max: usize) -> impl Strategy<Value = String> {
    let letters: Vec<char> = alphabet.chars().collect();
    prop::collection::vec(prop::sample::select(letters), min..max)
        .prop_map(|chars| chars.into_iter().collect())
}

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const ALNUM: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
const QUERYISH: &str = "abcdefghijklmnopqrstuvwxyz0123456789%+.=-";

/// Reference one-shot parse, as (method, path, query, body,
/// keep_alive, consumed).
fn parse_ok(buf: &[u8]) -> Option<(Request, usize)> {
    match parse_request(buf) {
        Parsed::Request(request, consumed) => Some((request, consumed)),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: parse returns Incomplete/Error/Request but
    /// never panics, and consumed never exceeds the buffer.
    #[test]
    fn arbitrary_noise_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        match parse_request(&bytes) {
            Parsed::Request(_, consumed) => prop_assert!(consumed <= bytes.len()),
            Parsed::Incomplete | Parsed::Error(_) => {}
        }
    }

    /// Noise appended after a valid request never changes the first
    /// parse (pipelining safety).
    #[test]
    fn trailing_noise_does_not_change_the_first_parse(
        path_seg in chars_of(LOWER, 1, 12),
        param in chars_of(LOWER, 1, 8),
        value in chars_of(QUERYISH, 0, 16),
        noise in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let head = format!("GET /{path_seg}?{param}={value} HTTP/1.1\r\nHost: x\r\n\r\n");
        let (want, consumed) = parse_ok(head.as_bytes()).expect("valid request parses");
        prop_assert_eq!(consumed, head.len());

        let mut buf = head.clone().into_bytes();
        buf.extend_from_slice(&noise);
        let (got, consumed2) = parse_ok(&buf).expect("still parses with a pipelined tail");
        prop_assert_eq!(consumed2, consumed);
        prop_assert_eq!(got.method, want.method);
        prop_assert_eq!(got.path, want.path);
        prop_assert_eq!(got.query, want.query);
        prop_assert_eq!(got.keep_alive, want.keep_alive);
    }

    /// Incremental feeding: every strict prefix of a valid request is
    /// Incomplete (never an error, never a short parse), and the full
    /// buffer parses identically no matter how it arrived.
    #[test]
    fn prefix_feeding_is_monotone(
        path_seg in chars_of(LOWER, 1, 10),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        keep_alive in any::<bool>(),
    ) {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut full = format!(
            "POST /{path_seg} HTTP/1.1\r\nHost: x\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        let head_len = full.len();
        full.extend_from_slice(&body);

        for cut in 0..full.len() {
            match parse_request(&full[..cut]) {
                Parsed::Incomplete => {}
                Parsed::Request(_, consumed) => {
                    // A strict prefix may only parse if the request
                    // was already complete at the cut (cannot happen:
                    // content-length pins the end).
                    prop_assert!(consumed <= cut);
                    prop_assert!(cut >= head_len + body.len());
                }
                Parsed::Error(e) => prop_assert!(false, "prefix {cut} errored: {e:?}"),
            }
        }
        let (request, consumed) = parse_ok(&full).expect("full request parses");
        prop_assert_eq!(consumed, full.len());
        prop_assert_eq!(request.method, "POST");
        prop_assert_eq!(request.path, format!("/{path_seg}"));
        prop_assert_eq!(request.body, body);
        prop_assert_eq!(request.keep_alive, keep_alive);
    }

    /// Folded (obs-fold) headers parse identically however the fold
    /// is split, and never panic.
    #[test]
    fn folded_headers_survive_any_split(
        first in chars_of(ALNUM, 1, 16),
        second in chars_of(ALNUM, 1, 16),
        ws in prop::sample::select(vec![" ", "\t", "   "]),
    ) {
        let head = format!(
            "GET /x HTTP/1.1\r\nHost: x\r\nX-Fold: {first}\r\n{ws}{second}\r\n\r\n"
        );
        let (request, consumed) = parse_ok(head.as_bytes()).expect("folded header parses");
        prop_assert_eq!(consumed, head.len());
        prop_assert_eq!(request.path, "/x");
        // Every strict prefix stays Incomplete.
        for cut in 0..head.len() {
            prop_assert!(
                matches!(parse_request(head.as_bytes()[..cut].as_ref()), Parsed::Incomplete),
                "prefix {cut} must be incomplete"
            );
        }
    }

    /// Chunked arrival: reassembling a valid request from arbitrary
    /// split points always yields the same parse as one-shot.
    #[test]
    fn chunk_boundaries_do_not_change_the_parse(
        query_val in chars_of(QUERYISH, 0, 24),
        body in proptest::collection::vec(any::<u8>(), 0..48),
        splits in proptest::collection::vec(1usize..64, 0..6),
    ) {
        let mut full = format!(
            "POST /sweep?q={query_val} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        full.extend_from_slice(&body);

        let (want, want_consumed) = parse_ok(&full).expect("valid request");

        // Feed in chunks at the given split points, parsing after
        // every chunk exactly as the server's read loop does.
        let mut buf: Vec<u8> = Vec::new();
        let mut offset = 0usize;
        let mut outcome = None;
        for &s in &splits {
            let end = (offset + s).min(full.len());
            buf.extend_from_slice(&full[offset..end]);
            offset = end;
            match parse_request(&buf) {
                Parsed::Incomplete => {}
                Parsed::Request(r, c) => { outcome = Some((r, c)); break; }
                Parsed::Error(e) => prop_assert!(false, "chunked feed errored: {e:?}"),
            }
        }
        if outcome.is_none() {
            buf.extend_from_slice(&full[offset..]);
            outcome = parse_ok(&buf);
        }
        let (got, consumed) = outcome.expect("reassembled request parses");
        prop_assert_eq!(consumed, want_consumed);
        prop_assert_eq!(got.method, want.method);
        prop_assert_eq!(got.path, want.path);
        prop_assert_eq!(got.query, want.query);
        prop_assert_eq!(got.body, want.body);
        prop_assert_eq!(got.keep_alive, want.keep_alive);
    }
}
