//! End-to-end server tests over real sockets: routing, cache-hit
//! behaviour (bit-identical repeats without re-simulation), and
//! concurrent clients.

use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;

use bpred_serve::server::{Server, ServerConfig, ServerHandle};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bpred-serve-e2e")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start(cache: Option<PathBuf>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        cache_dir: cache,
        max_branches: 2_000_000,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// One HTTP exchange over a fresh connection; returns (status line,
/// headers, body). Reads to EOF — the server closes per request.
fn get(addr: SocketAddr, target: &str) -> (String, Vec<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body boundary");
    let head = String::from_utf8(response[..split].to_vec()).expect("ASCII head");
    let body = response[split + 4..].to_vec();
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_owned();
    (status, lines.map(str::to_owned).collect(), body)
}

fn header<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|h| {
        let (n, v) = h.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Scrapes one counter value from the Prometheus exposition.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "metrics endpoint healthy");
    let text = String::from_utf8(body).expect("metrics are UTF-8");
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

const SWEEP: &str =
    "/sweep?workload=espresso&branches=20000&configs=gshare:h=7,c=2;gas:h=7,c=2;bimodal:a=9";

#[test]
fn healthz_and_unknown_routes() {
    let server = start(None);
    let addr = server.addr();

    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "got {status}");
    assert_eq!(body, b"ok\n");

    let (status, _, _) = get(addr, "/nope");
    assert!(status.contains("404"), "got {status}");

    let (status, _, body) = get(addr, "/sweep?workload=espresso");
    assert!(status.contains("400"), "got {status}");
    assert!(String::from_utf8_lossy(&body).contains("configs"));

    server.shutdown();
}

#[test]
fn repeated_sweep_hits_the_cache_bit_identically() {
    let dir = scratch("repeat");
    let server = start(Some(dir));
    let addr = server.addr();

    // Cold: everything simulates.
    let (status, headers, cold_body) = get(addr, SWEEP);
    assert!(status.contains("200"), "got {status}");
    assert_eq!(
        header(&headers, "X-Bpred-Provenance"),
        Some("hits=0 misses=3 coalesced=0")
    );
    assert_eq!(header(&headers, "Content-Type"), Some("application/json"));
    let misses_after_cold = metric(addr, "bpred_cache_misses_total");
    assert_eq!(misses_after_cold, 3);

    // Warm: answered from the store — bit-identical body, miss
    // counter parked.
    let (status, headers, warm_body) = get(addr, SWEEP);
    assert!(status.contains("200"), "got {status}");
    assert_eq!(
        header(&headers, "X-Bpred-Provenance"),
        Some("hits=3 misses=0 coalesced=0")
    );
    assert_eq!(warm_body, cold_body, "cached response is bit-identical");
    assert_eq!(
        metric(addr, "bpred_cache_misses_total"),
        misses_after_cold,
        "no re-simulation on the warm request"
    );
    assert_eq!(metric(addr, "bpred_cache_hits_total"), 3);
    assert_eq!(metric(addr, "bpred_batches_total"), 1);

    // The body is real JSON with the cells in request order.
    let text = String::from_utf8(warm_body).expect("JSON is UTF-8");
    assert!(text.starts_with("{\"workload\":\"espresso\""));
    let gshare = text.find("\"gshare:h=7,c=2\"").expect("gshare cell");
    let gas = text.find("\"gas:h=7,c=2\"").expect("gas cell");
    let bimodal = text.find("\"bimodal:a=9\"").expect("bimodal cell");
    assert!(gshare < gas && gas < bimodal);

    server.shutdown();
}

#[test]
fn sweep_without_store_still_answers_consistently() {
    let server = start(None);
    let addr = server.addr();
    let (_, _, a) = get(addr, SWEEP);
    let (_, headers, b) = get(addr, SWEEP);
    assert_eq!(a, b, "deterministic engine, deterministic body");
    // No store: every cell recomputes.
    assert_eq!(
        header(&headers, "X-Bpred-Provenance"),
        Some("hits=0 misses=3 coalesced=0")
    );
    server.shutdown();
}

#[test]
fn eight_concurrent_clients_are_served() {
    let dir = scratch("concurrent");
    let server = start(Some(dir));
    let addr = server.addr();

    // Mixed identical and distinct sweeps, healthz, and metrics —
    // all in flight at once.
    let mut handles = Vec::new();
    for i in 0..8 {
        handles.push(thread::spawn(move || {
            let target = match i % 4 {
                0 | 1 => SWEEP.to_owned(),
                2 => format!(
                    "/sweep?workload=eqntott&branches=10000&configs=gshare:h={},c=2",
                    4 + i
                ),
                _ => "/healthz".to_owned(),
            };
            let (status, _, body) = get(addr, &target);
            assert!(status.contains("200"), "client {i} got {status}");
            assert!(!body.is_empty());
            body
        }));
    }
    let bodies: Vec<Vec<u8>> = handles
        .into_iter()
        .map(|h| h.join().expect("no client panicked"))
        .collect();

    // The identical sweeps agree byte-for-byte regardless of which
    // request simulated and which waited or hit the store.
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[0], bodies[4]);
    assert_eq!(bodies[0], bodies[5]);

    // Every cell was answered exactly once by the engine; the rest
    // came from the store or coalesced onto in-flight batches.
    let hits = metric(addr, "bpred_cache_hits_total");
    let misses = metric(addr, "bpred_cache_misses_total");
    let coalesced = metric(addr, "bpred_coalesced_waits_total");
    assert_eq!(metric(addr, "bpred_cells_total"), hits + misses + coalesced);
    // 3 distinct SWEEP cells + 2 distinct eqntott cells.
    assert_eq!(misses, 5, "each distinct cell simulated once");

    server.shutdown();
}

#[test]
fn metrics_exposition_is_well_formed() {
    let server = start(None);
    let addr = server.addr();
    let (_, _, _) = get(addr, "/healthz");
    let (status, _, body) = get(addr, "/metrics");
    assert!(status.contains("200"));
    let text = String::from_utf8(body).expect("UTF-8");
    for series in [
        "bpred_http_requests_total",
        "bpred_sweep_requests_total",
        "bpred_bad_requests_total",
        "bpred_cells_total",
        "bpred_cache_hits_total",
        "bpred_cache_misses_total",
        "bpred_coalesced_waits_total",
        "bpred_batches_total",
        "bpred_inflight_batches",
        "bpred_batch_seconds_bucket{le=\"+Inf\"}",
        "bpred_batch_seconds_sum",
        "bpred_batch_seconds_count",
        "bpred_serve_requests_total{status=\"200\"}",
        "bpred_serve_requests_total{status=\"429\"}",
        "bpred_serve_connections_open",
        "bpred_serve_shed_total",
        "bpred_serve_queue_depth",
    ] {
        assert!(text.contains(series), "missing series {series}");
    }
    server.shutdown();
}
