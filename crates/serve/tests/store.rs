//! Result-store integration tests: codec properties, tiered
//! round-trips, crash recovery, migration, peer-object validation,
//! concurrent single-flight, and eviction.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use bpred_core::{AliasStats, BhtStats, PredictorConfig};
use bpred_serve::codec;
use bpred_serve::store::{Backend, ResultStore, StoreOptions};
use bpred_sim::cache::CellKey;
use bpred_sim::{SimResult, Simulator};

/// A fresh scratch directory unique to `tag` (and this process),
/// cleaned before use so reruns start empty.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bpred-serve-tests")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(tag: &str) -> CellKey {
    CellKey::new(
        &format!("workload:test@{tag}/s1/n1000/j0.05"),
        &PredictorConfig::Gshare {
            history_bits: 8,
            col_bits: 2,
        },
        &Simulator::new(),
    )
}

fn result(mispredictions: u64) -> SimResult {
    SimResult {
        predictor: "gshare(2^10)".to_owned(),
        state_bits: 2048,
        conditionals: 1000,
        mispredictions,
        alias: Some(AliasStats {
            accesses: 1000,
            conflicts: 17,
            harmless_conflicts: 5,
        }),
        bht: None,
    }
}

/// A packed store with explicit tier tuning (no env influence).
fn packed(dir: &Path, hot_bytes: u64, seal_bytes: u64) -> ResultStore {
    ResultStore::open_with(
        dir,
        StoreOptions {
            backend: Backend::Packed,
            hot_bytes,
            seal_bytes,
            peers: None,
            auto_migrate: true,
        },
    )
    .unwrap()
}

fn flat(dir: &Path) -> ResultStore {
    ResultStore::open_with(
        dir,
        StoreOptions {
            backend: Backend::Flat,
            ..StoreOptions::default()
        },
    )
    .unwrap()
}

// ------------------------------------------------------------ codec

/// Printable ASCII strings up to `max` characters.
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127u8, 0..max)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_result() -> impl Strategy<Value = SimResult> {
    (
        arb_string(40),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                predictor,
                (state_bits, conditionals, mispredictions),
                (has_alias, accesses, conflicts, harmless_conflicts),
                (has_bht, bht_accesses, bht_misses),
            )| SimResult {
                predictor,
                state_bits,
                conditionals,
                mispredictions,
                alias: has_alias.then_some(AliasStats {
                    accesses,
                    conflicts,
                    harmless_conflicts,
                }),
                bht: has_bht.then_some(BhtStats {
                    accesses: bht_accesses,
                    misses: bht_misses,
                }),
            },
        )
}

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_results(
        result in arb_result(),
        tail in arb_string(60),
    ) {
        let key = format!("cell-v2|{tail}");
        let bytes = codec::encode(&key, &result);
        prop_assert_eq!(codec::decode(&bytes, &key).unwrap(), result.clone());
        // The self-describing decode agrees and returns the key.
        let (stored_key, verified) = codec::decode_verified(&bytes).unwrap();
        prop_assert_eq!(stored_key, key);
        prop_assert_eq!(verified, result);
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes, "cell-v2|x|gshare:h=1,c=0|w0");
        let _ = codec::decode_verified(&bytes);
    }

    #[test]
    fn codec_rejects_any_truncation(result in arb_result(), cut in 1usize..64) {
        let bytes = codec::encode("cell-v2|k|gshare:h=1,c=0|w0", &result);
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(codec::decode(&bytes[..keep], "cell-v2|k|gshare:h=1,c=0|w0").is_err());
    }
}

// ------------------------------------------------------------ store

#[test]
fn put_get_round_trips_across_reopen() {
    let dir = scratch("roundtrip");
    let k = key("rt");
    {
        let store = packed(&dir, 1 << 20, 1 << 20);
        assert!(store.is_empty());
        assert_eq!(store.get(&k), None);
        store.put(&k, &result(123)).unwrap();
        assert_eq!(store.get(&k), Some(result(123)));
        assert_eq!(store.len(), 1);
    }
    // A new process would see the same state via the segments.
    let store = packed(&dir, 1 << 20, 1 << 20);
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&k), Some(result(123)));
    assert!(store.total_bytes() > 0);
}

#[test]
fn distinct_keys_store_distinct_results() {
    let dir = scratch("distinct");
    let store = packed(&dir, 1 << 20, 1 << 20);
    for i in 0..20u64 {
        store.put(&key(&format!("k{i}")), &result(i)).unwrap();
    }
    assert_eq!(store.len(), 20);
    for i in 0..20u64 {
        assert_eq!(store.get(&key(&format!("k{i}"))), Some(result(i)));
    }
}

#[test]
fn overwriting_a_key_keeps_one_entry() {
    let dir = scratch("overwrite");
    let store = packed(&dir, 1 << 20, 1 << 20);
    let k = key("ow");
    store.put(&k, &result(1)).unwrap();
    store.put(&k, &result(2)).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&k), Some(result(2)));
}

#[test]
fn hot_tier_answers_repeat_hits_without_the_filesystem() {
    let dir = scratch("hot");
    let store = packed(&dir, 1 << 20, 1 << 20);
    let k = key("hot");
    store.put(&k, &result(5)).unwrap();
    let stats = store.stats();

    // Nuke the disk tier behind the store's back: a hot-tier hit
    // must still answer, proving the filesystem was not consulted.
    fs::remove_dir_all(dir.join("packs")).unwrap();
    assert_eq!(store.get(&k), Some(result(5)));
    assert_eq!(stats.hot_hits.load(Ordering::Relaxed), 1);
    assert_eq!(stats.pack_hits.load(Ordering::Relaxed), 0);
    assert!(stats.hot_bytes.load(Ordering::Relaxed) > 0);
}

#[test]
fn disabled_hot_tier_reads_from_pack_and_promotes_nothing() {
    let dir = scratch("nohot");
    let store = packed(&dir, 0, 1 << 20);
    let k = key("nh");
    store.put(&k, &result(6)).unwrap();
    let stats = store.stats();
    assert_eq!(store.get(&k), Some(result(6)));
    assert_eq!(store.get(&k), Some(result(6)));
    assert_eq!(stats.hot_hits.load(Ordering::Relaxed), 0);
    assert_eq!(stats.pack_hits.load(Ordering::Relaxed), 2);
    assert_eq!(store.hot_len(), 0);
}

#[test]
fn torn_active_tail_recovers_prefix_and_heals() {
    let dir = scratch("torn");
    {
        let store = packed(&dir, 0, 1 << 20);
        for i in 0..8u64 {
            store.put(&key(&format!("t{i}")), &result(i)).unwrap();
        }
    }
    // Tear the (sole) active segment: half a frame of garbage.
    let packs = dir.join("packs");
    let active = fs::read_dir(&packs)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("active-"))
        .expect("active segment present")
        .path();
    let mut bytes = fs::read(&active).unwrap();
    bytes.extend_from_slice(b"BPCL\xde\xad\xbe\xef torn frame");
    fs::write(&active, &bytes).unwrap();

    let store = packed(&dir, 0, 1 << 20);
    assert_eq!(store.len(), 8, "prefix survives the torn tail");
    for i in 0..8u64 {
        assert_eq!(store.get(&key(&format!("t{i}"))), Some(result(i)));
    }
    // The store keeps working after recovery.
    store.put(&key("t-new"), &result(99)).unwrap();
    assert_eq!(store.get(&key("t-new")), Some(result(99)));
}

#[test]
fn persistent_index_is_an_optimisation_not_the_truth() {
    let dir = scratch("pidx");
    {
        let store = packed(&dir, 0, 256); // tiny seal: many sealed segments
        for i in 0..12u64 {
            store.put(&key(&format!("p{i}")), &result(i)).unwrap();
        }
    }
    let index = dir.join("packs").join("index.bin");
    assert!(index.exists(), "sealing wrote the persistent index");

    // Missing index: rebuilt by scanning segments.
    fs::remove_file(&index).unwrap();
    {
        let store = packed(&dir, 0, 256);
        assert_eq!(store.len(), 12);
        assert_eq!(store.get(&key("p3")), Some(result(3)));
    }

    // Corrupt index: detected by checksum, rebuilt the same way.
    let mut bytes = fs::read(&index).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&index, &bytes).unwrap();
    let store = packed(&dir, 0, 256);
    assert_eq!(store.len(), 12);
    assert_eq!(store.get(&key("p7")), Some(result(7)));
}

#[test]
fn migration_packs_a_legacy_flat_tree() {
    let dir = scratch("migrate");
    {
        let legacy = flat(&dir);
        for i in 0..10u64 {
            legacy.put(&key(&format!("m{i}")), &result(i)).unwrap();
        }
        assert_eq!(legacy.len(), 10);
    }
    // Plant one corrupt object: it must be skipped, not migrated.
    let corrupt = dir.join("objects").join("00");
    fs::create_dir_all(&corrupt).unwrap();
    fs::write(
        corrupt.join("00000000000000000000000000000000.bin"),
        b"not a result object",
    )
    .unwrap();

    let store = packed(&dir, 1 << 20, 1 << 20);
    let report = store.migration().expect("migration ran");
    assert_eq!(report.migrated, 10);
    assert_eq!(report.skipped, 1);
    assert!(report.bytes > 0);
    assert!(!dir.join("objects").exists(), "legacy tree removed");
    assert!(!dir.join("index.log").exists(), "legacy journal removed");
    for i in 0..10u64 {
        assert_eq!(store.get(&key(&format!("m{i}"))), Some(result(i)));
    }

    // Re-opening does not migrate again.
    drop(store);
    let store = packed(&dir, 1 << 20, 1 << 20);
    assert!(store.migration().is_none());
    assert_eq!(store.len(), 10);
}

#[test]
fn raw_object_exchange_validates_digests() {
    let dir = scratch("raw");
    let store = packed(&dir, 1 << 20, 1 << 20);
    let a = key("a");
    let b = key("b");
    let bytes_a = codec::encode(&a.canonical(), &result(1));

    // A peer-pushed object must hash to the digest it claims.
    assert!(store.put_raw(&b.digest(), &bytes_a).is_err());
    assert!(store.put_raw("zz", &bytes_a).is_err());
    assert!(store.put_raw(&a.digest(), b"garbage").is_err());
    assert_eq!(store.len(), 0);

    store.put_raw(&a.digest(), &bytes_a).unwrap();
    assert_eq!(store.get(&a), Some(result(1)));
    assert_eq!(store.get_raw(&a.digest()).unwrap(), bytes_a);
    assert_eq!(store.get_raw(&b.digest()), None);
}

#[test]
fn flat_backend_round_trips_and_gcs() {
    let dir = scratch("flatrt");
    let store = flat(&dir);
    for i in 0..10u64 {
        store.put(&key(&format!("f{i}")), &result(i)).unwrap();
    }
    assert_eq!(store.len(), 10);
    assert_eq!(store.get(&key("f4")), Some(result(4)));
    let budget = store.total_bytes() / 2;
    let report = store.gc(budget).unwrap();
    assert!(report.evicted > 0);
    assert!(report.kept_bytes <= budget);
    assert_eq!(report.kept, store.len());
}

#[test]
fn concurrent_writers_compute_once() {
    let dir = scratch("flight");
    let store = Arc::new(packed(&dir, 1 << 20, 1 << 20));
    let computes = Arc::new(AtomicUsize::new(0));
    let k = key("cw");

    let mut handles = Vec::new();
    for _ in 0..2 {
        let store = store.clone();
        let computes = computes.clone();
        let k = k.clone();
        handles.push(thread::spawn(move || {
            store.get_or_compute(&k, || {
                computes.fetch_add(1, Ordering::SeqCst);
                // Give the other thread time to join as a follower.
                thread::sleep(std::time::Duration::from_millis(30));
                result(42)
            })
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), result(42));
    }
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "exactly one thread computed; the other waited or read the store"
    );
    assert_eq!(store.get(&k), Some(result(42)));
}

#[test]
fn gc_drops_sealed_segments_but_never_the_active_one() {
    let dir = scratch("gc");
    let store = packed(&dir, 0, 256); // tiny seal: every few puts roll
    for i in 0..20u64 {
        store.put(&key(&format!("gc{i}")), &result(i)).unwrap();
    }
    assert!(store.segments() > 3);

    // Learn the current on-disk footprint from a no-op pass.
    let full = store.gc(u64::MAX).unwrap();
    assert_eq!(full.evicted, 0);
    assert_eq!(full.kept, 20);

    let budget = full.kept_bytes / 2;
    let report = store.gc(budget).unwrap();
    assert!(report.evicted > 0);
    assert!(report.freed_bytes > 0);
    assert!(report.kept_bytes <= budget, "{report:?} vs budget {budget}");
    assert_eq!(report.kept, store.len());
    assert_eq!(report.kept + report.evicted, 20);

    // Survivors read back correctly, and a reopen agrees.
    drop(store);
    let store = packed(&dir, 0, 256);
    assert_eq!(store.len(), report.kept);
    for i in 0..20u64 {
        if let Some(r) = store.get(&key(&format!("gc{i}"))) {
            assert_eq!(r, result(i));
        }
    }

    // A cell written *during* GC accounting can never be collected:
    // it lands in the active segment, which GC skips by construction.
    let fresh = key("gc-during");
    store.put(&fresh, &result(777)).unwrap();
    let _ = store.gc(0).unwrap();
    assert_eq!(store.get(&fresh), Some(result(777)));
}
