//! Result-store integration tests: codec properties, on-disk
//! round-trips, corruption recovery, concurrent single-flight, and
//! eviction.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use bpred_core::{AliasStats, BhtStats, PredictorConfig};
use bpred_serve::codec;
use bpred_serve::store::ResultStore;
use bpred_sim::cache::CellKey;
use bpred_sim::{SimResult, Simulator};

/// A fresh scratch directory unique to `tag` (and this process),
/// cleaned before use so reruns start empty.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bpred-serve-tests")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(tag: &str) -> CellKey {
    CellKey::new(
        &format!("workload:test@{tag}/s1/n1000/j0.05"),
        &PredictorConfig::Gshare {
            history_bits: 8,
            col_bits: 2,
        },
        &Simulator::new(),
    )
}

fn result(mispredictions: u64) -> SimResult {
    SimResult {
        predictor: "gshare(2^10)".to_owned(),
        state_bits: 2048,
        conditionals: 1000,
        mispredictions,
        alias: Some(AliasStats {
            accesses: 1000,
            conflicts: 17,
            harmless_conflicts: 5,
        }),
        bht: None,
    }
}

// ------------------------------------------------------------ codec

/// Printable ASCII strings up to `max` characters.
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127u8, 0..max)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_result() -> impl Strategy<Value = SimResult> {
    (
        arb_string(40),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                predictor,
                (state_bits, conditionals, mispredictions),
                (has_alias, accesses, conflicts, harmless_conflicts),
                (has_bht, bht_accesses, bht_misses),
            )| SimResult {
                predictor,
                state_bits,
                conditionals,
                mispredictions,
                alias: has_alias.then_some(AliasStats {
                    accesses,
                    conflicts,
                    harmless_conflicts,
                }),
                bht: has_bht.then_some(BhtStats {
                    accesses: bht_accesses,
                    misses: bht_misses,
                }),
            },
        )
}

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_results(
        result in arb_result(),
        tail in arb_string(60),
    ) {
        let key = format!("cell-v2|{tail}");
        let bytes = codec::encode(&key, &result);
        prop_assert_eq!(codec::decode(&bytes, &key).unwrap(), result);
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes, "cell-v2|x|gshare:h=1,c=0|w0");
    }

    #[test]
    fn codec_rejects_any_truncation(result in arb_result(), cut in 1usize..64) {
        let bytes = codec::encode("cell-v2|k|gshare:h=1,c=0|w0", &result);
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(codec::decode(&bytes[..keep], "cell-v2|k|gshare:h=1,c=0|w0").is_err());
    }
}

// ------------------------------------------------------------ store

#[test]
fn put_get_round_trips_across_reopen() {
    let dir = scratch("roundtrip");
    let k = key("rt");
    {
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(&k), None);
        store.put(&k, &result(123)).unwrap();
        assert_eq!(store.get(&k), Some(result(123)));
        assert_eq!(store.len(), 1);
    }
    // A new process would see the same state via the index.
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&k), Some(result(123)));
    assert!(store.total_bytes() > 0);
}

#[test]
fn distinct_keys_store_distinct_results() {
    let dir = scratch("distinct");
    let store = ResultStore::open(&dir).unwrap();
    for i in 0..20u64 {
        store.put(&key(&format!("k{i}")), &result(i)).unwrap();
    }
    assert_eq!(store.len(), 20);
    for i in 0..20u64 {
        assert_eq!(store.get(&key(&format!("k{i}"))), Some(result(i)));
    }
}

#[test]
fn overwriting_a_key_keeps_one_entry() {
    let dir = scratch("overwrite");
    let store = ResultStore::open(&dir).unwrap();
    let k = key("ow");
    store.put(&k, &result(1)).unwrap();
    store.put(&k, &result(2)).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&k), Some(result(2)));
}

#[test]
fn corrupt_index_log_recovers_by_rescan() {
    let dir = scratch("badindex");
    let k = key("bi");
    {
        let store = ResultStore::open(&dir).unwrap();
        store.put(&k, &result(7)).unwrap();
    }
    // Torn final append: garbage tail line.
    let index = dir.join("index.log");
    let mut text = fs::read_to_string(&index).unwrap();
    text.push_str("+\tnot-a-digest");
    fs::write(&index, text).unwrap();

    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 1, "rescan found the object");
    assert_eq!(store.get(&k), Some(result(7)));
}

#[test]
fn missing_index_log_recovers_by_rescan() {
    let dir = scratch("noindex");
    let k = key("ni");
    {
        let store = ResultStore::open(&dir).unwrap();
        store.put(&k, &result(9)).unwrap();
    }
    fs::remove_file(dir.join("index.log")).unwrap();
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.get(&k), Some(result(9)));
}

#[test]
fn truncated_object_is_a_miss_and_heals() {
    let dir = scratch("truncobj");
    let store = ResultStore::open(&dir).unwrap();
    let k = key("to");
    store.put(&k, &result(11)).unwrap();

    // Truncate the object file behind the store's back.
    let digest = k.digest();
    let path = dir
        .join("objects")
        .join(&digest[..2])
        .join(format!("{digest}.bin"));
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    assert_eq!(store.get(&k), None, "corrupt object reads as a miss");
    assert!(!path.exists(), "corrupt object was deleted");
    assert_eq!(store.len(), 0);

    // The cell heals by re-putting.
    store.put(&k, &result(11)).unwrap();
    assert_eq!(store.get(&k), Some(result(11)));
}

#[test]
fn wrong_key_object_is_rejected() {
    let dir = scratch("wrongkey");
    let store = ResultStore::open(&dir).unwrap();
    let a = key("a");
    let b = key("b");
    store.put(&a, &result(1)).unwrap();

    // Plant a's object under b's digest (a digest-collision stand-in).
    let digest_a = a.digest();
    let digest_b = b.digest();
    let path_a = dir
        .join("objects")
        .join(&digest_a[..2])
        .join(format!("{digest_a}.bin"));
    let path_b = dir
        .join("objects")
        .join(&digest_b[..2])
        .join(format!("{digest_b}.bin"));
    fs::create_dir_all(path_b.parent().unwrap()).unwrap();
    fs::copy(&path_a, &path_b).unwrap();
    fs::write(
        dir.join("index.log"),
        format!(
            "+\t{digest_a}\t{len}\n+\t{digest_b}\t{len}\n",
            len = fs::metadata(&path_a).unwrap().len()
        ),
    )
    .unwrap();

    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.get(&a), Some(result(1)));
    assert_eq!(store.get(&b), None, "embedded key mismatch is a miss");
    drop(store);
}

#[test]
fn concurrent_writers_compute_once() {
    let dir = scratch("flight");
    let store = Arc::new(ResultStore::open(&dir).unwrap());
    let computes = Arc::new(AtomicUsize::new(0));
    let k = key("cw");

    let mut handles = Vec::new();
    for _ in 0..2 {
        let store = store.clone();
        let computes = computes.clone();
        let k = k.clone();
        handles.push(thread::spawn(move || {
            store.get_or_compute(&k, || {
                computes.fetch_add(1, Ordering::SeqCst);
                // Give the other thread time to join as a follower.
                thread::sleep(std::time::Duration::from_millis(30));
                result(42)
            })
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), result(42));
    }
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "exactly one thread computed; the other waited or read the store"
    );
    assert_eq!(store.get(&k), Some(result(42)));
}

#[test]
fn gc_trims_to_budget_and_survives_reopen() {
    let dir = scratch("gc");
    let store = ResultStore::open(&dir).unwrap();
    for i in 0..10u64 {
        store.put(&key(&format!("gc{i}")), &result(i)).unwrap();
    }
    let before = store.total_bytes();
    assert_eq!(store.len(), 10);

    let budget = before / 2;
    let report = store.gc(budget).unwrap();
    assert!(report.evicted > 0);
    assert!(report.kept_bytes <= budget);
    assert_eq!(report.kept, store.len());
    assert_eq!(report.kept + report.evicted, 10);

    // Reopen agrees with the compacted index.
    drop(store);
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), report.kept);
    assert!(store.total_bytes() <= budget);

    // gc with room to spare is a no-op.
    let report2 = store.gc(u64::MAX).unwrap();
    assert_eq!(report2.evicted, 0);
    assert_eq!(report2.kept, report.kept);
}
