//! Two-node peer-exchange tests over real sockets: the `/cell`
//! routes, and a warm node feeding a cold one so cells arrive by
//! digest fetch instead of recomputation — bit-identically.

use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use bpred_core::PredictorConfig;
use bpred_serve::codec;
use bpred_serve::peers::PeerSet;
use bpred_serve::server::{Server, ServerConfig, ServerHandle};
use bpred_serve::store::{Backend, StoreOptions};
use bpred_sim::cache::CellKey;
use bpred_sim::{SimResult, Simulator};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bpred-serve-peer")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(peers: Option<PeerSet>) -> StoreOptions {
    StoreOptions {
        backend: Backend::Packed,
        hot_bytes: 16 << 20,
        seal_bytes: 1 << 20,
        peers,
        auto_migrate: true,
    }
}

fn start(cache: PathBuf, peers: Option<PeerSet>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(cache),
        store: options(peers),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// One HTTP exchange over a fresh connection; returns (status line,
/// body). Reads to EOF — `Connection: close`.
fn exchange(addr: SocketAddr, request: &[u8]) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body boundary");
    let head = String::from_utf8(response[..split].to_vec()).expect("ASCII head");
    let status = head.lines().next().expect("status line").to_owned();
    (status, response[split + 4..].to_vec())
}

fn get(addr: SocketAddr, target: &str) -> (String, Vec<u8>) {
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn put(addr: SocketAddr, target: &str, body: &[u8]) -> (String, Vec<u8>) {
    let mut request = format!(
        "PUT {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

/// Scrapes one (possibly labelled) series value from `/metrics`.
fn metric(addr: SocketAddr, series: &str) -> u64 {
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "metrics endpoint healthy");
    let text = String::from_utf8(body).expect("metrics are UTF-8");
    text.lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("series {series} missing"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("series {series} is not an integer"))
}

fn sample_key() -> CellKey {
    CellKey::new(
        "workload:peer-test@0/s1/n1000/j0",
        &PredictorConfig::Gshare {
            history_bits: 6,
            col_bits: 2,
        },
        &Simulator::new(),
    )
}

fn sample_result() -> SimResult {
    SimResult {
        predictor: "gshare(2^8)".to_owned(),
        state_bits: 512,
        conditionals: 1000,
        mispredictions: 99,
        alias: None,
        bht: None,
    }
}

#[test]
fn cell_routes_serve_and_accept_verified_objects() {
    let server = start(scratch("cell"), None);
    let addr = server.addr();
    let key = sample_key();
    let object = codec::encode(&key.canonical(), &sample_result());

    // Nothing stored yet.
    let (status, _) = get(addr, &format!("/cell/{}", key.digest()));
    assert!(status.contains("404"), "got {status}");
    let (status, _) = get(addr, "/cell/nope");
    assert!(status.contains("400"), "got {status}");

    // PUT under the wrong digest is refused...
    let wrong = format!("/cell/{}", "0".repeat(32));
    let (status, body) = put(addr, &wrong, &object);
    assert!(status.contains("400"), "got {status}");
    assert!(String::from_utf8_lossy(&body).contains("digest"));

    // ...and garbage is refused.
    let target = format!("/cell/{}", key.digest());
    let (status, _) = put(addr, &target, b"junk");
    assert!(status.contains("400"), "got {status}");

    // A verified object lands and reads back byte-for-byte.
    let (status, _) = put(addr, &target, &object);
    assert!(status.contains("200"), "got {status}");
    let (status, body) = get(addr, &target);
    assert!(status.contains("200"), "got {status}");
    assert_eq!(body, object);

    // The store behind the server agrees.
    let store = server.store().expect("store configured").clone();
    assert_eq!(store.get(&key), Some(sample_result()));

    server.shutdown();
}

const SWEEP: &str =
    "/sweep?workload=espresso&branches=20000&configs=gshare:h=7,c=2;gas:h=7,c=2;bimodal:a=9";

#[test]
fn cold_node_warm_fetches_every_cell_from_its_peer() {
    // Node A computes the sweep; node B, configured with A as a
    // peer, must answer the same sweep without simulating anything.
    let node_a = start(scratch("peer-a"), None);
    let addr_a = node_a.addr();
    let (status, body_a) = get(addr_a, SWEEP);
    assert!(status.contains("200"), "got {status}");
    assert_eq!(metric(addr_a, "bpred_cache_misses_total"), 3);

    let peers = PeerSet::from_list(&addr_a.to_string()).expect("peer list");
    let node_b = start(scratch("peer-b"), Some(peers));
    let addr_b = node_b.addr();
    let (status, body_b) = get(addr_b, SWEEP);
    assert!(status.contains("200"), "got {status}");

    // Bit-identical across nodes, zero recomputation on B: all
    // three cells arrived via peer fetch.
    assert_eq!(body_a, body_b);
    assert_eq!(metric(addr_b, "bpred_cache_misses_total"), 0);
    assert_eq!(metric(addr_b, "bpred_store_hits_total{tier=\"peer\"}"), 3);
    assert_eq!(
        metric(addr_a, "bpred_cache_misses_total"),
        3,
        "A served from store"
    );

    // A repeat on B is now a local hot-tier hit, not another fetch.
    let (_, body_b2) = get(addr_b, SWEEP);
    assert_eq!(body_b, body_b2);
    assert_eq!(metric(addr_b, "bpred_store_hits_total{tier=\"peer\"}"), 3);
    assert_eq!(metric(addr_b, "bpred_store_hits_total{tier=\"hot\"}"), 3);

    node_b.shutdown();
    node_a.shutdown();
}

#[test]
fn dead_peer_degrades_to_local_compute() {
    // Port 1: connection refused. The node must still answer by
    // simulating, just without peer help.
    let peers = PeerSet::from_list("127.0.0.1:1").expect("peer list");
    let node = start(scratch("peer-dead"), Some(peers));
    let addr = node.addr();
    let (status, _) = get(addr, SWEEP);
    assert!(status.contains("200"), "got {status}");
    assert_eq!(metric(addr, "bpred_cache_misses_total"), 3);
    assert_eq!(metric(addr, "bpred_store_hits_total{tier=\"peer\"}"), 0);
    node.shutdown();
}
