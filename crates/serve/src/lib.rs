//! Result store and sweep service.
//!
//! The paper's evaluation is a grid of independent, deterministic
//! simulations — the same cells recur across figures, tables, and
//! reruns. This crate makes that structure operational with two
//! layers:
//!
//! * **[`store`]** — a tiered content-addressed cache of
//!   [`SimResult`](bpred_sim::SimResult)s, keyed by the stable digest
//!   of a sweep cell's [`CellKey`](bpred_sim::CellKey) (workload
//!   stream identity × predictor configuration × warmup × engine
//!   version). Reads fall through a sharded in-memory **hot tier**
//!   ([`hot`]), checksummed append-only **pack segments** with a
//!   persistent page-aligned index ([`pack`]), and optional **peer
//!   nodes** fetched by digest over HTTP ([`peers`]); every tier's
//!   bytes are verified (checksum + embedded canonical key) before
//!   being believed. [`ResultStore`] implements
//!   [`ResultCache`](bpred_sim::ResultCache), so installing one via
//!   [`install_from_env`] transparently memoises every keyed sweep in
//!   the process (the `bpred-bench` binaries do this when
//!   `BPRED_CACHE_DIR` is set).
//!
//! * **[`server`]** — a dependency-free event-driven HTTP/1.1
//!   service: sharded readiness loops over nonblocking `std::net`
//!   (poll(2) via the self-contained [`reactor`]) drive
//!   per-connection state machines with keep-alive, pipelining, and
//!   read/write/idle timeouts, handing sweep compute to a bounded
//!   worker queue that load-sheds with `429 + Retry-After` when
//!   saturated. Requests decompose into cells; cells are
//!   deduplicated against the store and against in-flight work
//!   ([`flight`], single-flight coalescing), and the residual misses
//!   run as one batch through the single-pass engine. `/healthz`
//!   reports liveness and `/metrics` exposes Prometheus counters for
//!   requests (by status), connections, sheds, queue depth, cache
//!   hits/misses, in-flight batches, and batch latency.
//!
//! # Quick start
//!
//! ```no_run
//! use bpred_serve::server::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on http://{}", handle.addr());
//! // GET /sweep?workload=espresso&branches=100000&configs=gshare:h=8,c=2;gas:h=8,c=2
//! handle.shutdown();
//! ```

// `deny` rather than `forbid`: the one `#[allow(unsafe_code)]`
// carve-out is `reactor::sys`, the poll(2) binding that keeps the
// event loop vendor-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod flight;
pub mod hot;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pack;
pub mod peers;
pub mod reactor;
pub mod server;
pub mod service;
pub mod store;

pub use metrics::Metrics;
pub use peers::PeerSet;
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{sweep_body, SweepRequest, SweepService};
pub use store::{
    install_from_env, Backend, GcReport, MigrateReport, ResultStore, StoreOptions, StoreStats,
};
