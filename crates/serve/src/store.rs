//! Tiered content-addressed result store.
//!
//! Every sweep cell — one `(workload stream, predictor config,
//! warmup, engine version)` tuple — is pure and deterministic, so its
//! [`SimResult`] can be stored under the stable digest of its
//! [`CellKey`] and reused forever (until [`ENGINE_VERSION`] changes,
//! which changes every key). Reads fall through three tiers:
//!
//! 1. **hot** — a sharded, byte-bounded in-memory tier of decoded
//!    results ([`crate::hot`]); repeat hits never touch the
//!    filesystem.
//! 2. **pack** — checksummed append-only pack segments with a
//!    persistent page-aligned index ([`crate::pack`]); replaces the
//!    PR 3 one-file-per-object layout.
//! 3. **peer** — other serve nodes named in `BPRED_SERVE_PEERS`,
//!    asked by digest over `GET /cell/<digest>` ([`crate::peers`])
//!    before the cell is recomputed.
//!
//! Whatever the tier, bytes are decoded by the [`codec`] — checksum
//! plus embedded-canonical-key verification — so every answer is
//! bit-identical to a local `run_configs_keyed` recomputation; a
//! corrupt object (or a lying peer) is a miss, never a wrong number.
//! Concurrent compute for the same cell stays single-flighted via
//! [`crate::flight`].
//!
//! The legacy flat layout (`objects/<aa>/<digest>.bin`) survives two
//! ways: opening a packed store over a directory that still has an
//! `objects/` tree migrates it into segments automatically (also
//! exposed as `serve store migrate`), and [`Backend::Flat`] keeps the
//! old per-file read/write path alive for comparison benchmarks.
//!
//! The store implements [`ResultCache`], so
//! [`bpred_sim::cache::install`]ing one memoises every keyed sweep in
//! the process; [`install_from_env`] does that from `BPRED_CACHE_DIR`.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use bpred_sim::cache::{CellKey, ResultCache};
use bpred_sim::{SimResult, ENGINE_VERSION};
use bpred_trace::fnv;

use crate::codec;
use crate::flight::{Flight, Join};
use crate::hot::HotTier;
use crate::pack::PackStore;
use crate::peers::PeerSet;

const OBJECTS_DIR: &str = "objects";
const LEGACY_INDEX_FILE: &str = "index.log";
const TMP_DIR: &str = "tmp";

/// Which disk layout backs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pack segments + hot tier + peers (the default).
    #[default]
    Packed,
    /// The legacy PR 3/PR 7 one-file-per-object layout; no hot tier,
    /// no peers. Kept for migration sources and benchmarks.
    Flat,
}

/// Tuning for [`ResultStore::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Disk layout.
    pub backend: Backend,
    /// Hot-tier byte budget; 0 disables the tier.
    pub hot_bytes: u64,
    /// Active pack segment seal threshold in bytes.
    pub seal_bytes: u64,
    /// Peers to fetch missing cells from (packed backend only).
    pub peers: Option<PeerSet>,
    /// Migrate a legacy `objects/` tree into segments at open.
    pub auto_migrate: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            backend: Backend::Packed,
            hot_bytes: 64 << 20,
            seal_bytes: 8 << 20,
            peers: None,
            auto_migrate: true,
        }
    }
}

impl StoreOptions {
    /// Defaults overridden by the environment:
    /// `BPRED_STORE_BACKEND` (`packed`|`flat`), `BPRED_STORE_HOT_BYTES`,
    /// `BPRED_STORE_SEAL_BYTES`, and `BPRED_SERVE_PEERS`.
    pub fn from_env() -> StoreOptions {
        let mut options = StoreOptions::default();
        if let Ok(backend) = std::env::var("BPRED_STORE_BACKEND") {
            if backend.eq_ignore_ascii_case("flat") {
                options.backend = Backend::Flat;
            }
        }
        if let Some(v) = env_u64("BPRED_STORE_HOT_BYTES") {
            options.hot_bytes = v;
        }
        if let Some(v) = env_u64("BPRED_STORE_SEAL_BYTES") {
            options.seal_bytes = v;
        }
        if let Ok(list) = std::env::var("BPRED_SERVE_PEERS") {
            options.peers = PeerSet::from_list(&list);
        }
        options
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Per-tier hit counters and size gauges, exported on `/metrics` as
/// `bpred_store_hits_total{tier=…}`, `bpred_store_segments`, and
/// `bpred_store_hot_bytes`.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Cells answered from the in-memory hot tier.
    pub hot_hits: AtomicU64,
    /// Cells answered from disk (pack segments, or the flat tree).
    pub pack_hits: AtomicU64,
    /// Cells answered by a peer fetch.
    pub peer_hits: AtomicU64,
    /// Segments on disk (gauge).
    pub segments: AtomicU64,
    /// Hot-tier resident bytes (gauge).
    pub hot_bytes: AtomicU64,
}

/// What a [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Cells removed.
    pub evicted: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Cells remaining.
    pub kept: usize,
    /// Bytes remaining (segment file bytes for the packed backend,
    /// object bytes for the flat one).
    pub kept_bytes: u64,
}

/// What migrating a legacy flat tree into pack segments did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrateReport {
    /// Objects packed into segments.
    pub migrated: usize,
    /// Corrupt or misnamed objects dropped.
    pub skipped: usize,
    /// Payload bytes migrated.
    pub bytes: u64,
}

// PackStore is boxed: its striped index makes it far larger than
// FlatStore, and ResultStore lives behind an Arc anyway.
#[derive(Debug)]
enum Disk {
    Packed(Box<PackStore>),
    Flat(FlatStore),
}

/// A tiered content-addressed cache of simulation results.
///
/// Cheaply shareable via [`Arc`]; all methods take `&self` and are
/// safe to call from many threads.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    disk: Disk,
    hot: HotTier,
    peers: Option<PeerSet>,
    stats: Arc<StoreStats>,
    flight: Flight<SimResult>,
    migration: Option<MigrateReport>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `root` with
    /// [`StoreOptions::from_env`].
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        ResultStore::open_with(root, StoreOptions::from_env())
    }

    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// With the packed backend, a leftover partial active segment is
    /// recovered, a missing or corrupt persistent index is rebuilt by
    /// scanning segments, and (unless `auto_migrate` is off) a legacy
    /// flat `objects/` tree is packed into segments first.
    pub fn open_with(root: impl Into<PathBuf>, options: StoreOptions) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(root.join(TMP_DIR))?;
        let mut migration = None;
        let (disk, hot, peers) = match options.backend {
            Backend::Packed => {
                let pack = PackStore::open(&root, options.seal_bytes)?;
                if options.auto_migrate && root.join(OBJECTS_DIR).is_dir() {
                    migration = Some(migrate_flat_tree(&root, &pack)?);
                }
                (
                    Disk::Packed(Box::new(pack)),
                    HotTier::new(options.hot_bytes),
                    options.peers,
                )
            }
            Backend::Flat => (Disk::Flat(FlatStore::open(&root)?), HotTier::new(0), None),
        };
        let store = ResultStore {
            root,
            disk,
            hot,
            peers,
            stats: Arc::new(StoreStats::default()),
            flight: Flight::new(),
            migration,
        };
        store.refresh_gauges();
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Which disk layout is in use.
    pub fn backend(&self) -> Backend {
        match self.disk {
            Disk::Packed(_) => Backend::Packed,
            Disk::Flat(_) => Backend::Flat,
        }
    }

    /// Per-tier hit counters and gauges, shared with `/metrics`.
    pub fn stats(&self) -> Arc<StoreStats> {
        self.stats.clone()
    }

    /// The migration performed at open, if any.
    pub fn migration(&self) -> Option<MigrateReport> {
        self.migration
    }

    /// Number of cached cells on disk.
    pub fn len(&self) -> usize {
        match &self.disk {
            Disk::Packed(pack) => pack.len(),
            Disk::Flat(flat) => flat.len(),
        }
    }

    /// Returns `true` when no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes of cached objects.
    pub fn total_bytes(&self) -> u64 {
        match &self.disk {
            Disk::Packed(pack) => pack.payload_bytes(),
            Disk::Flat(flat) => flat.total_bytes(),
        }
    }

    /// Segments on disk (1 for the flat backend's single tree).
    pub fn segments(&self) -> usize {
        match &self.disk {
            Disk::Packed(pack) => pack.segments(),
            Disk::Flat(_) => 1,
        }
    }

    /// Cells resident in the hot tier.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    fn refresh_gauges(&self) {
        self.stats
            .segments
            .store(self.segments() as u64, Ordering::Relaxed);
        self.stats
            .hot_bytes
            .store(self.hot.bytes(), Ordering::Relaxed);
    }

    /// Looks up the result for `key`, trying hot → pack → peers.
    /// `None` on a miss; a corrupt object is dropped (the cell heals
    /// by recomputation), and peer bytes are verified against the
    /// expected canonical key before being believed.
    pub fn get(&self, key: &CellKey) -> Option<SimResult> {
        let canonical = key.canonical();
        let hex = key.digest();
        match &self.disk {
            Disk::Flat(flat) => {
                let bytes = flat.get(&hex)?;
                match codec::decode(&bytes, &canonical) {
                    Ok(result) => {
                        self.stats.pack_hits.fetch_add(1, Ordering::Relaxed);
                        Some(result)
                    }
                    Err(_) => {
                        flat.remove(&hex);
                        None
                    }
                }
            }
            Disk::Packed(pack) => {
                let digest = parse_digest(&hex)?;
                if let Some(result) = self.hot.get(digest) {
                    self.stats.hot_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(result);
                }
                if let Some(bytes) = pack.get(digest) {
                    match codec::decode(&bytes, &canonical) {
                        Ok(result) => {
                            self.hot.put(digest, &result, bytes.len());
                            self.stats.pack_hits.fetch_add(1, Ordering::Relaxed);
                            self.refresh_gauges();
                            return Some(result);
                        }
                        // Corrupt on disk: drop it, but still give
                        // the peer tier a chance below.
                        Err(_) => pack.forget(digest),
                    }
                }
                let peers = self.peers.as_ref()?;
                let bytes = peers.fetch(&hex)?;
                match codec::decode(&bytes, &canonical) {
                    Ok(result) => {
                        let _ = pack.put(digest, &bytes);
                        self.hot.put(digest, &result, bytes.len());
                        self.stats.peer_hits.fetch_add(1, Ordering::Relaxed);
                        self.refresh_gauges();
                        Some(result)
                    }
                    Err(_) => None,
                }
            }
        }
    }

    /// Stores the result for `key` durably (pack append or flat
    /// object write) and, for the packed backend, in the hot tier.
    pub fn put(&self, key: &CellKey, result: &SimResult) -> io::Result<()> {
        let bytes = codec::encode(&key.canonical(), result);
        let hex = key.digest();
        match &self.disk {
            Disk::Flat(flat) => flat.put(&hex, &bytes)?,
            Disk::Packed(pack) => {
                let digest = parse_digest(&hex)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad digest"))?;
                pack.put(digest, &bytes)?;
                self.hot.put(digest, result, bytes.len());
            }
        }
        self.refresh_gauges();
        Ok(())
    }

    /// Reads the raw stored object for `digest_hex` from the *local*
    /// tiers only — this is what `GET /cell/<digest>` serves, so two
    /// peers asking each other can never loop.
    pub fn get_raw(&self, digest_hex: &str) -> Option<Vec<u8>> {
        if !digest_ok(digest_hex) {
            return None;
        }
        match &self.disk {
            Disk::Packed(pack) => pack.get(parse_digest(digest_hex)?),
            Disk::Flat(flat) => flat.get(digest_hex),
        }
    }

    /// Accepts a raw object for `digest_hex` (the `PUT /cell/…`
    /// handler). The bytes must decode cleanly and their embedded
    /// canonical key must hash to `digest_hex`; anything else is
    /// rejected, so a peer can prime caches but never poison them.
    pub fn put_raw(&self, digest_hex: &str, bytes: &[u8]) -> Result<(), String> {
        if !digest_ok(digest_hex) {
            return Err("digest must be 32 hex digits".to_owned());
        }
        let (stored_key, result) =
            codec::decode_verified(bytes).map_err(|e| format!("bad object: {e}"))?;
        if fnv::fnv128_hex(stored_key.as_bytes()) != digest_hex {
            return Err("object key does not hash to the given digest".to_owned());
        }
        match &self.disk {
            Disk::Packed(pack) => {
                let digest = parse_digest(digest_hex).expect("digest_ok checked");
                pack.put(digest, bytes).map_err(|e| e.to_string())?;
                self.hot.put(digest, &result, bytes.len());
            }
            Disk::Flat(flat) => flat.put(digest_hex, bytes).map_err(|e| e.to_string())?,
        }
        self.refresh_gauges();
        Ok(())
    }

    /// Returns the cached result for `key`, or computes, stores, and
    /// returns it. Concurrent callers for the same cell are
    /// single-flighted: one computes, the rest wait for its result.
    /// If the computing caller panics, waiters recompute themselves.
    pub fn get_or_compute(&self, key: &CellKey, compute: impl FnOnce() -> SimResult) -> SimResult {
        if let Some(result) = self.get(key) {
            return result;
        }
        match self.flight.join(&key.digest()) {
            Join::Leader(guard) => {
                // Double-check under leadership: another leader may
                // have stored the cell between our miss and our join.
                let result = self.get(key).unwrap_or_else(compute);
                let _ = self.put(key, &result);
                guard.complete(result.clone());
                result
            }
            Join::Follower(waiter) => match waiter.wait() {
                Some(result) => result,
                None => {
                    // Leader aborted; compute independently.
                    let result = compute();
                    let _ = self.put(key, &result);
                    result
                }
            },
        }
    }

    /// Trims the store to at most `max_bytes` on disk.
    ///
    /// Packed backend: whole sealed segments are dropped oldest
    /// generation first and mostly-dead ones compacted; the active
    /// segment is never touched, so a cell being written concurrently
    /// can never be collected. Flat backend: legacy oldest-mtime
    /// eviction.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let report = match &self.disk {
            Disk::Packed(pack) => {
                let r = pack.gc(max_bytes)?;
                GcReport {
                    evicted: r.evicted,
                    freed_bytes: r.freed_bytes,
                    kept: r.kept,
                    kept_bytes: r.kept_bytes,
                }
            }
            Disk::Flat(flat) => flat.gc(max_bytes)?,
        };
        self.refresh_gauges();
        Ok(report)
    }
}

fn digest_ok(digest: &str) -> bool {
    digest.len() == 32 && digest.bytes().all(|b| b.is_ascii_hexdigit())
}

fn parse_digest(hex: &str) -> Option<u128> {
    if !digest_ok(hex) {
        return None;
    }
    u128::from_str_radix(hex, 16).ok()
}

/// Packs every valid object of a legacy flat `objects/` tree into the
/// segment store, then removes the tree (and the old journal).
/// Corrupt or misnamed objects are dropped — they were unreadable in
/// the old layout too.
fn migrate_flat_tree(root: &Path, pack: &PackStore) -> io::Result<MigrateReport> {
    let mut report = MigrateReport::default();
    let objects = root.join(OBJECTS_DIR);
    for fan in fs::read_dir(&objects)? {
        let fan = fan?;
        if !fan.file_type()?.is_dir() {
            continue;
        }
        for entry in fs::read_dir(fan.path())? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(hex) = name.to_str().and_then(|n| n.strip_suffix(".bin")) else {
                continue;
            };
            let Some(digest) = parse_digest(hex) else {
                report.skipped += 1;
                let _ = fs::remove_file(entry.path());
                continue;
            };
            let bytes = fs::read(entry.path())?;
            let valid = codec::decode_verified(&bytes)
                .map(|(key, _)| fnv::fnv128_hex(key.as_bytes()) == hex)
                .unwrap_or(false);
            if valid {
                pack.put(digest, &bytes)?;
                report.migrated += 1;
                report.bytes += bytes.len() as u64;
            } else {
                report.skipped += 1;
            }
            let _ = fs::remove_file(entry.path());
        }
        let _ = fs::remove_dir(fan.path());
    }
    let _ = fs::remove_dir(&objects);
    let _ = fs::remove_file(root.join(LEGACY_INDEX_FILE));
    pack.seal_active()?;
    Ok(report)
}

/// The legacy one-file-per-object layout
/// (`objects/<aa>/<digest>.bin`), kept as a named backend for
/// migration sources and benchmark baselines. No journal — the tree
/// is scanned at open.
#[derive(Debug)]
struct FlatStore {
    root: PathBuf,
    index: Mutex<HashMap<String, u64>>,
}

impl FlatStore {
    fn open(root: &Path) -> io::Result<FlatStore> {
        fs::create_dir_all(root.join(OBJECTS_DIR))?;
        let mut index = HashMap::new();
        for fan in fs::read_dir(root.join(OBJECTS_DIR))? {
            let fan = fan?;
            if !fan.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(fan.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(digest) = name.to_str().and_then(|n| n.strip_suffix(".bin")) else {
                    continue;
                };
                if digest_ok(digest) {
                    index.insert(digest.to_owned(), entry.metadata()?.len());
                }
            }
        }
        Ok(FlatStore {
            root: root.to_owned(),
            index: Mutex::new(index),
        })
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        self.root
            .join(OBJECTS_DIR)
            .join(&digest[..2])
            .join(format!("{digest}.bin"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, u64>> {
        self.index.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn len(&self) -> usize {
        self.lock().len()
    }

    fn total_bytes(&self) -> u64 {
        self.lock().values().sum()
    }

    fn get(&self, digest: &str) -> Option<Vec<u8>> {
        if !self.lock().contains_key(digest) {
            return None;
        }
        match fs::read(self.object_path(digest)) {
            Ok(bytes) => Some(bytes),
            Err(_) => {
                self.lock().remove(digest);
                None
            }
        }
    }

    fn remove(&self, digest: &str) {
        let _ = fs::remove_file(self.object_path(digest));
        self.lock().remove(digest);
    }

    fn put(&self, digest: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.object_path(digest);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .root
            .join(TMP_DIR)
            .join(format!("{digest}.{}.{n}", process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        self.lock().insert(digest.to_owned(), bytes.len() as u64);
        Ok(())
    }

    fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let snapshot: Vec<(String, u64)> =
            self.lock().iter().map(|(d, &l)| (d.clone(), l)).collect();
        let mut aged: Vec<(SystemTime, String, u64)> = Vec::with_capacity(snapshot.len());
        let mut total: u64 = 0;
        for (digest, len) in snapshot {
            let mtime = fs::metadata(self.object_path(&digest))
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            total += len;
            aged.push((mtime, digest, len));
        }
        aged.sort(); // oldest first; digest tiebreak keeps it total

        let mut report = GcReport::default();
        for (_, digest, len) in &aged {
            if total <= max_bytes {
                break;
            }
            self.remove(digest);
            total -= len;
            report.evicted += 1;
            report.freed_bytes += len;
        }
        let map = self.lock();
        report.kept = map.len();
        report.kept_bytes = map.values().sum();
        Ok(report)
    }
}

impl ResultCache for ResultStore {
    fn get(&self, key: &CellKey) -> Option<SimResult> {
        ResultStore::get(self, key)
    }

    fn put(&self, key: &CellKey, result: &SimResult) {
        // Best effort: a full disk must not fail the sweep.
        let _ = ResultStore::put(self, key, result);
    }
}

/// When `BPRED_CACHE_DIR` is set and non-empty, opens the store
/// rooted there (honouring the `BPRED_STORE_*` / `BPRED_SERVE_PEERS`
/// environment) and installs it as the process-wide result cache for
/// keyed sweeps (see [`bpred_sim::cache`]). Returns the installed
/// store, or `None` when the variable is unset/empty or the store
/// cannot be opened (a warning is printed; simulation proceeds
/// uncached).
pub fn install_from_env() -> Option<Arc<ResultStore>> {
    let dir = std::env::var("BPRED_CACHE_DIR").ok()?;
    if dir.is_empty() {
        return None;
    }
    match ResultStore::open(&dir) {
        Ok(store) => {
            let store = Arc::new(store);
            bpred_sim::cache::install(store.clone());
            Some(store)
        }
        Err(e) => {
            eprintln!(
                "warning: BPRED_CACHE_DIR={dir}: cannot open result store ({e}); running uncached"
            );
            None
        }
    }
}

/// The store format the current binary writes, surfaced for
/// diagnostics: engine version the cache keys are bound to.
pub const fn engine_version() -> u32 {
    ENGINE_VERSION
}
