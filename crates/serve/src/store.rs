//! Content-addressed on-disk result store.
//!
//! Every sweep cell — one `(workload stream, predictor config,
//! warmup, engine version)` tuple — is pure and deterministic, so its
//! [`SimResult`] can be stored under the stable digest of its
//! [`CellKey`] and reused forever (until [`ENGINE_VERSION`] changes,
//! which changes every key). The store is a directory:
//!
//! ```text
//! <root>/objects/<aa>/<digest>.bin   one encoded result per cell
//! <root>/index.log                   append-only journal of the set
//! <root>/tmp/                        staging for atomic writes
//! ```
//!
//! where `<aa>` is the first two hex digits of the 32-digit digest
//! (fan-out keeps directories small) and each object is the
//! [`codec`](crate::codec) encoding — embedded canonical key plus
//! checksum, so loads verify both integrity and identity.
//!
//! *Durability model.* Writes go to `tmp/` under a unique name and
//! `rename(2)` into place, so readers never observe half-written
//! objects. The index is an append-only log (`+\t<digest>\t<bytes>`
//! on insert, `-\t<digest>` on removal); a malformed or missing log
//! is rebuilt by scanning `objects/`, so the log is an optimisation,
//! never the source of truth. A corrupt object detected at `get` is
//! deleted and reported as a miss — the cell simply recomputes.
//!
//! *Eviction.* [`ResultStore::gc`] trims the store to a byte budget,
//! oldest-modified objects first, and compacts the log.
//!
//! The store implements [`ResultCache`], so
//! [`bpred_sim::cache::install`]ing one memoises every keyed sweep in
//! the process; [`install_from_env`] does that from `BPRED_CACHE_DIR`.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use bpred_sim::cache::{CellKey, ResultCache};
use bpred_sim::{SimResult, ENGINE_VERSION};

use crate::codec;
use crate::flight::{Flight, Join};

const INDEX_FILE: &str = "index.log";
const OBJECTS_DIR: &str = "objects";
const TMP_DIR: &str = "tmp";

/// Stripes in the in-memory index lock: one per first hex digit of
/// the digest, so concurrent hits on different cells almost never
/// contend on the same mutex.
const INDEX_STRIPES: usize = 16;

/// The in-memory digest → size index, striped by the digest's first
/// hex nibble. Each stripe is an independent mutex; whole-index
/// operations (len, snapshot, replace) visit the stripes one at a
/// time and never hold two stripe locks at once.
#[derive(Debug)]
struct StripedIndex {
    stripes: [Mutex<HashMap<String, u64>>; INDEX_STRIPES],
}

impl StripedIndex {
    fn new() -> StripedIndex {
        StripedIndex {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn stripe(&self, digest: &str) -> std::sync::MutexGuard<'_, HashMap<String, u64>> {
        let nibble = digest
            .as_bytes()
            .first()
            .map_or(0, |b| (*b as char).to_digit(16).unwrap_or(0) as usize);
        // A poisoned stripe only means a writer panicked mid-update of
        // the in-memory map; the map itself is still consistent
        // (single-statement updates), so recover it.
        self.stripes[nibble % INDEX_STRIPES]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn contains(&self, digest: &str) -> bool {
        self.stripe(digest).contains_key(digest)
    }

    /// Inserts and reports whether the digest was new.
    fn insert(&self, digest: &str, len: u64) -> bool {
        self.stripe(digest).insert(digest.to_owned(), len).is_none()
    }

    fn remove(&self, digest: &str) {
        self.stripe(digest).remove(digest);
    }

    fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    fn total_bytes(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .sum::<u64>()
            })
            .sum()
    }

    /// A point-in-time copy of the whole index (not atomic across
    /// stripes; callers tolerate concurrent churn).
    fn snapshot(&self) -> HashMap<String, u64> {
        let mut map = HashMap::with_capacity(self.len());
        for stripe in &self.stripes {
            map.extend(
                stripe
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .map(|(d, &l)| (d.clone(), l)),
            );
        }
        map
    }

    /// Replaces the entire index contents.
    fn replace(&self, map: HashMap<String, u64>) {
        let mut split: Vec<HashMap<String, u64>> =
            (0..INDEX_STRIPES).map(|_| HashMap::new()).collect();
        for (digest, len) in map {
            let nibble = digest
                .as_bytes()
                .first()
                .map_or(0, |b| (*b as char).to_digit(16).unwrap_or(0) as usize);
            split[nibble % INDEX_STRIPES].insert(digest, len);
        }
        for (stripe, fresh) in self.stripes.iter().zip(split) {
            *stripe.lock().unwrap_or_else(|e| e.into_inner()) = fresh;
        }
    }
}

/// What a [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Objects removed.
    pub evicted: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Objects remaining.
    pub kept: usize,
    /// Bytes remaining.
    pub kept_bytes: u64,
}

/// A content-addressed on-disk cache of simulation results.
///
/// Cheaply cloneable via [`Arc`]; all methods take `&self` and are
/// safe to call from many threads.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    /// digest → object size in bytes, striped so concurrent hits on
    /// different cells don't serialize on one lock.
    index: StripedIndex,
    /// Serializes appends to the index journal (the on-disk log is a
    /// single file regardless of striping).
    journal: Mutex<()>,
    flight: Flight<SimResult>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// Reads the index journal; if it is missing or malformed the
    /// store rebuilds it from the objects on disk.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(root.join(OBJECTS_DIR))?;
        fs::create_dir_all(root.join(TMP_DIR))?;
        let store = ResultStore {
            index: StripedIndex::new(),
            journal: Mutex::new(()),
            flight: Flight::new(),
            root,
        };
        let loaded = store.load_index().unwrap_or(None);
        match loaded {
            Some(map) => store.index.replace(map),
            None => store.rebuild_index()?,
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Total bytes of cached objects (per the index).
    pub fn total_bytes(&self) -> u64 {
        self.index.total_bytes()
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        let fan = &digest[..2.min(digest.len())];
        self.root
            .join(OBJECTS_DIR)
            .join(fan)
            .join(format!("{digest}.bin"))
    }

    /// Parses the index journal; `Ok(None)` means absent-or-malformed
    /// (rebuild), `Err` means the file could not be read at all.
    fn load_index(&self) -> io::Result<Option<HashMap<String, u64>>> {
        let text = match fs::read_to_string(self.root.join(INDEX_FILE)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut map = HashMap::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let valid = match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some("+"), Some(digest), Some(len), None) => {
                    if let (true, Ok(len)) = (digest_ok(digest), len.parse::<u64>()) {
                        map.insert(digest.to_owned(), len);
                        true
                    } else {
                        false
                    }
                }
                (Some("-"), Some(digest), None, None) => {
                    map.remove(digest);
                    digest_ok(digest)
                }
                _ => false,
            };
            if !valid {
                // Torn append or hand-edited log: distrust the whole
                // journal and rescan the objects instead.
                return Ok(None);
            }
        }
        Ok(Some(map))
    }

    /// Rescans `objects/` and rewrites the journal to match.
    fn rebuild_index(&self) -> io::Result<()> {
        let mut map = HashMap::new();
        let objects = self.root.join(OBJECTS_DIR);
        for fan in fs::read_dir(&objects)? {
            let fan = fan?;
            if !fan.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(fan.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(digest) = name.to_str().and_then(|n| n.strip_suffix(".bin")) else {
                    continue;
                };
                if digest_ok(digest) {
                    map.insert(digest.to_owned(), entry.metadata()?.len());
                }
            }
        }
        self.write_compacted_index(&map)?;
        self.index.replace(map);
        Ok(())
    }

    fn write_compacted_index(&self, map: &HashMap<String, u64>) -> io::Result<()> {
        let mut lines: Vec<String> = map.iter().map(|(d, l)| format!("+\t{d}\t{l}\n")).collect();
        lines.sort(); // deterministic journal for same content
        let text: String = lines.concat();
        let tmp = self.tmp_path("index");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.root.join(INDEX_FILE))
    }

    fn append_index_line(&self, line: &str) -> io::Result<()> {
        let _journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(INDEX_FILE))?;
        file.write_all(line.as_bytes())
    }

    fn tmp_path(&self, tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        self.root
            .join(TMP_DIR)
            .join(format!("{tag}.{}.{n}", process::id()))
    }

    /// Looks up the result for `key`; `None` on miss *or* on a
    /// corrupt/mismatched object (which is deleted so the cell heals
    /// by recomputation).
    pub fn get(&self, key: &CellKey) -> Option<SimResult> {
        let digest = key.digest();
        if !self.index.contains(&digest) {
            return None;
        }
        let path = self.object_path(&digest);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.forget(&digest);
                return None;
            }
        };
        match codec::decode(&bytes, &key.canonical()) {
            Ok(result) => Some(result),
            Err(_) => {
                let _ = fs::remove_file(&path);
                self.forget(&digest);
                None
            }
        }
    }

    fn forget(&self, digest: &str) {
        self.index.remove(digest);
        let _ = self.append_index_line(&format!("-\t{digest}\n"));
    }

    /// Stores the result for `key` atomically (write-to-temp, rename).
    pub fn put(&self, key: &CellKey, result: &SimResult) -> io::Result<()> {
        let digest = key.digest();
        let bytes = codec::encode(&key.canonical(), result);
        let path = self.object_path(&digest);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = self.tmp_path(&digest);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        let fresh = self.index.insert(&digest, bytes.len() as u64);
        if fresh {
            self.append_index_line(&format!("+\t{digest}\t{}\n", bytes.len()))?;
        }
        Ok(())
    }

    /// Returns the cached result for `key`, or computes, stores, and
    /// returns it. Concurrent callers for the same cell are
    /// single-flighted: one computes, the rest wait for its result.
    /// If the computing caller panics, waiters recompute themselves.
    pub fn get_or_compute(&self, key: &CellKey, compute: impl FnOnce() -> SimResult) -> SimResult {
        if let Some(result) = self.get(key) {
            return result;
        }
        match self.flight.join(&key.digest()) {
            Join::Leader(guard) => {
                // Double-check under leadership: another leader may
                // have stored the cell between our miss and our join.
                let result = self.get(key).unwrap_or_else(compute);
                let _ = self.put(key, &result);
                guard.complete(result.clone());
                result
            }
            Join::Follower(waiter) => match waiter.wait() {
                Some(result) => result,
                None => {
                    // Leader aborted; compute independently.
                    let result = compute();
                    let _ = self.put(key, &result);
                    result
                }
            },
        }
    }

    /// Evicts oldest-modified objects until the store holds at most
    /// `max_bytes`, then compacts the index journal.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let snapshot: Vec<(String, u64)> = self.index.snapshot().into_iter().collect();
        let mut aged: Vec<(SystemTime, String, u64)> = Vec::with_capacity(snapshot.len());
        let mut total: u64 = 0;
        for (digest, len) in snapshot {
            let mtime = fs::metadata(self.object_path(&digest))
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            total += len;
            aged.push((mtime, digest, len));
        }
        aged.sort(); // oldest first; digest tiebreak keeps it total

        let mut report = GcReport::default();
        for (_, digest, len) in &aged {
            if total <= max_bytes {
                break;
            }
            let _ = fs::remove_file(self.object_path(digest));
            self.index.remove(digest);
            total -= len;
            report.evicted += 1;
            report.freed_bytes += len;
        }
        let map = self.index.snapshot();
        report.kept = map.len();
        report.kept_bytes = map.values().sum();
        self.write_compacted_index(&map)?;
        Ok(report)
    }
}

fn digest_ok(digest: &str) -> bool {
    digest.len() == 32 && digest.bytes().all(|b| b.is_ascii_hexdigit())
}

impl ResultCache for ResultStore {
    fn get(&self, key: &CellKey) -> Option<SimResult> {
        ResultStore::get(self, key)
    }

    fn put(&self, key: &CellKey, result: &SimResult) {
        // Best effort: a full disk must not fail the sweep.
        let _ = ResultStore::put(self, key, result);
    }
}

/// When `BPRED_CACHE_DIR` is set and non-empty, opens the store
/// rooted there and installs it as the process-wide result cache for
/// keyed sweeps (see [`bpred_sim::cache`]). Returns the installed
/// store, or `None` when the variable is unset/empty or the store
/// cannot be opened (a warning is printed; simulation proceeds
/// uncached).
pub fn install_from_env() -> Option<Arc<ResultStore>> {
    let dir = std::env::var("BPRED_CACHE_DIR").ok()?;
    if dir.is_empty() {
        return None;
    }
    match ResultStore::open(&dir) {
        Ok(store) => {
            let store = Arc::new(store);
            bpred_sim::cache::install(store.clone());
            Some(store)
        }
        Err(e) => {
            eprintln!(
                "warning: BPRED_CACHE_DIR={dir}: cannot open result store ({e}); running uncached"
            );
            None
        }
    }
}

/// The store format the current binary writes, surfaced for
/// diagnostics: engine version the cache keys are bound to.
pub const fn engine_version() -> u32 {
    ENGINE_VERSION
}
