//! Single-flight deduplication of concurrent identical work.
//!
//! When several requests want the same sweep cell at the same time,
//! only one should simulate it; the rest should wait for that result
//! instead of burning cores on duplicate replays. [`Flight::join`]
//! decides which: the first caller for a key becomes the **leader**
//! (and must eventually [`complete`](LeaderGuard::complete) the
//! value), later callers become **followers** and block on
//! [`Waiter::wait`] until the leader publishes.
//!
//! If a leader drops its guard without completing (panic,
//! early-return), the slot is marked aborted and waiters receive
//! `None` — they fall back to computing on their own, so a crashed
//! leader never deadlocks the service.
//!
//! Poisoning is contained by construction: every lock in this module
//! recovers a poisoned guard with
//! [`into_inner`](std::sync::PoisonError::into_inner) rather than
//! propagating the panic. A computation that panics therefore aborts
//! only its own entry — the group stays usable, and a guard dropped
//! during unwind never double-panics.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks `mutex`, shrugging off poison: flight state transitions are
/// single assignments, so a poisoned guard's data is still coherent.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug)]
enum Slot<V> {
    Waiting,
    Done(V),
    Aborted,
}

#[derive(Debug)]
struct Shared<V> {
    slots: Mutex<HashMap<String, Arc<Cell<V>>>>,
}

#[derive(Debug)]
struct Cell<V> {
    state: Mutex<Slot<V>>,
    ready: Condvar,
}

/// A single-flight group over string keys.
#[derive(Debug)]
pub struct Flight<V> {
    shared: Arc<Shared<V>>,
}

impl<V: Clone> Default for Flight<V> {
    fn default() -> Self {
        Flight::new()
    }
}

impl<V: Clone> Flight<V> {
    /// An empty group.
    pub fn new() -> Self {
        Flight {
            shared: Arc::new(Shared {
                slots: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Joins the flight for `key`: the first concurrent caller leads,
    /// the rest follow.
    pub fn join(&self, key: &str) -> Join<V> {
        let mut slots = lock_recover(&self.shared.slots);
        if let Some(cell) = slots.get(key) {
            return Join::Follower(Waiter { cell: cell.clone() });
        }
        let cell = Arc::new(Cell {
            state: Mutex::new(Slot::Waiting),
            ready: Condvar::new(),
        });
        slots.insert(key.to_owned(), cell.clone());
        Join::Leader(LeaderGuard {
            key: key.to_owned(),
            cell,
            shared: self.shared.clone(),
            completed: false,
        })
    }
}

/// Outcome of [`Flight::join`].
#[derive(Debug)]
pub enum Join<V> {
    /// This caller computes the value and must
    /// [`complete`](LeaderGuard::complete) it.
    Leader(LeaderGuard<V>),
    /// Another caller is already computing; [`wait`](Waiter::wait) for
    /// it.
    Follower(Waiter<V>),
}

/// Leadership of one in-flight key. Dropping without
/// [`complete`](Self::complete) aborts the flight and releases
/// waiters empty-handed.
#[derive(Debug)]
pub struct LeaderGuard<V> {
    key: String,
    cell: Arc<Cell<V>>,
    shared: Arc<Shared<V>>,
    completed: bool,
}

impl<V> LeaderGuard<V> {
    /// Publishes the computed value to every waiter and retires the
    /// key from the in-flight set.
    pub fn complete(mut self, value: V) {
        self.finish(Slot::Done(value));
        self.completed = true;
    }

    fn finish(&self, slot: Slot<V>) {
        {
            let mut state = lock_recover(&self.cell.state);
            *state = slot;
        }
        self.cell.ready.notify_all();
        lock_recover(&self.shared.slots).remove(&self.key);
    }
}

impl<V> Drop for LeaderGuard<V> {
    fn drop(&mut self) {
        if !self.completed {
            self.finish(Slot::Aborted);
        }
    }
}

/// A follower's handle on an in-flight computation.
#[derive(Debug)]
pub struct Waiter<V> {
    cell: Arc<Cell<V>>,
}

impl<V: Clone> Waiter<V> {
    /// Blocks until the leader publishes. `None` means the leader
    /// aborted; the caller should compute the value itself.
    pub fn wait(self) -> Option<V> {
        let mut state = lock_recover(&self.cell.state);
        loop {
            match &*state {
                Slot::Waiting => {
                    state = self
                        .cell
                        .ready
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                Slot::Done(v) => return Some(v.clone()),
                Slot::Aborted => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn sequential_joins_all_lead() {
        let flight: Flight<u32> = Flight::new();
        for i in 0..3 {
            match flight.join("k") {
                Join::Leader(guard) => guard.complete(i),
                Join::Follower(_) => panic!("no concurrent work: must lead"),
            }
        }
    }

    #[test]
    fn followers_receive_the_leaders_value() {
        let flight: Arc<Flight<u64>> = Arc::new(Flight::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let flight = flight.clone();
            let computes = computes.clone();
            handles.push(thread::spawn(move || match flight.join("cell") {
                Join::Leader(guard) => {
                    computes.fetch_add(1, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(20));
                    guard.complete(42);
                    42
                }
                Join::Follower(waiter) => waiter.wait().expect("leader completes"),
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("no panics"), 42);
        }
        // At least one thread led; every leader that ran concurrently
        // was the sole computer for its span. With an immediate-retire
        // race a later thread may lead a second flight, but the common
        // case (all spawned within the sleep) is exactly one compute.
        assert!(computes.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn aborted_leader_releases_waiters() {
        let flight: Arc<Flight<u8>> = Arc::new(Flight::new());
        let Join::Leader(guard) = flight.join("k") else {
            panic!("first join leads");
        };
        let follower = {
            let flight = flight.clone();
            thread::spawn(move || match flight.join("k") {
                Join::Follower(w) => w.wait(),
                Join::Leader(_) => panic!("leader already present"),
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(guard); // abort
        assert_eq!(follower.join().expect("no panic"), None);
        // The key is free again: the next join leads.
        assert!(matches!(flight.join("k"), Join::Leader(_)));
    }

    #[test]
    fn panicking_leader_poisons_only_its_own_entry() {
        let flight: Arc<Flight<u8>> = Arc::new(Flight::new());

        // A waiter joins behind the doomed leader.
        let Join::Leader(guard) = flight.join("doomed") else {
            panic!("first join leads");
        };
        let waiter = {
            let flight = flight.clone();
            thread::spawn(move || match flight.join("doomed") {
                Join::Follower(w) => w.wait(),
                Join::Leader(_) => panic!("leader already present"),
            })
        };
        thread::sleep(Duration::from_millis(20));

        // The computation panics while the guard is live — and, worse,
        // while holding the cell's state lock, so the mutex really is
        // poisoned when the guard's Drop runs during unwind.
        let panicked = thread::spawn(move || {
            let _held = guard.cell.state.lock().unwrap();
            panic!("compute exploded");
        })
        .join();
        assert!(panicked.is_err(), "the compute thread panicked");

        // The waiter is released empty-handed (retry signal), not hung
        // and not panicking on propagated poison.
        assert_eq!(waiter.join().expect("waiter must not panic"), None);

        // The poisoned entry is gone; the key and the whole group keep
        // working for later callers.
        match flight.join("doomed") {
            Join::Leader(g) => g.complete(7),
            Join::Follower(_) => panic!("aborted key must be free"),
        }
        match flight.join("unrelated") {
            Join::Leader(g) => g.complete(9),
            Join::Follower(_) => panic!("other keys unaffected"),
        }
    }

    #[test]
    fn waiter_survives_poison_raced_during_wait() {
        // Poison the slots map itself (panic while holding it) and
        // check join still works afterwards.
        let flight: Arc<Flight<u8>> = Arc::new(Flight::new());
        let poisoner = {
            let flight = flight.clone();
            thread::spawn(move || {
                let _guard = flight.shared.slots.lock().unwrap();
                panic!("poison the slots map");
            })
        };
        assert!(poisoner.join().is_err());
        match flight.join("after-poison") {
            Join::Leader(g) => g.complete(1),
            Join::Follower(_) => panic!("join must recover from poison"),
        }
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let flight: Flight<u8> = Flight::new();
        let Join::Leader(a) = flight.join("a") else {
            panic!("leads");
        };
        let Join::Leader(b) = flight.join("b") else {
            panic!("distinct key must lead");
        };
        a.complete(1);
        b.complete(2);
    }
}
