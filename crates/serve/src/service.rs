//! The sweep service: request parsing, cell decomposition, cache
//! dedup, batch coalescing, JSON assembly.
//!
//! A sweep request names one workload stream (benchmark, seed, trace
//! length, warmup) and a list of predictor configurations. The
//! service decomposes it into cells — one per configuration — and
//! resolves each by the cheapest available path, in order:
//!
//! 1. **Store hit** — the cell's digest is in the result store.
//! 2. **Coalesced wait** — another request is simulating the same
//!    cell right now ([`Flight`] single-flight); wait for it.
//! 3. **Simulate** — the residual misses run as *one* batch through
//!    [`run_batched`], sharing a single streaming pass, then land in
//!    the store for next time.
//!
//! The JSON body is deterministic (insertion-ordered fields, no
//! timestamps, no cache provenance), so repeated identical requests
//! return byte-identical bodies whether answered hot or cold — the
//! provenance (`hits=… misses=… coalesced=…`) rides in the
//! `X-Bpred-Provenance` response header instead.

use std::sync::Arc;
use std::time::Instant;

use bpred_core::PredictorConfig;
use bpred_sim::cache::CellKey;
use bpred_sim::{run_batched, SimResult, Simulator, DEFAULT_SHARD_SIZE};
use bpred_workloads::{suite, WorkloadSource};

use crate::flight::{Flight, Join, LeaderGuard};
use crate::http::parse_query;
use crate::json::{array, Object};
use crate::metrics::Metrics;
use crate::store::ResultStore;

/// Default trace seed, matching the experiment drivers.
pub const DEFAULT_SEED: u64 = 1996;

/// A parsed sweep request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Benchmark name (a [`suite`] member).
    pub workload: String,
    /// Trace generation seed.
    pub seed: u64,
    /// Conditional branches to replay; `None` uses the model default.
    pub branches: Option<usize>,
    /// Scored-branch warmup exclusion.
    pub warmup: usize,
    /// Predictor configurations, in response order.
    pub configs: Vec<PredictorConfig>,
}

/// A client error: HTTP status plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// HTTP status code (4xx).
    pub status: u16,
    /// Human-readable reason, sent as the response body.
    pub message: String,
}

impl BadRequest {
    fn new(message: impl Into<String>) -> Self {
        BadRequest {
            status: 400,
            message: message.into(),
        }
    }
}

impl SweepRequest {
    /// Parses request parameters from a query string (or
    /// form-encoded POST body): `workload=<name>` and
    /// `configs=<cfg>;<cfg>;…` are required; `seed=<u64>`,
    /// `branches=<usize>`, and `warmup=<usize>` are optional.
    pub fn parse(query: &str) -> Result<SweepRequest, BadRequest> {
        let mut workload: Option<String> = None;
        let mut seed = DEFAULT_SEED;
        let mut branches: Option<usize> = None;
        let mut warmup = 0usize;
        let mut configs: Vec<PredictorConfig> = Vec::new();

        for (key, value) in parse_query(query) {
            match key.as_str() {
                "workload" => workload = Some(value),
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| BadRequest::new(format!("seed {value:?} is not a u64")))?;
                }
                "branches" => {
                    let n: usize = value.parse().map_err(|_| {
                        BadRequest::new(format!("branches {value:?} is not a count"))
                    })?;
                    if n == 0 {
                        return Err(BadRequest::new("branches must be positive"));
                    }
                    branches = Some(n);
                }
                "warmup" => {
                    warmup = value
                        .parse()
                        .map_err(|_| BadRequest::new(format!("warmup {value:?} is not a count")))?;
                }
                "configs" => {
                    for part in value.split(';').filter(|p| !p.is_empty()) {
                        let config: PredictorConfig = part
                            .parse()
                            .map_err(|e| BadRequest::new(format!("config {part:?}: {e}")))?;
                        configs.push(config);
                    }
                }
                other => {
                    return Err(BadRequest::new(format!("unknown parameter {other:?}")));
                }
            }
        }

        let workload = workload.ok_or_else(|| BadRequest::new("missing parameter: workload"))?;
        if configs.is_empty() {
            return Err(BadRequest::new(
                "missing parameter: configs (e.g. configs=gshare:h=8,c=2;gas:h=8,c=2)",
            ));
        }
        Ok(SweepRequest {
            workload,
            seed,
            branches,
            warmup,
            configs,
        })
    }
}

/// Aggregate provenance of one answered sweep, reported in the
/// `X-Bpred-Provenance` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Cells answered from the store.
    pub hits: usize,
    /// Cells this request simulated.
    pub misses: usize,
    /// Cells answered by waiting on another request's batch.
    pub coalesced: usize,
}

impl Provenance {
    /// The header value, e.g. `hits=3 misses=1 coalesced=0`.
    pub fn header_value(&self) -> String {
        format!(
            "hits={} misses={} coalesced={}",
            self.hits, self.misses, self.coalesced
        )
    }
}

/// The sweep-answering engine behind the HTTP server.
#[derive(Debug)]
pub struct SweepService {
    store: Option<Arc<ResultStore>>,
    flight: Flight<SimResult>,
    metrics: Arc<Metrics>,
    max_branches: usize,
}

impl SweepService {
    /// Builds a service. `store` of `None` disables persistence
    /// (every cell simulates, but concurrent duplicates still
    /// coalesce); `max_branches` caps the per-request replay length.
    pub fn new(
        store: Option<Arc<ResultStore>>,
        metrics: Arc<Metrics>,
        max_branches: usize,
    ) -> Self {
        SweepService {
            store,
            flight: Flight::new(),
            metrics,
            max_branches,
        }
    }

    /// The service's metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Answers one sweep request: the deterministic JSON body plus
    /// provenance for the response header.
    pub fn execute(&self, request: &SweepRequest) -> Result<(String, Provenance), BadRequest> {
        let model = suite::by_name(&request.workload)
            .ok_or_else(|| BadRequest::new(format!("unknown workload {:?}", request.workload)))?;
        let source = match request.branches {
            Some(n) => WorkloadSource::with_length(model, request.seed, n),
            None => WorkloadSource::new(model, request.seed),
        };
        if source.conditionals() > self.max_branches {
            return Err(BadRequest::new(format!(
                "trace length {} exceeds the server cap of {} branches",
                source.conditionals(),
                self.max_branches
            )));
        }
        Metrics::inc(&self.metrics.sweep_requests);
        Metrics::add(&self.metrics.cells, request.configs.len() as u64);

        let source_id = source.cache_id();
        let simulator = Simulator::with_warmup(request.warmup);
        let keys: Vec<CellKey> = request
            .configs
            .iter()
            .map(|config| CellKey::new(&source_id, config, &simulator))
            .collect();

        let mut provenance = Provenance::default();
        let mut results: Vec<Option<SimResult>> = vec![None; keys.len()];

        // 1. Store hits.
        if let Some(store) = &self.store {
            for (slot, key) in results.iter_mut().zip(&keys) {
                if let Some(result) = store.get(key) {
                    *slot = Some(result);
                    provenance.hits += 1;
                }
            }
        }
        Metrics::add(&self.metrics.cache_hits, provenance.hits as u64);

        // 2. Join the flight for every remaining cell. Each cell is
        // either led (this request will simulate it) or followed
        // (another request's in-flight batch covers it). Leaders are
        // claimed before any follower waits, so two requests can never
        // block on each other's unled work.
        let mut leaders: Vec<(usize, LeaderGuard<SimResult>)> = Vec::new();
        let mut followers: Vec<(usize, crate::flight::Waiter<SimResult>)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            match self.flight.join(&key.digest()) {
                Join::Leader(guard) => leaders.push((i, guard)),
                Join::Follower(waiter) => followers.push((i, waiter)),
            }
        }

        // 3. Simulate all led cells as one batch. Re-check the store
        // first: leadership can be won for a cell another request
        // finished (and retired from the flight) between our store
        // miss and our join — simulate only what is still absent.
        if let Some(store) = &self.store {
            let mut still_missing = Vec::with_capacity(leaders.len());
            for (i, guard) in leaders {
                match store.get(&keys[i]) {
                    Some(result) => {
                        provenance.hits += 1;
                        Metrics::inc(&self.metrics.cache_hits);
                        // Publish to any followers of our short-lived
                        // leadership.
                        guard.complete(result.clone());
                        results[i] = Some(result);
                    }
                    None => still_missing.push((i, guard)),
                }
            }
            leaders = still_missing;
        }
        if !leaders.is_empty() {
            let configs: Vec<PredictorConfig> =
                leaders.iter().map(|&(i, _)| request.configs[i]).collect();
            Metrics::inc(&self.metrics.batches);
            Metrics::inc(&self.metrics.inflight_batches);
            let started = Instant::now();
            let computed = run_batched(&configs, &source, simulator, DEFAULT_SHARD_SIZE);
            self.metrics.batch_latency.observe(started.elapsed());
            self.metrics
                .inflight_batches
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);

            provenance.misses += leaders.len();
            Metrics::add(&self.metrics.cache_misses, leaders.len() as u64);
            for ((i, guard), result) in leaders.into_iter().zip(computed) {
                if let Some(store) = &self.store {
                    let _ = store.put(&keys[i], &result);
                }
                guard.complete(result.clone());
                results[i] = Some(result);
            }
        }

        // 4. Collect followed cells; an aborted leader (panicked
        // request) falls back to a solo simulation here.
        for (i, waiter) in followers {
            let result = match waiter.wait() {
                Some(result) => {
                    provenance.coalesced += 1;
                    Metrics::inc(&self.metrics.coalesced_waits);
                    result
                }
                None => {
                    provenance.misses += 1;
                    Metrics::inc(&self.metrics.cache_misses);
                    let solo = run_batched(
                        &[request.configs[i]],
                        &source,
                        simulator,
                        DEFAULT_SHARD_SIZE,
                    )
                    .remove(0);
                    if let Some(store) = &self.store {
                        let _ = store.put(&keys[i], &solo);
                    }
                    solo
                }
            };
            results[i] = Some(result);
        }

        let resolved: Vec<SimResult> = results
            .into_iter()
            .map(|r| r.expect("every cell resolved"))
            .collect();
        let body = sweep_body(request, source.conditionals(), &source_id, &resolved);
        Ok((body, provenance))
    }
}

/// Renders the deterministic JSON body for an answered sweep. Public
/// so the load harness (`bench_serve`) can compute the expected body
/// from direct engine results and assert bit-identity against what
/// the server returned.
pub fn sweep_body(
    request: &SweepRequest,
    conditionals: usize,
    source_id: &str,
    results: &[SimResult],
) -> String {
    let cells: Vec<String> = request
        .configs
        .iter()
        .zip(results)
        .map(|(config, result)| cell_json(config, result))
        .collect();
    Object::new()
        .str("workload", &request.workload)
        .u64("seed", request.seed)
        .u64("branches", conditionals as u64)
        .u64("warmup", request.warmup as u64)
        .u64("engine", u64::from(bpred_sim::ENGINE_VERSION))
        .str("source_id", source_id)
        .raw("cells", &array(cells))
        .build()
}

fn cell_json(config: &PredictorConfig, result: &SimResult) -> String {
    let mut obj = Object::new()
        .str("config", &config.config_id())
        .str("predictor", &result.predictor)
        .u64("state_bits", result.state_bits)
        .u64("conditionals", result.conditionals)
        .u64("mispredictions", result.mispredictions)
        .f64("misprediction_rate", result.misprediction_rate());
    if let Some(alias) = &result.alias {
        obj = obj.raw(
            "alias",
            &Object::new()
                .u64("accesses", alias.accesses)
                .u64("conflicts", alias.conflicts)
                .u64("harmless_conflicts", alias.harmless_conflicts)
                .build(),
        );
    }
    if let Some(bht) = &result.bht {
        obj = obj.raw(
            "bht",
            &Object::new()
                .u64("accesses", bht.accesses)
                .u64("misses", bht.misses)
                .build(),
        );
    }
    obj.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gshare_configs() -> String {
        "configs=gshare:h=6,c=2;gas:h=6,c=2".to_owned()
    }

    #[test]
    fn parse_accepts_the_documented_form() {
        let q = format!(
            "workload=espresso&seed=7&branches=5000&warmup=100&{}",
            gshare_configs()
        );
        let r = SweepRequest::parse(&q).unwrap();
        assert_eq!(r.workload, "espresso");
        assert_eq!(r.seed, 7);
        assert_eq!(r.branches, Some(5000));
        assert_eq!(r.warmup, 100);
        assert_eq!(r.configs.len(), 2);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(SweepRequest::parse("configs=gshare:h=6").is_err()); // no workload
        assert!(SweepRequest::parse("workload=espresso").is_err()); // no configs
        assert!(SweepRequest::parse("workload=e&configs=nonsense~").is_err());
        assert!(SweepRequest::parse("workload=e&configs=gshare:h=6&seed=x").is_err());
        assert!(SweepRequest::parse("workload=e&configs=gshare:h=6&branches=0").is_err());
        assert!(SweepRequest::parse("workload=e&configs=gshare:h=6&bogus=1").is_err());
    }

    #[test]
    fn execute_answers_in_config_order() {
        let service = SweepService::new(None, Arc::new(Metrics::new()), 1_000_000);
        let request = SweepRequest::parse(&format!(
            "workload=espresso&branches=3000&{}",
            gshare_configs()
        ))
        .unwrap();
        let (body, provenance) = service.execute(&request).unwrap();
        assert!(body.contains("\"config\":\"gshare:h=6,c=2\""));
        assert!(body.contains("\"config\":\"gas:h=6,c=2\""));
        let gshare_at = body.find("gshare:h=6,c=2").unwrap();
        let gas_at = body.find("\"gas:h=6,c=2\"").unwrap();
        assert!(gshare_at < gas_at, "cells follow request order");
        assert_eq!(provenance.misses, 2);
        assert_eq!(provenance.hits, 0);
    }

    #[test]
    fn execute_is_deterministic_without_a_store() {
        let service = SweepService::new(None, Arc::new(Metrics::new()), 1_000_000);
        let request =
            SweepRequest::parse("workload=eqntott&branches=2000&configs=gshare:h=5,c=3").unwrap();
        let (a, _) = service.execute(&request).unwrap();
        let (b, _) = service.execute(&request).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn execute_rejects_unknown_workload_and_oversize() {
        let service = SweepService::new(None, Arc::new(Metrics::new()), 10_000);
        let bad = SweepRequest::parse("workload=nope&configs=gshare:h=5").unwrap();
        assert!(service.execute(&bad).is_err());
        let big =
            SweepRequest::parse("workload=espresso&branches=20000&configs=gshare:h=5").unwrap();
        assert!(service.execute(&big).is_err());
    }
}
