//! Readiness polling for the event-driven server — self-contained,
//! no dependencies.
//!
//! The workspace is vendor-free, so instead of pulling in `mio` or
//! `libc` this module binds `poll(2)` directly: `std` already links
//! the platform C library, and the binding is a single extern
//! declaration plus a `#[repr(C)]` pollfd mirror, isolated in the
//! one `#[allow(unsafe_code)]` module of the crate. Each server
//! shard polls its listener, its wake socket, and its connections in
//! one call, with a timeout bounded by the nearest connection
//! deadline.
//!
//! Cross-thread wakeups use a loopback UDP pair ([`WakeChannel`]):
//! the compute pool finishes a request, pushes the response into the
//! shard's mailbox, and [`Waker::wake`]s the shard out of `poll` by
//! sending one datagram. UDP on loopback never blocks the sender,
//! and a dropped datagram can only happen when the receive buffer
//! already holds a wakeup — the shard is waking either way.

use std::io;
use std::net::UdpSocket;
use std::os::fd::RawFd;
use std::time::Duration;

#[allow(unsafe_code)]
mod sys {
    //! The `poll(2)` binding. `nfds_t` is `c_ulong` on every libc
    //! this workspace targets.
    use std::ffi::{c_int, c_ulong};

    /// Mirror of `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Safe wrapper: polls `fds` for up to `timeout_ms` (-1 blocks).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs for the duration of the call;
        // poll(2) only reads `fd`/`events` and writes `revents`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// What a poll entry wants to be woken for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or has a pending accept).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

/// What a poll entry was woken with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Readable (includes a peer close — the read reports EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup/invalid — the owner should tear the fd down if a
    /// read or write does not already surface the failure.
    pub failed: bool,
}

/// One pollable entry: the fd, what it wants, and (after
/// [`poll`]) what it got.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// The raw fd to poll. The caller keeps it open for the call.
    pub fd: RawFd,
    /// Requested wakeup conditions.
    pub interest: Interest,
    /// Delivered wakeup conditions; cleared on entry to [`poll`].
    pub readiness: Readiness,
}

impl Entry {
    /// An entry with the given interest and no readiness yet.
    pub fn new(fd: RawFd, interest: Interest) -> Entry {
        Entry {
            fd,
            interest,
            readiness: Readiness::default(),
        }
    }
}

/// Polls every entry once, waiting at most `timeout`. Returns the
/// number of ready entries; `Ok(0)` on timeout or signal
/// interruption (the caller's loop re-enters either way).
pub fn poll(entries: &mut [Entry], timeout: Duration) -> io::Result<usize> {
    let mut fds: Vec<sys::PollFd> = entries
        .iter()
        .map(|e| sys::PollFd {
            fd: e.fd,
            events: (if e.interest.readable { sys::POLLIN } else { 0 })
                | (if e.interest.writable { sys::POLLOUT } else { 0 }),
            revents: 0,
        })
        .collect();
    let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    let ready = match sys::poll_fds(&mut fds, timeout_ms) {
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
        Err(e) => return Err(e),
    };
    for (entry, fd) in entries.iter_mut().zip(&fds) {
        entry.readiness = Readiness {
            readable: fd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
            writable: fd.revents & sys::POLLOUT != 0,
            failed: fd.revents & (sys::POLLERR | sys::POLLNVAL | sys::POLLHUP) != 0,
        };
    }
    Ok(ready)
}

/// The receiving half of a shard's wakeup channel; its fd joins the
/// shard's poll set with read interest.
#[derive(Debug)]
pub struct WakeChannel {
    rx: UdpSocket,
}

/// The sending half: any thread can [`wake`](Waker::wake) the owning
/// shard out of `poll`.
#[derive(Debug)]
pub struct Waker {
    tx: UdpSocket,
}

impl WakeChannel {
    /// Builds a connected loopback wake pair.
    pub fn new() -> io::Result<(Waker, WakeChannel)> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        Ok((Waker { tx }, WakeChannel { rx }))
    }

    /// The fd to include in the poll set.
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Discards every pending wakeup datagram.
    pub fn drain(&self) {
        let mut scratch = [0u8; 64];
        while self.rx.recv(&mut scratch).is_ok() {}
    }
}

impl Waker {
    /// Wakes the owning shard; best-effort and never blocking.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_with_no_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut entries = [Entry::new(listener.as_raw_fd(), Interest::READ)];
        let n = poll(&mut entries, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        assert!(!entries[0].readiness.readable);
    }

    #[test]
    fn poll_sees_pending_accept_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();

        let mut entries = [Entry::new(listener.as_raw_fd(), Interest::READ)];
        let n = poll(&mut entries, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readiness.readable, "pending accept is readable");

        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut entries = [
            Entry::new(server_side.as_raw_fd(), Interest::READ),
            Entry::new(client.as_raw_fd(), Interest::WRITE),
        ];
        let n = poll(&mut entries, Duration::from_millis(1000)).unwrap();
        assert!(n >= 1);
        assert!(entries[0].readiness.readable, "byte pending");
        assert!(entries[1].readiness.writable, "idle socket writable");
    }

    #[test]
    fn waker_wakes_the_channel() {
        let (waker, channel) = WakeChannel::new().unwrap();
        waker.wake();
        let mut entries = [Entry::new(channel.fd(), Interest::READ)];
        let n = poll(&mut entries, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readiness.readable);
        channel.drain();
        let n = poll(&mut entries, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0, "drained channel is quiet");
    }
}
