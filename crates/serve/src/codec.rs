//! Binary codec for stored results.
//!
//! Layout (all little-endian), in the spirit of the trace format
//! ([`bpred_trace::binfmt`]):
//!
//! ```text
//! magic    : 4 bytes  b"BPRR"
//! version  : u16      currently 1
//! reserved : u16      zero
//! key      : varint length + UTF-8 canonical cell key
//! predictor: varint length + UTF-8 label
//! state    : varint   state_bits
//! cond     : varint   conditionals
//! mispred  : varint   mispredictions
//! flags    : u8       bit 0 = alias stats present, bit 1 = BHT stats
//! [alias]  : 3 varints (accesses, conflicts, harmless_conflicts)
//! [bht]    : 2 varints (accesses, misses)
//! checksum : u64      FNV-1a of everything before it
//! ```
//!
//! The canonical cell key is embedded verbatim so a load can confirm
//! the object answers the question being asked — a digest collision
//! (or a hand-renamed file) yields [`CodecError::KeyMismatch`]
//! instead of silently wrong numbers. The checksum trailer catches
//! truncation and bit rot; any mismatch is a [`CodecError`], and the
//! store treats every codec error as "not cached".

use std::fmt;

use bpred_core::{AliasStats, BhtStats};
use bpred_sim::SimResult;
use bpred_trace::fnv;

const MAGIC: &[u8; 4] = b"BPRR";
const VERSION: u16 = 1;

const FLAG_ALIAS: u8 = 1;
const FLAG_BHT: u8 = 1 << 1;

/// Error decoding a stored result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The object does not start with the `BPRR` magic.
    BadMagic,
    /// The object's format version is not understood.
    BadVersion(u16),
    /// The object ended early or a varint/string was malformed.
    Truncated,
    /// The checksum trailer does not match the payload.
    BadChecksum,
    /// The object decodes cleanly but answers a different cell.
    KeyMismatch {
        /// The canonical key embedded in the object.
        stored: String,
    },
    /// Trailing bytes follow the checksum.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a result object (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported result format version {v}"),
            CodecError::Truncated => write!(f, "truncated or malformed result object"),
            CodecError::BadChecksum => write!(f, "result object checksum mismatch"),
            CodecError::KeyMismatch { stored } => {
                write!(f, "result object answers a different cell: {stored:?}")
            }
            CodecError::TrailingBytes => write!(f, "trailing bytes after result object"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    let (&byte, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
    *buf = rest;
    Ok(byte)
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if shift >= 64 {
            return Err(CodecError::Truncated);
        }
        let byte = get_u8(buf)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = usize::try_from(get_varint(buf)?).map_err(|_| CodecError::Truncated)?;
    if buf.len() < len {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(head.to_vec()).map_err(|_| CodecError::Truncated)
}

/// Encodes `result` as the object stored for the cell with canonical
/// key `canonical_key`.
pub fn encode(canonical_key: &str, result: &SimResult) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + canonical_key.len() + result.predictor.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    put_string(&mut buf, canonical_key);
    put_string(&mut buf, &result.predictor);
    put_varint(&mut buf, result.state_bits);
    put_varint(&mut buf, result.conditionals);
    put_varint(&mut buf, result.mispredictions);
    let mut flags = 0u8;
    if result.alias.is_some() {
        flags |= FLAG_ALIAS;
    }
    if result.bht.is_some() {
        flags |= FLAG_BHT;
    }
    buf.push(flags);
    if let Some(alias) = &result.alias {
        put_varint(&mut buf, alias.accesses);
        put_varint(&mut buf, alias.conflicts);
        put_varint(&mut buf, alias.harmless_conflicts);
    }
    if let Some(bht) = &result.bht {
        put_varint(&mut buf, bht.accesses);
        put_varint(&mut buf, bht.misses);
    }
    let checksum = fnv::fnv64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes a stored object, verifying the checksum and that its
/// embedded canonical key equals `expect_key`.
pub fn decode(bytes: &[u8], expect_key: &str) -> Result<SimResult, CodecError> {
    let (stored_key, result) = decode_verified(bytes)?;
    if stored_key != expect_key {
        return Err(CodecError::KeyMismatch { stored: stored_key });
    }
    Ok(result)
}

/// Decodes a stored object, verifying the checksum and structure but
/// accepting whatever canonical key it embeds — the key is returned
/// alongside the result so the caller can judge identity itself.
///
/// This is how a peer-pushed object is validated: the store checks
/// that the digest of the returned key matches the content address
/// the object claims to answer, without knowing the key in advance.
pub fn decode_verified(bytes: &[u8]) -> Result<(String, SimResult), CodecError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CodecError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(trailer.try_into().expect("trailer is eight bytes"));
    if fnv::fnv64(payload) != checksum {
        return Err(CodecError::BadChecksum);
    }

    let mut buf = payload;
    let magic = &buf[..MAGIC.len()];
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf = &buf[MAGIC.len()..];
    let version = u16::from_le_bytes([get_u8(&mut buf)?, get_u8(&mut buf)?]);
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let _reserved = [get_u8(&mut buf)?, get_u8(&mut buf)?];

    let stored_key = get_string(&mut buf)?;
    let predictor = get_string(&mut buf)?;
    let state_bits = get_varint(&mut buf)?;
    let conditionals = get_varint(&mut buf)?;
    let mispredictions = get_varint(&mut buf)?;
    let flags = get_u8(&mut buf)?;
    let alias = if flags & FLAG_ALIAS != 0 {
        Some(AliasStats {
            accesses: get_varint(&mut buf)?,
            conflicts: get_varint(&mut buf)?,
            harmless_conflicts: get_varint(&mut buf)?,
        })
    } else {
        None
    };
    let bht = if flags & FLAG_BHT != 0 {
        Some(BhtStats {
            accesses: get_varint(&mut buf)?,
            misses: get_varint(&mut buf)?,
        })
    } else {
        None
    };
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok((
        stored_key,
        SimResult {
            predictor,
            state_bits,
            conditionals,
            mispredictions,
            alias,
            bht,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            predictor: "gshare(2^10)".to_owned(),
            state_bits: 2048,
            conditionals: 1_000_000,
            mispredictions: 123_456,
            alias: Some(AliasStats {
                accesses: 1_000_000,
                conflicts: 5_000,
                harmless_conflicts: 1_200,
            }),
            bht: Some(BhtStats {
                accesses: 1_000_000,
                misses: 31,
            }),
        }
    }

    #[test]
    fn round_trips_with_and_without_stats() {
        let key = "cell-v2|workload:x@0/s1/n10/j0|gshare:h=8,c=2|w0";
        for (alias, bht) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut r = sample();
            if !alias {
                r.alias = None;
            }
            if !bht {
                r.bht = None;
            }
            let bytes = encode(key, &r);
            assert_eq!(decode(&bytes, key).unwrap(), r);
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let key = "cell-v2|s|gshare:h=2,c=0|w0";
        let bytes = encode(key, &sample());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len], key).is_err(), "length {len} passed");
        }
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let key = "cell-v2|s|gshare:h=2,c=0|w0";
        let bytes = encode(key, &sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad, key).is_err(), "flip at {i} passed");
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let bytes = encode("cell-v2|a|gshare:h=2,c=0|w0", &sample());
        match decode(&bytes, "cell-v2|b|gshare:h=2,c=0|w0") {
            Err(CodecError::KeyMismatch { stored }) => {
                assert_eq!(stored, "cell-v2|a|gshare:h=2,c=0|w0");
            }
            other => panic!("expected key mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let key = "cell-v2|s|gshare:h=2,c=0|w0";
        let mut bytes = encode(key, &sample());
        // Valid payload + garbage + a recomputed "checksum" still fails
        // because the embedded trailer no longer lines up.
        bytes.push(0);
        assert!(decode(&bytes, key).is_err());
    }
}
