//! Minimal HTTP/1.1 plumbing for the event-driven server.
//!
//! The parser is **incremental**: [`parse_request`] looks at whatever
//! bytes have arrived so far and reports [`Parsed::Incomplete`] until
//! a full request (head plus declared body) is buffered, so the
//! reactor can feed it from nonblocking reads split at arbitrary
//! boundaries. It implements exactly the subset the service speaks —
//! request line, headers (with obs-fold continuation lines),
//! `Content-Length` bodies — and rejects everything else with a
//! typed error that maps onto a status code: `400` for malformed
//! syntax, `431` when the head exceeds [`MAX_HEAD_BYTES`], `413` when
//! the declared body exceeds [`MAX_BODY_BYTES`]. `Transfer-Encoding`
//! is refused outright (no chunked bodies, no smuggling ambiguity).
//!
//! Responses are built as byte vectors by [`response`]; every
//! response carries `Content-Length` and an explicit `Connection:
//! keep-alive`/`close`, so clients can reuse connections and
//! pipeline requests while the framing stays unambiguous.

use std::fmt;

/// Maximum accepted size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, percent-decoded *not* applied.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this
    /// one: HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection: close`/`keep-alive` header overrides either way.
    pub keep_alive: bool,
}

/// Why a buffered request could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The request violates the subset of HTTP this server speaks.
    Malformed(&'static str),
    /// The request line plus headers exceed [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl ParseError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Outcome of examining the buffered bytes of a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// No full request is buffered yet; read more bytes and retry.
    Incomplete,
    /// One full request, consuming the given prefix of the buffer
    /// (any remainder is the start of the next pipelined request).
    Request(Request, usize),
    /// The buffered bytes can never become a valid request.
    Error(ParseError),
}

/// Locates the head terminator (blank line): returns
/// `(head_len, body_start)` where `head_len` includes the final
/// newline of the last header line.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        match buf.get(i + 1) {
            Some(b'\n') => return Some((i + 1, i + 2)),
            Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some((i + 1, i + 3)),
            _ => {}
        }
    }
    None
}

/// Attempts to parse one request from the front of `buf`.
///
/// Incremental: call again with more bytes appended after
/// [`Parsed::Incomplete`]. Never panics on arbitrary input — any
/// byte sequence either eventually parses, stays incomplete, or
/// yields a [`ParseError`].
pub fn parse_request(buf: &[u8]) -> Parsed {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD_BYTES {
            Parsed::Error(ParseError::HeadTooLarge)
        } else {
            Parsed::Incomplete
        };
    };
    if head_len > MAX_HEAD_BYTES {
        return Parsed::Error(ParseError::HeadTooLarge);
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return Parsed::Error(ParseError::Malformed("head is not UTF-8"));
    };

    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parsed::Error(ParseError::Malformed("request line"));
    };
    if method.is_empty() || target.is_empty() || parts.next().is_some() {
        return Parsed::Error(ParseError::Malformed("request line"));
    }
    if !version.starts_with("HTTP/1.") || version.len() <= "HTTP/1.".len() {
        return Parsed::Error(ParseError::Malformed("http version"));
    }
    let mut keep_alive = version != "HTTP/1.0";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    // Unfold headers: a line starting with SP/HT continues the
    // previous header's value (obs-fold).
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            let Some(last) = headers.last_mut() else {
                return Parsed::Error(ParseError::Malformed("folded header without a predecessor"));
            };
            last.1.push(' ');
            last.1.push_str(line.trim_matches([' ', '\t']));
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Error(ParseError::Malformed("header without colon"));
        };
        if name.is_empty() || name.contains([' ', '\t']) {
            return Parsed::Error(ParseError::Malformed("header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut content_length = 0usize;
    let mut saw_length = false;
    for (name, value) in &headers {
        match name.as_str() {
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return Parsed::Error(ParseError::Malformed("content-length"));
                };
                if saw_length && n != content_length {
                    return Parsed::Error(ParseError::Malformed("conflicting content-length"));
                }
                saw_length = true;
                content_length = n;
            }
            "transfer-encoding" => {
                return Parsed::Error(ParseError::Malformed("transfer-encoding is not supported"));
            }
            "connection" => {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parsed::Error(ParseError::BodyTooLarge);
    }

    let need = body_start + content_length;
    if buf.len() < need {
        return Parsed::Incomplete;
    }
    Parsed::Request(
        Request {
            method: method.to_owned(),
            path,
            query,
            body: buf[body_start..need].to_vec(),
            keep_alive,
        },
        need,
    )
}

/// The standard reason phrase for the statuses this server sends.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Response",
    }
}

/// Builds one response with the mandatory framing headers and an
/// explicit `Connection:` disposition, plus any `extra_headers`
/// (each a full `Name: value` line without CRLF).
pub fn response(
    status: u16,
    content_type: &str,
    extra_headers: &[String],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// A plain-text error response for a request that failed to parse.
pub fn error_response(error: ParseError, keep_alive: bool) -> Vec<u8> {
    response(
        error.status(),
        "text/plain; charset=utf-8",
        &[],
        format!("{error}\n").as_bytes(),
        keep_alive,
    )
}

/// Splits a query string into decoded `(key, value)` pairs, in
/// order. Pairs without `=` decode to an empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decodes a URL component; `+` decodes to a space. Invalid
/// escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(bytes: &[u8]) -> Request {
        match parse_request(bytes) {
            Parsed::Request(r, consumed) => {
                assert_eq!(consumed, bytes.len(), "consumes exactly the request");
                r
            }
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    fn error(bytes: &[u8]) -> ParseError {
        match parse_request(bytes) {
            Parsed::Error(e) => e,
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let r = complete(b"GET /sweep?workload=espresso&n=5 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/sweep");
        assert_eq!(r.query, "workload=espresso&n=5");
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = complete(b"POST /sweep HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn connection_and_version_drive_keep_alive() {
        let r = complete(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = complete(b"GET /x HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = complete(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(r.keep_alive);
    }

    #[test]
    fn incremental_feeding_reports_incomplete_until_done() {
        let full = b"POST /sweep HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() {
            assert_eq!(
                parse_request(&full[..cut]),
                Parsed::Incomplete,
                "prefix of {cut} bytes"
            );
        }
        let r = complete(full);
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn pipelined_requests_consume_only_the_first() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Parsed::Request(r, consumed) = parse_request(two) else {
            panic!("first request parses");
        };
        assert_eq!(r.path, "/a");
        let Parsed::Request(r2, consumed2) = parse_request(&two[consumed..]) else {
            panic!("second request parses");
        };
        assert_eq!(r2.path, "/b");
        assert_eq!(consumed + consumed2, two.len());
    }

    #[test]
    fn folded_headers_join() {
        let r =
            complete(b"GET /x HTTP/1.1\r\nX-Long: part one\r\n  part two\r\n\tpart three\r\n\r\n");
        assert_eq!(r.path, "/x");
        // Folding only affects ignored headers; a folded Connection
        // continuation still applies once joined.
        let r = complete(b"GET /x HTTP/1.1\r\nConnection: keep-alive,\r\n close\r\n\r\n");
        assert!(!r.keep_alive, "folded close token honoured");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(error(b"NOT HTTP\r\n\r\n").status(), 400);
        assert_eq!(error(b"GET /x HTTP/2\r\n\r\n").status(), 400);
        assert_eq!(error(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n").status(), 400);
        assert_eq!(
            error(b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n").status(),
            400
        );
        assert_eq!(
            error(b"GET /x HTTP/1.1\r\n folded: first\r\n\r\n").status(),
            400
        );
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").status(),
            400
        );
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n").status(),
            400
        );
    }

    #[test]
    fn oversized_head_is_431() {
        // No terminator within the cap: a slowloris header flood.
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1));
        assert_eq!(error(&huge), ParseError::HeadTooLarge);
        // Terminated but past the cap.
        let mut fat = b"GET /x HTTP/1.1\r\n".to_vec();
        while fat.len() <= MAX_HEAD_BYTES {
            fat.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        fat.extend_from_slice(b"\r\n");
        assert_eq!(error(&fat), ParseError::HeadTooLarge);
    }

    #[test]
    fn oversized_body_declaration_is_413() {
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(error(huge.as_bytes()), ParseError::BodyTooLarge);
    }

    #[test]
    fn response_frames_correctly() {
        let out = response(200, "text/plain", &[], b"hi", false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));

        let out = response(429, "text/plain", &["Retry-After: 1".to_owned()], b"", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn query_decoding() {
        let pairs = parse_query("a=1&b=x%20y&flag&c=1%2B2+3");
        assert_eq!(
            pairs,
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "x y".to_owned()),
                ("flag".to_owned(), String::new()),
                ("c".to_owned(), "1+2 3".to_owned()),
            ]
        );
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
