//! Minimal HTTP/1.1 plumbing over blocking streams.
//!
//! Implements exactly what the service needs: parse one request
//! (request line, headers, optional `Content-Length` body) from a
//! stream, send one response, close. `Connection: close` on every
//! response keeps the state machine trivial — clients that want
//! throughput open parallel connections, which the worker pool
//! serves concurrently. Header and body sizes are capped so a
//! misbehaving client cannot balloon memory.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Maximum accepted size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, percent-decoded *not* applied.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure.
    Io(io::Error),
    /// The request violates the subset of HTTP this server speaks.
    Malformed(&'static str),
    /// Headers or body exceed the configured caps.
    TooLarge,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "i/o error reading request: {e}"),
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            RequestError::TooLarge => write!(f, "request too large"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream`.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let mut line = String::new();
    reader.read_line(&mut line)?;
    head_bytes += line.len();
    let request_line = line.trim_end_matches(['\r', '\n']);
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed("request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("request line"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(RequestError::Malformed("headers ended early"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Malformed("header without colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed("content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(RequestError::TooLarge);
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        body,
    })
}

/// Writes one response with the mandatory framing headers and
/// `Connection: close`, plus any `extra_headers` (each a full
/// `Name: value` line without CRLF).
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[String],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Splits a query string into decoded `(key, value)` pairs, in
/// order. Pairs without `=` decode to an empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decodes a URL component; `+` decodes to a space. Invalid
/// escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(b"GET /sweep?workload=espresso&n=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/sweep");
        assert_eq!(r.query, "workload=espresso&n=5");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /sweep HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"NOT HTTP\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/2\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(RequestError::TooLarge)
        ));
    }

    #[test]
    fn respond_frames_correctly() {
        let mut out = Vec::new();
        respond(&mut out, 200, "OK", "text/plain", &[], b"hi").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn query_decoding() {
        let pairs = parse_query("a=1&b=x%20y&flag&c=1%2B2+3");
        assert_eq!(
            pairs,
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "x y".to_owned()),
                ("flag".to_owned(), String::new()),
                ("c".to_owned(), "1+2 3".to_owned()),
            ]
        );
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
