//! Service metrics with Prometheus text exposition.
//!
//! Plain atomics — no instrumentation framework. Counters are
//! monotonic `u64`s; the one gauge tracks batches currently inside
//! the simulation engine; batch latency lands in a fixed-bound
//! histogram. [`Metrics::render_prometheus`] emits the standard text
//! format for `GET /metrics`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::store::StoreStats;

/// Upper bounds (seconds) of the batch-latency histogram buckets; a
/// `+Inf` bucket is implicit.
pub const LATENCY_BOUNDS: [f64; 5] = [0.001, 0.01, 0.1, 1.0, 10.0];

/// A histogram of batch latencies with fixed bounds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let secs = latency.as_secs_f64();
        let idx = LATENCY_BOUNDS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(LATENCY_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Statuses that get their own `bpred_serve_requests_total{status=…}`
/// series; anything else lands in the `"other"` bucket.
pub const TRACKED_STATUSES: [u16; 7] = [200, 400, 404, 413, 429, 431, 500];

/// All counters the service exports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests accepted (any route).
    pub http_requests: AtomicU64,
    /// Responses sent, by status (indexed like [`TRACKED_STATUSES`],
    /// final slot = other).
    pub requests_by_status: [AtomicU64; TRACKED_STATUSES.len() + 1],
    /// Connections currently open across all shards (gauge).
    pub connections_open: AtomicU64,
    /// Sweep requests refused with 429 because the compute queue was
    /// full.
    pub shed_total: AtomicU64,
    /// Sweep requests sitting in (or being pulled from) the compute
    /// queue (gauge).
    pub queue_depth: AtomicU64,
    /// Sweep requests parsed successfully.
    pub sweep_requests: AtomicU64,
    /// Requests rejected with a 4xx.
    pub bad_requests: AtomicU64,
    /// Sweep cells requested (one per config per request).
    pub cells: AtomicU64,
    /// Cells answered from the result store.
    pub cache_hits: AtomicU64,
    /// Cells that had to be simulated.
    pub cache_misses: AtomicU64,
    /// Cells answered by waiting on another request's in-flight batch.
    pub coalesced_waits: AtomicU64,
    /// Batches submitted to the simulation engine.
    pub batches: AtomicU64,
    /// Batches currently inside the engine (gauge).
    pub inflight_batches: AtomicU64,
    /// Batch wall-clock latency.
    pub batch_latency: Histogram,
    /// Per-tier store counters, attached when the server opens its
    /// result store; the store series render as zeros until then.
    store: OnceLock<Arc<StoreStats>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Shares the result store's per-tier counters with this
    /// exposition (idempotent; the first attachment wins).
    pub fn attach_store(&self, stats: Arc<StoreStats>) {
        let _ = self.store.set(stats);
    }

    /// Counts one response by its status code.
    pub fn observe_status(&self, status: u16) {
        let idx = TRACKED_STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(TRACKED_STATUSES.len());
        self.requests_by_status[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one status counter (tests and sanity checks).
    pub fn status_count(&self, status: u16) -> u64 {
        let idx = TRACKED_STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(TRACKED_STATUSES.len());
        self.requests_by_status[idx].load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counters: [(&str, &str, &AtomicU64); 8] = [
            (
                "bpred_http_requests_total",
                "HTTP requests accepted",
                &self.http_requests,
            ),
            (
                "bpred_sweep_requests_total",
                "Sweep requests parsed successfully",
                &self.sweep_requests,
            ),
            (
                "bpred_bad_requests_total",
                "Requests rejected with a client error",
                &self.bad_requests,
            ),
            ("bpred_cells_total", "Sweep cells requested", &self.cells),
            (
                "bpred_cache_hits_total",
                "Cells answered from the result store",
                &self.cache_hits,
            ),
            (
                "bpred_cache_misses_total",
                "Cells that had to be simulated",
                &self.cache_misses,
            ),
            (
                "bpred_coalesced_waits_total",
                "Cells answered by waiting on another request's batch",
                &self.coalesced_waits,
            ),
            (
                "bpred_batches_total",
                "Batches submitted to the simulation engine",
                &self.batches,
            ),
        ];
        for (name, help, counter) in counters {
            let value = counter.load(Ordering::Relaxed);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }

        let _ = writeln!(
            out,
            "# HELP bpred_serve_requests_total Responses sent, by HTTP status"
        );
        let _ = writeln!(out, "# TYPE bpred_serve_requests_total counter");
        for (i, status) in TRACKED_STATUSES.iter().enumerate() {
            let value = self.requests_by_status[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "bpred_serve_requests_total{{status=\"{status}\"}} {value}"
            );
        }
        let other = self.requests_by_status[TRACKED_STATUSES.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "bpred_serve_requests_total{{status=\"other\"}} {other}"
        );

        let _ = writeln!(
            out,
            "# HELP bpred_serve_shed_total Sweep requests refused with 429 (compute queue full)"
        );
        let _ = writeln!(out, "# TYPE bpred_serve_shed_total counter");
        let _ = writeln!(
            out,
            "bpred_serve_shed_total {}",
            self.shed_total.load(Ordering::Relaxed)
        );

        let _ = writeln!(
            out,
            "# HELP bpred_serve_connections_open Connections currently open across all shards"
        );
        let _ = writeln!(out, "# TYPE bpred_serve_connections_open gauge");
        let _ = writeln!(
            out,
            "bpred_serve_connections_open {}",
            self.connections_open.load(Ordering::Relaxed)
        );

        let _ = writeln!(
            out,
            "# HELP bpred_serve_queue_depth Sweep requests waiting in the compute queue"
        );
        let _ = writeln!(out, "# TYPE bpred_serve_queue_depth gauge");
        let _ = writeln!(
            out,
            "bpred_serve_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed)
        );

        // Tiered result store: per-tier hit counters plus the
        // segment-count and hot-tier-size gauges. Rendered (as
        // zeros) even before a store is attached so the exposition
        // schema is stable.
        let store = self.store.get();
        let tier =
            |f: fn(&StoreStats) -> &AtomicU64| store.map_or(0, |s| f(s).load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "# HELP bpred_store_hits_total Cells answered, by store tier"
        );
        let _ = writeln!(out, "# TYPE bpred_store_hits_total counter");
        let _ = writeln!(
            out,
            "bpred_store_hits_total{{tier=\"hot\"}} {}",
            tier(|s| &s.hot_hits)
        );
        let _ = writeln!(
            out,
            "bpred_store_hits_total{{tier=\"pack\"}} {}",
            tier(|s| &s.pack_hits)
        );
        let _ = writeln!(
            out,
            "bpred_store_hits_total{{tier=\"peer\"}} {}",
            tier(|s| &s.peer_hits)
        );
        let _ = writeln!(out, "# HELP bpred_store_segments Pack segments on disk");
        let _ = writeln!(out, "# TYPE bpred_store_segments gauge");
        let _ = writeln!(out, "bpred_store_segments {}", tier(|s| &s.segments));
        let _ = writeln!(out, "# HELP bpred_store_hot_bytes Hot-tier resident bytes");
        let _ = writeln!(out, "# TYPE bpred_store_hot_bytes gauge");
        let _ = writeln!(out, "bpred_store_hot_bytes {}", tier(|s| &s.hot_bytes));

        // Engine-side counter: lane-records replayed through the
        // chunked sweep pipeline, process-wide (so it covers every
        // batch this service has run).
        let replayed = bpred_sim::records_replayed_total();
        let _ = writeln!(
            out,
            "# HELP bpred_records_replayed_total Lane-records replayed through the chunked sweep pipeline"
        );
        let _ = writeln!(out, "# TYPE bpred_records_replayed_total counter");
        let _ = writeln!(out, "bpred_records_replayed_total {replayed}");

        // Predict+update throughput of the most recent sweep, labelled
        // with the dispatch tier the engine would use for groupable
        // lanes (scalar / swar / simd). 0 until the first sweep runs.
        let pairs = bpred_sim::replay_pairs_per_sec();
        let tier = bpred_sim::dispatch_tier();
        let _ = writeln!(
            out,
            "# HELP bpred_replay_pairs_per_sec Predict+update pairs per second of the most recent chunked sweep"
        );
        let _ = writeln!(out, "# TYPE bpred_replay_pairs_per_sec gauge");
        let _ = writeln!(out, "bpred_replay_pairs_per_sec{{tier=\"{tier}\"}} {pairs}");

        // Lanes of the most recent sweep that fell back to the scalar
        // replay tier — non-zero means a sweep is silently running
        // ~7x slower than the grouped kernels it should be on.
        let scalar_lanes = bpred_sim::replay_scalar_lanes();
        let _ = writeln!(
            out,
            "# HELP bpred_replay_scalar_lanes Lanes of the most recent chunked sweep on the scalar fallback tier"
        );
        let _ = writeln!(out, "# TYPE bpred_replay_scalar_lanes gauge");
        let _ = writeln!(out, "bpred_replay_scalar_lanes {scalar_lanes}");

        // Per-plan-family lane census of the most recent sweep, so the
        // plan families a sweep actually dispatched to (and any lanes
        // left on the scalar tier) are visible per label.
        let group_lanes = bpred_sim::replay_group_lanes();
        let _ = writeln!(
            out,
            "# HELP bpred_replay_group_lanes Lanes of the most recent chunked sweep per plan family"
        );
        let _ = writeln!(out, "# TYPE bpred_replay_group_lanes gauge");
        for (label, lanes) in bpred_sim::LANE_TIER_LABELS.iter().zip(group_lanes) {
            let _ = writeln!(out, "bpred_replay_group_lanes{{plan=\"{label}\"}} {lanes}");
        }

        let inflight = self.inflight_batches.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "# HELP bpred_inflight_batches Batches currently inside the engine"
        );
        let _ = writeln!(out, "# TYPE bpred_inflight_batches gauge");
        let _ = writeln!(out, "bpred_inflight_batches {inflight}");

        let _ = writeln!(
            out,
            "# HELP bpred_batch_seconds Wall-clock latency of engine batches"
        );
        let _ = writeln!(out, "# TYPE bpred_batch_seconds histogram");
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BOUNDS.iter().enumerate() {
            cumulative += self.batch_latency.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "bpred_batch_seconds_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.batch_latency.buckets[LATENCY_BOUNDS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "bpred_batch_seconds_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let sum = self.batch_latency.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "bpred_batch_seconds_sum {sum}");
        let _ = writeln!(
            out,
            "bpred_batch_seconds_count {}",
            self.batch_latency.count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_series() {
        let m = Metrics::new();
        Metrics::inc(&m.http_requests);
        Metrics::add(&m.cache_hits, 5);
        m.batch_latency.observe(Duration::from_millis(3));
        m.batch_latency.observe(Duration::from_millis(300));
        let text = m.render_prometheus();
        assert!(text.contains("bpred_http_requests_total 1"));
        assert!(text.contains("bpred_cache_hits_total 5"));
        assert!(text.contains("bpred_cache_misses_total 0"));
        assert!(text.contains("bpred_inflight_batches 0"));
        assert!(text.contains("bpred_batch_seconds_count 2"));
        // 3ms falls in le=0.01; 300ms in le=1; cumulative buckets.
        assert!(text.contains("bpred_batch_seconds_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("bpred_batch_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("bpred_batch_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE bpred_records_replayed_total counter"));
    }

    #[test]
    fn serve_series_track_statuses_and_gauges() {
        let m = Metrics::new();
        m.observe_status(200);
        m.observe_status(200);
        m.observe_status(429);
        m.observe_status(431);
        m.observe_status(418); // falls into the "other" bucket
        Metrics::inc(&m.shed_total);
        m.connections_open.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.fetch_add(2, Ordering::Relaxed);
        assert_eq!(m.status_count(200), 2);
        assert_eq!(m.status_count(429), 1);
        assert_eq!(m.status_count(418), 1);
        let text = m.render_prometheus();
        assert!(text.contains("bpred_serve_requests_total{status=\"200\"} 2"));
        assert!(text.contains("bpred_serve_requests_total{status=\"429\"} 1"));
        assert!(text.contains("bpred_serve_requests_total{status=\"431\"} 1"));
        assert!(text.contains("bpred_serve_requests_total{status=\"413\"} 0"));
        assert!(text.contains("bpred_serve_requests_total{status=\"other\"} 1"));
        assert!(text.contains("bpred_serve_shed_total 1"));
        assert!(text.contains("bpred_serve_connections_open 3"));
        assert!(text.contains("bpred_serve_queue_depth 2"));
    }

    #[test]
    fn replayed_records_series_tracks_the_engine_counter() {
        use bpred_core::PredictorConfig;
        use bpred_sim::{run_batched_default, Simulator};
        use bpred_trace::{BranchRecord, Outcome, Trace};

        let m = Metrics::new();
        let trace: Trace = (0..200)
            .map(|i| BranchRecord::conditional(0x40 + 4 * (i % 8), 0x20, Outcome::from(i % 3 == 0)))
            .collect();
        let before = bpred_sim::records_replayed_total();
        run_batched_default(&[PredictorConfig::AlwaysTaken], &trace, Simulator::new());
        assert!(bpred_sim::records_replayed_total() >= before + 200);
        let value: u64 = m
            .render_prometheus()
            .lines()
            .find_map(|l| l.strip_prefix("bpred_records_replayed_total "))
            .expect("series present")
            .parse()
            .expect("numeric value");
        assert!(value >= before + 200);
    }

    #[test]
    fn replay_throughput_gauge_carries_the_dispatch_tier_label() {
        use bpred_core::PredictorConfig;
        use bpred_sim::{run_batched_default, Simulator};
        use bpred_trace::{BranchRecord, Outcome, Trace};

        let m = Metrics::new();
        let trace: Trace = (0..500)
            .map(|i| BranchRecord::conditional(0x40 + 4 * (i % 8), 0x20, Outcome::from(i % 3 == 0)))
            .collect();
        run_batched_default(&[PredictorConfig::AlwaysTaken], &trace, Simulator::new());
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE bpred_replay_pairs_per_sec gauge"));
        let line = text
            .lines()
            .find(|l| l.starts_with("bpred_replay_pairs_per_sec{tier=\""))
            .expect("labelled gauge present");
        let value: f64 = line
            .rsplit(' ')
            .next()
            .expect("value field")
            .parse()
            .expect("numeric value");
        assert!(value > 0.0, "{line}");
    }

    #[test]
    fn scalar_lane_gauge_renders_the_engine_fallback_count() {
        // Schema-level: the series must render and parse. The exact
        // value belongs to the most recent process-wide sweep, which
        // concurrent tests also drive, so the strongest stable claim
        // is agreement with the engine accessor at render time.
        let m = Metrics::new();
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE bpred_replay_scalar_lanes gauge"));
        let value: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("bpred_replay_scalar_lanes "))
            .expect("series present")
            .parse()
            .expect("numeric value");
        let _ = value;
    }

    #[test]
    fn group_lane_gauge_renders_every_plan_family() {
        // One labelled series per plan-family label, all numeric.
        let m = Metrics::new();
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE bpred_replay_group_lanes gauge"));
        for label in bpred_sim::LANE_TIER_LABELS {
            let prefix = format!("bpred_replay_group_lanes{{plan=\"{label}\"}} ");
            let value: u64 = text
                .lines()
                .find_map(|l| l.strip_prefix(prefix.as_str()))
                .unwrap_or_else(|| panic!("series for {label} present"))
                .parse()
                .expect("numeric value");
            let _ = value;
        }
    }

    #[test]
    fn store_series_render_zeroed_then_attached() {
        let m = Metrics::new();
        let text = m.render_prometheus();
        assert!(text.contains("bpred_store_hits_total{tier=\"hot\"} 0"));
        assert!(text.contains("bpred_store_hits_total{tier=\"pack\"} 0"));
        assert!(text.contains("bpred_store_hits_total{tier=\"peer\"} 0"));
        assert!(text.contains("bpred_store_segments 0"));
        assert!(text.contains("bpred_store_hot_bytes 0"));

        let stats = Arc::new(StoreStats::default());
        stats.hot_hits.fetch_add(3, Ordering::Relaxed);
        stats.peer_hits.fetch_add(1, Ordering::Relaxed);
        stats.segments.store(2, Ordering::Relaxed);
        stats.hot_bytes.store(4096, Ordering::Relaxed);
        m.attach_store(stats);
        let text = m.render_prometheus();
        assert!(text.contains("bpred_store_hits_total{tier=\"hot\"} 3"));
        assert!(text.contains("bpred_store_hits_total{tier=\"peer\"} 1"));
        assert!(text.contains("bpred_store_segments 2"));
        assert!(text.contains("bpred_store_hot_bytes 4096"));
    }

    #[test]
    fn histogram_counts_oversize_observations() {
        let h = Histogram::default();
        h.observe(Duration::from_secs(60));
        assert_eq!(h.count(), 1);
    }
}
