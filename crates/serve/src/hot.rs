//! Sharded in-memory hot tier: decoded results in front of the pack
//! tier so repeat `/sweep` hits never touch the filesystem.
//!
//! Sixteen shards keyed by the digest's top nibble (the same striping
//! as the pack index and the single-flight table), each an
//! independent mutex over a map plus FIFO insertion queue. Capacity
//! is bounded in bytes — the total budget is split evenly across
//! shards and each shard evicts its oldest entries when it overflows,
//! so the tier can never grow past the budget no matter the digest
//! distribution. A budget of zero disables the tier entirely.
//!
//! Sizes are a proxy: the encoded payload length plus a fixed
//! per-entry overhead, which tracks the decoded footprint closely
//! enough for budgeting (a [`SimResult`] is a few scalars and a short
//! label).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bpred_sim::SimResult;

const SHARDS: usize = 16;

/// Charged per entry on top of the payload size: map/queue slots and
/// the `SimResult` struct itself.
const ENTRY_OVERHEAD: u64 = 64;

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u128, (SimResult, u64)>,
    /// Insertion order; each digest appears at most once because
    /// re-inserting an existing key does not re-queue it.
    queue: VecDeque<u128>,
    bytes: u64,
}

/// The bounded in-memory result tier.
#[derive(Debug)]
pub struct HotTier {
    shards: [Mutex<Shard>; SHARDS],
    shard_budget: u64,
    /// Live byte total across shards, readable without locking (the
    /// `bpred_store_hot_bytes` gauge).
    bytes: AtomicU64,
}

impl HotTier {
    /// A tier holding at most `budget_bytes` in total; zero disables.
    pub fn new(budget_bytes: u64) -> HotTier {
        HotTier {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_budget: budget_bytes / SHARDS as u64,
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, digest: u128) -> std::sync::MutexGuard<'_, Shard> {
        let nibble = (digest >> 124) as usize & 0xf;
        self.shards[nibble]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the tier accepts entries at all.
    pub fn enabled(&self) -> bool {
        self.shard_budget > 0
    }

    /// Looks up a decoded result.
    pub fn get(&self, digest: u128) -> Option<SimResult> {
        if !self.enabled() {
            return None;
        }
        self.shard(digest).map.get(&digest).map(|(r, _)| r.clone())
    }

    /// Inserts (or refreshes) a result whose encoded payload was
    /// `payload_len` bytes, evicting oldest entries in the shard
    /// until it fits its budget slice.
    pub fn put(&self, digest: u128, result: &SimResult, payload_len: usize) {
        if !self.enabled() {
            return;
        }
        let size = payload_len as u64 + ENTRY_OVERHEAD;
        let mut shard = self.shard(digest);
        match shard.map.insert(digest, (result.clone(), size)) {
            Some((_, old_size)) => {
                shard.bytes = shard.bytes - old_size + size;
                self.bytes.fetch_add(size, Ordering::Relaxed);
                self.bytes.fetch_sub(old_size, Ordering::Relaxed);
            }
            None => {
                shard.queue.push_back(digest);
                shard.bytes += size;
                self.bytes.fetch_add(size, Ordering::Relaxed);
            }
        }
        while shard.bytes > self.shard_budget {
            let Some(oldest) = shard.queue.pop_front() else {
                break;
            };
            if let Some((_, evicted)) = shard.map.remove(&oldest) {
                shard.bytes -= evicted;
                self.bytes.fetch_sub(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Drops one entry (a corrupt or superseded cell).
    pub fn forget(&self, digest: u128) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(digest);
        if let Some((_, size)) = shard.map.remove(&digest) {
            shard.bytes -= size;
            self.bytes.fetch_sub(size, Ordering::Relaxed);
            shard.queue.retain(|&d| d != digest);
        }
    }

    /// Current resident bytes (charged, including overhead).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Returns `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total byte budget across shards.
    pub fn budget(&self) -> u64 {
        self.shard_budget * SHARDS as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: u64) -> SimResult {
        SimResult {
            predictor: format!("p{tag}"),
            state_bits: tag,
            conditionals: 100,
            mispredictions: tag,
            alias: None,
            bht: None,
        }
    }

    #[test]
    fn round_trips_and_tracks_bytes() {
        let tier = HotTier::new(1 << 20);
        tier.put(1, &result(1), 100);
        tier.put(2, &result(2), 100);
        assert_eq!(tier.get(1).unwrap().state_bits, 1);
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.bytes(), 2 * (100 + ENTRY_OVERHEAD));
        tier.forget(1);
        assert!(tier.get(1).is_none());
        assert_eq!(tier.bytes(), 100 + ENTRY_OVERHEAD);
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let tier = HotTier::new(0);
        tier.put(1, &result(1), 100);
        assert!(tier.get(1).is_none());
        assert_eq!(tier.bytes(), 0);
    }

    #[test]
    fn eviction_keeps_every_shard_under_its_slice() {
        // Budget for ~4 entries per shard at this size.
        let size = 200u64;
        let per_entry = size + ENTRY_OVERHEAD;
        let tier = HotTier::new(per_entry * 4 * SHARDS as u64);
        // Hammer one shard (top nibble 0) with many entries.
        for i in 0..64u128 {
            tier.put(i, &result(i as u64), size as usize);
        }
        assert!(
            tier.bytes() <= tier.budget(),
            "{} > {}",
            tier.bytes(),
            tier.budget()
        );
        // Oldest entries in the hammered shard are gone, newest stay.
        assert!(tier.get(0).is_none());
        assert!(tier.get(63).is_some());
    }

    #[test]
    fn refreshing_an_entry_does_not_double_charge() {
        let tier = HotTier::new(1 << 20);
        tier.put(5, &result(1), 100);
        tier.put(5, &result(2), 300);
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.bytes(), 300 + ENTRY_OVERHEAD);
        assert_eq!(tier.get(5).unwrap().state_bits, 2);
    }

    #[test]
    fn oversized_entry_is_admitted_then_evicted() {
        let tier = HotTier::new(SHARDS as u64 * 64);
        tier.put(1, &result(1), 10_000);
        assert!(tier.get(1).is_none(), "cannot ever fit");
        assert_eq!(tier.bytes(), 0);
    }
}
