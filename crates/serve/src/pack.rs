//! Pack-segment disk tier: cells appended into large checksummed
//! segments with a page-aligned persistent index.
//!
//! Replaces the one-file-per-object layout for scale — a hundred
//! million cells is a hundred million inodes in the flat store, but
//! only a few thousand segments here. Layout:
//!
//! ```text
//! <root>/packs/seg-<gen:016x>.pack      sealed, immutable segment
//! <root>/packs/active-<pid>-<n>.pack    this process's append segment
//! <root>/packs/index.bin                persistent index of sealed cells
//! ```
//!
//! *Segment format.* A 16-byte header (`BPSG` magic, format version,
//! generation number) followed by frames:
//!
//! ```text
//! magic   : 4 bytes  b"BPCL"
//! digest  : u128 LE  content address of the payload
//! len     : u32  LE  payload length in bytes
//! payload : len bytes (the codec encoding of the cell)
//! crc     : u64  LE  FNV-1a of digest‖len‖payload
//! ```
//!
//! Appends go to the process's own *active* segment; once it passes
//! the seal threshold it is renamed (atomically) to its immutable
//! `seg-<gen>` name and a fresh active segment starts. Generations
//! are allocated from a wall-clock base and checked unique on disk,
//! so segment age order is generation order.
//!
//! *Crash recovery.* Opening a store scans any active segment left by
//! a previous incarnation frame by frame and truncates at the first
//! torn or corrupt frame — everything before the tear is kept.
//! Active segments owned by *other live processes* are scanned but
//! never truncated (their writer may still be appending; a partial
//! final frame simply ends the scan).
//!
//! *Persistent index.* `index.bin` is a page-aligned snapshot of the
//! sealed cells: a 4 KiB header page (`BPIX` magic, entry count,
//! checksum) followed by fixed 40-byte records, so it can be read
//! back in one pass (or mapped) without parsing. It covers sealed
//! segments only and is rewritten atomically at seal/GC; active
//! segments are always rescanned at open, and a missing or corrupt
//! index is rebuilt by scanning every segment. The index is an
//! optimisation, never the source of truth.
//!
//! *GC by segment generation.* [`PackStore::gc`] never touches an
//! active segment, so a cell being written can never be collected —
//! eviction drops whole sealed segments, oldest generation first,
//! and compacts mostly-dead sealed segments by rewriting their live
//! frames into the current active segment.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

use bpred_trace::fnv;

const PACKS_DIR: &str = "packs";
const TMP_DIR: &str = "tmp";
const INDEX_FILE: &str = "index.bin";

const SEG_MAGIC: &[u8; 4] = b"BPSG";
const SEG_VERSION: u16 = 1;
const SEG_HEADER_LEN: u64 = 16;

const FRAME_MAGIC: &[u8; 4] = b"BPCL";
/// magic + digest + len field + trailing crc.
const FRAME_OVERHEAD: u64 = 4 + 16 + 4 + 8;

const INDEX_MAGIC: &[u8; 4] = b"BPIX";
const INDEX_VERSION: u16 = 1;
/// The header occupies one whole page so the record array that
/// follows is page-aligned (mmap- and read-once-friendly).
const INDEX_PAGE: usize = 4096;
const INDEX_ENTRY_LEN: usize = 40;

/// Refuse to parse obviously insane frame lengths (the codec caps
/// bodies well below this); bounds damage from a corrupt length field.
const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

const INDEX_STRIPES: usize = 16;

/// Where a cell's payload lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    gen: u64,
    /// Byte offset of the payload (not the frame) within the segment.
    offset: u64,
    /// Payload length in bytes.
    len: u32,
}

/// In-memory digest → location map, striped by the digest's top
/// nibble (the first hex character — same striping as the PR 7 flat
/// index and the single-flight table).
#[derive(Debug)]
struct StripedIndex {
    stripes: [Mutex<HashMap<u128, Loc>>; INDEX_STRIPES],
}

impl StripedIndex {
    fn new() -> StripedIndex {
        StripedIndex {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn stripe(&self, digest: u128) -> MutexGuard<'_, HashMap<u128, Loc>> {
        let nibble = (digest >> 124) as usize & 0xf;
        // A poisoned stripe means a holder panicked between
        // single-statement map updates; the map is still consistent.
        self.stripes[nibble]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, digest: u128) -> Option<Loc> {
        self.stripe(digest).get(&digest).copied()
    }

    /// Inserts `loc` unless an entry with a newer `(gen, offset)`
    /// already exists — makes open-time rescans idempotent no matter
    /// the order segments are visited in. Returns the superseded
    /// location, if any.
    fn insert_if_newer(&self, digest: u128, loc: Loc) -> Option<Loc> {
        let mut map = self.stripe(digest);
        match map.get(&digest).copied() {
            Some(old) if (old.gen, old.offset) >= (loc.gen, loc.offset) => None,
            old => {
                map.insert(digest, loc);
                old
            }
        }
    }

    fn remove(&self, digest: u128) -> Option<Loc> {
        self.stripe(digest).remove(&digest)
    }

    /// Removes every entry pointing into segment `gen`.
    fn remove_gen(&self, gen: u64) -> usize {
        let mut removed = 0;
        for stripe in &self.stripes {
            let mut map = stripe.lock().unwrap_or_else(|e| e.into_inner());
            let before = map.len();
            map.retain(|_, loc| loc.gen != gen);
            removed += before - map.len();
        }
        removed
    }

    /// Entries pointing into segment `gen`.
    fn collect_gen(&self, gen: u64) -> Vec<(u128, Loc)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(
                map.iter()
                    .filter(|(_, l)| l.gen == gen)
                    .map(|(&d, &l)| (d, l)),
            );
        }
        out
    }

    fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    fn payload_bytes(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .map(|l| u64::from(l.len))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Point-in-time copy (not atomic across stripes; callers
    /// tolerate concurrent churn).
    fn snapshot(&self) -> Vec<(u128, Loc)> {
        let mut out = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.iter().map(|(&d, &l)| (d, l)));
        }
        out
    }
}

/// Bookkeeping for one on-disk segment (sealed or active).
#[derive(Debug, Clone)]
struct SegMeta {
    path: PathBuf,
    /// File size in bytes (valid prefix for a foreign active).
    bytes: u64,
    /// Cells in the index that still point here.
    live_cells: u64,
    /// Payload bytes of those live cells.
    live_bytes: u64,
    /// Sealed segments are immutable and GC-eligible.
    sealed: bool,
    /// `true` for this process's own active segment.
    ours: bool,
}

/// The open append handle.
#[derive(Debug)]
struct Writer {
    file: File,
    gen: u64,
    path: PathBuf,
    /// Next append offset == current file length.
    offset: u64,
}

/// What a [`PackStore::gc`] pass did (cells and file bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackGcReport {
    /// Live cells dropped with their segments.
    pub evicted: usize,
    /// Segment file bytes deleted.
    pub freed_bytes: u64,
    /// Segments rewritten by compaction.
    pub compacted_segments: usize,
    /// Cells remaining.
    pub kept: usize,
    /// File bytes remaining across all segments.
    pub kept_bytes: u64,
}

/// The pack-segment disk tier. All methods take `&self` and are safe
/// to call from many threads.
#[derive(Debug)]
pub struct PackStore {
    dir: PathBuf,
    tmp: PathBuf,
    index: StripedIndex,
    /// Created lazily on the first `put` (and after each seal), so a
    /// process that only reads never litters the directory with
    /// empty active segments.
    writer: Mutex<Option<Writer>>,
    segs: Mutex<BTreeMap<u64, SegMeta>>,
    seal_bytes: u64,
}

fn seg_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("seg-{gen:016x}.pack"))
}

fn parse_seg_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".pack")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

fn active_name() -> String {
    // A fresh name per (pid, in-process instance): re-opening the same
    // directory twice in one process never fights over one active
    // file, and a file matching our own pid+instance can only be a
    // dead predecessor's (safe to adopt and truncate).
    static INSTANCE: AtomicU64 = AtomicU64::new(0);
    let n = INSTANCE.fetch_add(1, Ordering::Relaxed);
    format!("active-{}-{n}.pack", process::id())
}

fn now_gen() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
}

fn frame_crc(digest: u128, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(&digest.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    fnv::fnv64(&buf)
}

fn encode_frame(digest: u128, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD as usize + payload.len());
    frame.extend_from_slice(FRAME_MAGIC);
    frame.extend_from_slice(&digest.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&frame_crc(digest, payload).to_le_bytes());
    frame
}

fn seg_header(gen: u64) -> [u8; SEG_HEADER_LEN as usize] {
    let mut header = [0u8; SEG_HEADER_LEN as usize];
    header[..4].copy_from_slice(SEG_MAGIC);
    header[4..6].copy_from_slice(&SEG_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&gen.to_le_bytes());
    header
}

/// The result of scanning one segment: its generation, every intact
/// frame as `(digest, payload offset, payload length)`, and the byte
/// length of the valid prefix.
type SegmentScan = (u64, Vec<(u128, u64, u32)>, u64);

/// One full pass over a segment file. A torn or corrupt frame ends
/// the scan; `None` means the file is not a recognisable segment at
/// all.
fn scan_segment(path: &Path) -> io::Result<Option<SegmentScan>> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEG_HEADER_LEN as usize || &bytes[..4] != SEG_MAGIC {
        return Ok(None);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEG_VERSION {
        return Ok(None);
    }
    let gen = u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes"));
    let mut frames = Vec::new();
    let mut pos = SEG_HEADER_LEN as usize;
    while let Some(head) = bytes.get(pos..pos + 24) {
        if &head[..4] != FRAME_MAGIC {
            break;
        }
        let digest = u128::from_le_bytes(head[4..20].try_into().expect("16 digest bytes"));
        let len = u32::from_le_bytes(head[20..24].try_into().expect("4 len bytes"));
        if len > MAX_FRAME_PAYLOAD {
            break;
        }
        let payload_start = pos + 24;
        let Some(payload) = bytes.get(payload_start..payload_start + len as usize) else {
            break;
        };
        let Some(crc_bytes) =
            bytes.get(payload_start + len as usize..payload_start + len as usize + 8)
        else {
            break;
        };
        let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 crc bytes"));
        if frame_crc(digest, payload) != crc {
            break;
        }
        frames.push((digest, payload_start as u64, len));
        pos = payload_start + len as usize + 8;
    }
    Ok(Some((gen, frames, pos as u64)))
}

impl PackStore {
    /// Opens (creating if needed) the pack tier under `root`,
    /// recovering any partial active segment and merging the
    /// persistent index with whatever segments exist on disk.
    pub fn open(root: &Path, seal_bytes: u64) -> io::Result<PackStore> {
        let dir = root.join(PACKS_DIR);
        let tmp = root.join(TMP_DIR);
        fs::create_dir_all(&dir)?;
        fs::create_dir_all(&tmp)?;

        let mut sealed: Vec<(u64, PathBuf)> = Vec::new();
        let mut actives: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen) = parse_seg_name(name) {
                sealed.push((gen, entry.path()));
            } else if name.starts_with("active-") && name.ends_with(".pack") {
                actives.push(entry.path());
            }
        }

        let index = StripedIndex::new();
        let mut segs: BTreeMap<u64, SegMeta> = BTreeMap::new();
        for (gen, path) in &sealed {
            let bytes = fs::metadata(path)?.len();
            segs.insert(
                *gen,
                SegMeta {
                    path: path.clone(),
                    bytes,
                    live_cells: 0,
                    live_bytes: 0,
                    sealed: true,
                    ours: false,
                },
            );
        }

        // The persistent index covers sealed segments; entries for
        // segments that no longer exist are dropped, and sealed
        // segments it does not mention get rescanned below.
        let mut covered: std::collections::HashSet<u64> = std::collections::HashSet::new();
        if let Some(entries) = load_index_file(&dir.join(INDEX_FILE)) {
            for (digest, loc) in entries {
                if segs.contains_key(&loc.gen) {
                    covered.insert(loc.gen);
                    index.insert_if_newer(digest, loc);
                }
            }
        }
        let mut index_dirty = false;
        for (gen, path) in &sealed {
            if covered.contains(gen) {
                continue;
            }
            index_dirty = true;
            if let Some((_, frames, _)) = scan_segment(path)? {
                for (digest, offset, len) in frames {
                    index.insert_if_newer(
                        digest,
                        Loc {
                            gen: *gen,
                            offset,
                            len,
                        },
                    );
                }
            }
        }

        // Recover our own leftover active (same pid + instance can
        // only be a dead predecessor: truncate the torn tail and
        // append after it). Foreign actives are scanned read-only —
        // their writer may be mid-append.
        let our_name = active_name();
        let our_path = dir.join(&our_name);
        let mut writer: Option<Writer> = None;
        for path in actives {
            let Some((gen, frames, valid_len)) = scan_segment(&path)? else {
                continue;
            };
            let ours = path == our_path;
            if ours && frames.is_empty() {
                // A dead predecessor's active that never landed a
                // frame: nothing to recover, delete the husk.
                let _ = fs::remove_file(&path);
                continue;
            }
            for &(digest, offset, len) in &frames {
                index.insert_if_newer(digest, Loc { gen, offset, len });
            }
            if ours {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_len)?;
                let mut file = file;
                file.seek(SeekFrom::Start(valid_len))?;
                segs.insert(
                    gen,
                    SegMeta {
                        path: path.clone(),
                        bytes: valid_len,
                        live_cells: 0,
                        live_bytes: 0,
                        sealed: false,
                        ours: true,
                    },
                );
                writer = Some(Writer {
                    file,
                    gen,
                    path,
                    offset: valid_len,
                });
            } else {
                segs.insert(
                    gen,
                    SegMeta {
                        path,
                        bytes: valid_len,
                        live_cells: 0,
                        live_bytes: 0,
                        sealed: false,
                        ours: false,
                    },
                );
            }
        }
        // No leftover of our own to adopt: the writer stays `None`
        // until the first `put` creates a fresh active on demand.

        // Live-cell accounting per segment, from the merged index.
        for (_, loc) in index.snapshot() {
            if let Some(meta) = segs.get_mut(&loc.gen) {
                meta.live_cells += 1;
                meta.live_bytes += u64::from(loc.len);
            }
        }

        let store = PackStore {
            dir,
            tmp,
            index,
            writer: Mutex::new(writer),
            segs: Mutex::new(segs),
            seal_bytes: seal_bytes.max(SEG_HEADER_LEN + FRAME_OVERHEAD),
        };
        if index_dirty {
            let _ = store.write_index();
        }
        Ok(store)
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Payload bytes of live cells.
    pub fn payload_bytes(&self) -> u64 {
        self.index.payload_bytes()
    }

    /// File bytes across all segments (sealed + active).
    pub fn file_bytes(&self) -> u64 {
        self.lock_segs().values().map(|m| m.bytes).sum()
    }

    /// Segments on disk (sealed + active).
    pub fn segments(&self) -> usize {
        self.lock_segs().len()
    }

    /// Whether a cell for `digest` is indexed.
    pub fn contains(&self, digest: u128) -> bool {
        self.index.get(digest).is_some()
    }

    fn lock_segs(&self) -> MutexGuard<'_, BTreeMap<u64, SegMeta>> {
        self.segs.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_writer(&self) -> MutexGuard<'_, Option<Writer>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reads the raw payload stored for `digest`. `None` on a miss or
    /// on any read failure (the entry is forgotten so the cell heals
    /// by recomputation).
    pub fn get(&self, digest: u128) -> Option<Vec<u8>> {
        let loc = self.index.get(digest)?;
        // The segment may seal (rename) between the path lookup and
        // the read; one retry with a fresh path covers that window.
        for _ in 0..2 {
            let path = self.lock_segs().get(&loc.gen).map(|m| m.path.clone());
            let Some(path) = path else { break };
            if let Ok(bytes) = read_at(&path, loc.offset, loc.len as usize) {
                return Some(bytes);
            }
        }
        self.forget(digest);
        None
    }

    /// Drops the index entry for `digest` (the frame bytes stay in
    /// their segment as dead space until GC).
    pub fn forget(&self, digest: u128) {
        if let Some(old) = self.index.remove(digest) {
            let mut segs = self.lock_segs();
            if let Some(meta) = segs.get_mut(&old.gen) {
                meta.live_cells = meta.live_cells.saturating_sub(1);
                meta.live_bytes = meta.live_bytes.saturating_sub(u64::from(old.len));
            }
        }
    }

    /// Appends the payload for `digest` to the active segment,
    /// superseding any previous entry, and seals the segment once it
    /// passes the threshold.
    pub fn put(&self, digest: u128, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(digest, payload);
        let mut guard = self.lock_writer();
        if guard.is_none() {
            let mut segs = self.lock_segs();
            *guard = Some(new_active(&self.dir, &active_name(), &mut segs)?);
        }
        let writer = guard.as_mut().expect("ensured above");
        writer.file.write_all(&frame)?;
        let loc = Loc {
            gen: writer.gen,
            offset: writer.offset + 24,
            len: payload.len() as u32,
        };
        writer.offset += frame.len() as u64;
        let full = writer.offset >= self.seal_bytes;
        {
            let mut segs = self.lock_segs();
            if let Some(meta) = segs.get_mut(&writer.gen) {
                meta.bytes = writer.offset;
                meta.live_cells += 1;
                meta.live_bytes += u64::from(loc.len);
            }
            if let Some(old) = self.index.insert_if_newer(digest, loc) {
                if let Some(meta) = segs.get_mut(&old.gen) {
                    meta.live_cells = meta.live_cells.saturating_sub(1);
                    meta.live_bytes = meta.live_bytes.saturating_sub(u64::from(old.len));
                }
            }
        }
        if full {
            let writer = guard.take().expect("held above");
            self.seal_writer(writer)?;
            drop(guard);
            let _ = self.write_index();
        }
        Ok(())
    }

    /// Seals the current active segment (even if small); used by
    /// tests and `store migrate` to leave a fully indexed store
    /// behind. A no-op when nothing has been appended.
    pub fn seal_active(&self) -> io::Result<()> {
        let mut guard = self.lock_writer();
        let Some(writer) = guard.take() else {
            return Ok(());
        };
        if writer.offset <= SEG_HEADER_LEN {
            *guard = Some(writer); // nothing but the header yet
            return Ok(());
        }
        self.seal_writer(writer)?;
        drop(guard);
        self.write_index()
    }

    /// Renames an active segment to its immutable name. The next
    /// `put` starts a fresh active on demand.
    fn seal_writer(&self, mut writer: Writer) -> io::Result<()> {
        writer.file.flush()?;
        let sealed_path = seg_path(&self.dir, writer.gen);
        fs::rename(&writer.path, &sealed_path)?;
        let mut segs = self.lock_segs();
        if let Some(meta) = segs.get_mut(&writer.gen) {
            meta.path = sealed_path;
            meta.sealed = true;
            meta.ours = false;
        }
        Ok(())
    }

    /// Writes the page-aligned persistent index (sealed cells only)
    /// atomically via a temp file + rename.
    pub fn write_index(&self) -> io::Result<()> {
        let sealed: std::collections::HashSet<u64> = self
            .lock_segs()
            .iter()
            .filter(|(_, m)| m.sealed)
            .map(|(&g, _)| g)
            .collect();
        let mut entries: Vec<(u128, Loc)> = self
            .index
            .snapshot()
            .into_iter()
            .filter(|(_, loc)| sealed.contains(&loc.gen))
            .collect();
        entries.sort_by_key(|&(d, _)| d); // deterministic for same content

        let mut records = Vec::with_capacity(entries.len() * INDEX_ENTRY_LEN);
        for (digest, loc) in &entries {
            records.extend_from_slice(&digest.to_le_bytes());
            records.extend_from_slice(&loc.gen.to_le_bytes());
            records.extend_from_slice(&loc.offset.to_le_bytes());
            records.extend_from_slice(&loc.len.to_le_bytes());
            records.extend_from_slice(&0u32.to_le_bytes());
        }
        let mut header = vec![0u8; INDEX_PAGE];
        header[..4].copy_from_slice(INDEX_MAGIC);
        header[4..6].copy_from_slice(&INDEX_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&(entries.len() as u64).to_le_bytes());
        header[16..24].copy_from_slice(&fnv::fnv64(&records).to_le_bytes());

        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self.tmp.join(format!("index.{}.{n}", process::id()));
        let mut file = File::create(&tmp)?;
        file.write_all(&header)?;
        file.write_all(&records)?;
        drop(file);
        fs::rename(&tmp, self.dir.join(INDEX_FILE))
    }

    /// Trims the store to at most `max_bytes` of segment files by
    /// dropping whole sealed segments, oldest generation first, then
    /// compacts sealed segments that are mostly dead space by
    /// rewriting their live frames into the active segment.
    ///
    /// Active segments are never evicted or rewritten, so a cell
    /// being appended concurrently can never be collected.
    pub fn gc(&self, max_bytes: u64) -> io::Result<PackGcReport> {
        let mut report = PackGcReport::default();
        let mut total = self.file_bytes();

        let victims: Vec<(u64, PathBuf, u64)> = self
            .lock_segs()
            .iter()
            .filter(|(_, m)| m.sealed)
            .map(|(&g, m)| (g, m.path.clone(), m.bytes))
            .collect();
        for (gen, path, bytes) in victims {
            if total <= max_bytes {
                break;
            }
            report.evicted += self.index.remove_gen(gen);
            let _ = fs::remove_file(&path);
            self.lock_segs().remove(&gen);
            report.freed_bytes += bytes;
            total -= bytes;
        }

        // Compaction: a sealed segment whose live payload (plus frame
        // overhead) fills less than half its file is rewritten.
        let candidates: Vec<(u64, PathBuf)> = self
            .lock_segs()
            .iter()
            .filter(|(_, m)| {
                m.sealed
                    && (m.live_bytes + m.live_cells * FRAME_OVERHEAD + SEG_HEADER_LEN) * 2 < m.bytes
            })
            .map(|(&g, m)| (g, m.path.clone()))
            .collect();
        for (gen, path) in candidates {
            for (digest, loc) in self.index.collect_gen(gen) {
                // The codec layer re-validates payloads at decode, so
                // a plain byte copy is enough here.
                if let Ok(payload) = read_at(&path, loc.offset, loc.len as usize) {
                    self.put(digest, &payload)?;
                }
            }
            // Anything still pointing here failed its rewrite read.
            self.index.remove_gen(gen);
            let _ = fs::remove_file(&path);
            self.lock_segs().remove(&gen);
            report.compacted_segments += 1;
        }

        let _ = self.write_index();
        report.kept = self.index.len();
        report.kept_bytes = self.file_bytes();
        Ok(report)
    }
}

fn new_active(dir: &Path, name: &str, segs: &mut BTreeMap<u64, SegMeta>) -> io::Result<Writer> {
    let mut gen = now_gen();
    while segs.contains_key(&gen) || seg_path(dir, gen).exists() {
        gen = gen.wrapping_add(1).max(1);
    }
    let path = dir.join(name);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(&seg_header(gen))?;
    segs.insert(
        gen,
        SegMeta {
            path: path.clone(),
            bytes: SEG_HEADER_LEN,
            live_cells: 0,
            live_bytes: 0,
            sealed: false,
            ours: true,
        },
    );
    Ok(Writer {
        file,
        gen,
        path,
        offset: SEG_HEADER_LEN,
    })
}

fn read_at(path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads and validates `index.bin`; `None` means absent or corrupt
/// (callers fall back to scanning segments).
fn load_index_file(path: &Path) -> Option<Vec<(u128, Loc)>> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < INDEX_PAGE || &bytes[..4] != INDEX_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != INDEX_VERSION {
        return None;
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let records = bytes.get(INDEX_PAGE..INDEX_PAGE + count.checked_mul(INDEX_ENTRY_LEN)?)?;
    if fnv::fnv64(records) != checksum {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for rec in records.chunks_exact(INDEX_ENTRY_LEN) {
        let digest = u128::from_le_bytes(rec[..16].try_into().ok()?);
        let gen = u64::from_le_bytes(rec[16..24].try_into().ok()?);
        let offset = u64::from_le_bytes(rec[24..32].try_into().ok()?);
        let len = u32::from_le_bytes(rec[32..36].try_into().ok()?);
        entries.push((digest, Loc { gen, offset, len }));
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn put_get_round_trip_survives_reopen() {
        let dir = tempdir("pack-roundtrip");
        let store = PackStore::open(&dir, 1 << 20).unwrap();
        for i in 0..50u128 {
            store.put(i, &payload(i as u8, 100 + i as usize)).unwrap();
        }
        assert_eq!(store.len(), 50);
        for i in 0..50u128 {
            assert_eq!(store.get(i).unwrap(), payload(i as u8, 100 + i as usize));
        }
        drop(store);
        let reopened = PackStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(reopened.len(), 50);
        assert_eq!(reopened.get(7).unwrap(), payload(7, 107));
    }

    #[test]
    fn duplicate_put_supersedes_and_counts_once() {
        let dir = tempdir("pack-dup");
        let store = PackStore::open(&dir, 1 << 20).unwrap();
        store.put(42, &payload(1, 64)).unwrap();
        store.put(42, &payload(2, 96)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(42).unwrap(), payload(2, 96));
    }

    #[test]
    fn sealing_rolls_the_active_segment() {
        let dir = tempdir("pack-seal");
        let store = PackStore::open(&dir, 256).unwrap();
        for i in 0..20u128 {
            store.put(i, &payload(i as u8, 128)).unwrap();
        }
        assert!(store.segments() > 2, "tiny seal threshold should roll");
        for i in 0..20u128 {
            assert_eq!(store.get(i).unwrap(), payload(i as u8, 128));
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_kept() {
        let dir = tempdir("pack-torn");
        {
            let store = PackStore::open(&dir, 1 << 20).unwrap();
            for i in 0..10u128 {
                store.put(i, &payload(i as u8, 200)).unwrap();
            }
        }
        // Tear the active segment: append half a frame.
        let packs = dir.join(PACKS_DIR);
        let active = fs::read_dir(&packs)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("active-"))
            .expect("active segment present")
            .path();
        let mut file = OpenOptions::new().append(true).open(&active).unwrap();
        file.write_all(FRAME_MAGIC).unwrap();
        file.write_all(&99u128.to_le_bytes()).unwrap();
        file.write_all(&500u32.to_le_bytes()).unwrap();
        file.write_all(&[0xab; 40]).unwrap(); // payload cut short
        drop(file);

        let reopened = PackStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(reopened.len(), 10, "prefix survives the torn tail");
        for i in 0..10u128 {
            assert_eq!(reopened.get(i).unwrap(), payload(i as u8, 200));
        }
        assert!(reopened.get(99).is_none());
    }

    #[test]
    fn index_rebuild_from_packs_matches() {
        let dir = tempdir("pack-rebuild");
        {
            let store = PackStore::open(&dir, 512).unwrap();
            for i in 0..30u128 {
                store.put(i, &payload(i as u8, 100)).unwrap();
            }
            store.seal_active().unwrap();
        }
        fs::remove_file(dir.join(PACKS_DIR).join(INDEX_FILE)).unwrap();
        let rebuilt = PackStore::open(&dir, 512).unwrap();
        assert_eq!(rebuilt.len(), 30);
        for i in 0..30u128 {
            assert_eq!(rebuilt.get(i).unwrap(), payload(i as u8, 100));
        }
        assert!(
            dir.join(PACKS_DIR).join(INDEX_FILE).exists(),
            "rebuild rewrites the persistent index"
        );
    }

    #[test]
    fn corrupt_index_falls_back_to_scan() {
        let dir = tempdir("pack-badindex");
        {
            let store = PackStore::open(&dir, 512).unwrap();
            for i in 0..20u128 {
                store.put(i, &payload(i as u8, 100)).unwrap();
            }
            store.seal_active().unwrap();
        }
        let index_path = dir.join(PACKS_DIR).join(INDEX_FILE);
        let mut bytes = fs::read(&index_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&index_path, &bytes).unwrap();
        let reopened = PackStore::open(&dir, 512).unwrap();
        assert_eq!(reopened.len(), 20);
    }

    #[test]
    fn gc_never_touches_the_active_segment() {
        let dir = tempdir("pack-gc-active");
        let store = PackStore::open(&dir, 1 << 20).unwrap();
        for i in 0..10u128 {
            store.put(i, &payload(i as u8, 100)).unwrap();
        }
        // Everything is in the (unsealable) active segment: a zero
        // budget must evict nothing.
        let report = store.gc(0).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(store.len(), 10);
    }

    #[test]
    fn gc_drops_oldest_sealed_segments_to_budget() {
        let dir = tempdir("pack-gc-budget");
        let store = PackStore::open(&dir, 400).unwrap();
        for i in 0..30u128 {
            store.put(i, &payload(i as u8, 100)).unwrap();
        }
        let before = store.file_bytes();
        assert!(store.segments() > 3);
        let report = store.gc(before / 2).unwrap();
        assert!(report.evicted > 0);
        assert!(report.freed_bytes > 0);
        assert!(store.file_bytes() < before);
        // Newest cells survive (they live in the newest segments).
        assert!(store.get(29).is_some());
        // Survivors still read back correctly after the pass.
        for i in 0..30u128 {
            if let Some(bytes) = store.get(i) {
                assert_eq!(bytes, payload(i as u8, 100));
            }
        }
    }

    #[test]
    fn compaction_rewrites_mostly_dead_segments() {
        let dir = tempdir("pack-compact");
        let store = PackStore::open(&dir, 2048).unwrap();
        for i in 0..40u128 {
            store.put(i, &payload(i as u8, 100)).unwrap();
        }
        store.seal_active().unwrap();
        // Kill most cells so sealed segments go mostly-dead.
        for i in 0..36u128 {
            store.forget(i);
        }
        let before_segments = store.segments();
        let report = store.gc(u64::MAX).unwrap();
        assert!(report.compacted_segments > 0, "{report:?}");
        assert!(store.segments() < before_segments);
        for i in 36..40u128 {
            assert_eq!(store.get(i).unwrap(), payload(i as u8, 100), "cell {i}");
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("bpred-{tag}-{}-{n}-{:x}", process::id(), now_gen()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }
}
