//! Peer cell-exchange: fetch missing cells by digest from other
//! serve nodes before computing them.
//!
//! A node configured with `BPRED_SERVE_PEERS=host:port,host:port`
//! asks each peer in turn for `GET /cell/<digest>` when a cell misses
//! both local tiers; the first `200 OK` wins. Peer bytes are never
//! trusted blindly — the store decodes them against the *expected*
//! canonical key (checksum plus embedded-key check), so a confused or
//! malicious peer can only cause a miss, never a wrong answer. This
//! keeps every read bit-identical to a local recomputation.
//!
//! The client is deliberately plain: one blocking connection per
//! fetch with short connect/IO timeouts, `Connection: close`, no
//! pooling — a peer fetch replaces a full simulation, so a millisecond
//! of handshake noise is irrelevant, and a dead peer costs one bounded
//! timeout before the node falls back to computing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default per-peer connect timeout.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(1000);
/// Default per-peer read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(5000);
/// Largest cell object a peer may hand us.
const MAX_PEER_BODY: usize = 1 << 20;

/// The set of peer nodes cells may be fetched from.
#[derive(Debug, Clone)]
pub struct PeerSet {
    peers: Vec<String>,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl PeerSet {
    /// Parses a comma-separated `host:port` list (the
    /// `BPRED_SERVE_PEERS` format). Whitespace around entries is
    /// ignored; `None` when the list has no usable entries.
    pub fn from_list(list: &str) -> Option<PeerSet> {
        let peers: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect();
        if peers.is_empty() {
            return None;
        }
        Some(PeerSet {
            peers,
            connect_timeout: CONNECT_TIMEOUT,
            io_timeout: IO_TIMEOUT,
        })
    }

    /// The configured peer addresses.
    pub fn addrs(&self) -> &[String] {
        &self.peers
    }

    /// Asks each peer for the cell stored under `digest_hex`;
    /// returns the first `200 OK` body. Any network or protocol
    /// failure just moves on to the next peer.
    pub fn fetch(&self, digest_hex: &str) -> Option<Vec<u8>> {
        for peer in &self.peers {
            if let Some(body) = self.fetch_one(peer, digest_hex) {
                return Some(body);
            }
        }
        None
    }

    fn fetch_one(&self, peer: &str, digest_hex: &str) -> Option<Vec<u8>> {
        let request =
            format!("GET /cell/{digest_hex} HTTP/1.1\r\nHost: {peer}\r\nConnection: close\r\n\r\n");
        let (status, body) = self.exchange(peer, request.as_bytes())?;
        (status == 200).then_some(body)
    }

    /// Offers the object for `digest_hex` to every peer (best
    /// effort); returns how many accepted it.
    pub fn push(&self, digest_hex: &str, payload: &[u8]) -> usize {
        let mut accepted = 0;
        for peer in &self.peers {
            let mut request = format!(
                "PUT /cell/{digest_hex} HTTP/1.1\r\nHost: {peer}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                payload.len()
            )
            .into_bytes();
            request.extend_from_slice(payload);
            if matches!(self.exchange(peer, &request), Some((200, _))) {
                accepted += 1;
            }
        }
        accepted
    }

    /// One request/response round trip with `peer`. `None` on any
    /// connect, IO, or parse failure.
    fn exchange(&self, peer: &str, request: &[u8]) -> Option<(u16, Vec<u8>)> {
        let addr: SocketAddr = peer.to_socket_addrs().ok()?.next()?;
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout).ok()?;
        stream.set_read_timeout(Some(self.io_timeout)).ok()?;
        stream.set_write_timeout(Some(self.io_timeout)).ok()?;
        stream.write_all(request).ok()?;
        // Connection: close — read until EOF, bounded.
        let mut response = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    response.extend_from_slice(&buf[..n]);
                    if response.len() > MAX_PEER_BODY + 8192 {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
        parse_response(&response)
    }
}

/// Splits a raw HTTP/1.1 response into (status, body), honouring
/// Content-Length when present (trailing bytes are ignored).
fn parse_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok();
        }
    }
    let body = &raw[head_end..];
    let body = match content_length {
        Some(len) if len <= body.len() => &body[..len],
        Some(_) => return None, // truncated
        None => body,
    };
    if body.len() > MAX_PEER_BODY {
        return None;
    }
    Some((status, body.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_list_parses_and_skips_blanks() {
        let set = PeerSet::from_list(" 127.0.0.1:9000 ,, localhost:9001 ").unwrap();
        assert_eq!(set.addrs(), ["127.0.0.1:9000", "localhost:9001"]);
        assert!(PeerSet::from_list("").is_none());
        assert!(PeerSet::from_list(" , ,").is_none());
    }

    #[test]
    fn response_parsing_honours_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhelloTRAILING";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");

        let raw = b"HTTP/1.1 404 Not Found\r\n\r\n";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 404);
        assert!(body.is_empty());

        // Truncated body vs declared length is a failure, not a
        // short read silently passed to the codec.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nhalf";
        assert!(parse_response(raw).is_none());
    }

    #[test]
    fn fetch_from_unreachable_peer_is_a_clean_miss() {
        // Port 1 on localhost: connection refused immediately.
        let set = PeerSet::from_list("127.0.0.1:1").unwrap();
        assert!(set.fetch("0123456789abcdef0123456789abcdef").is_none());
        assert_eq!(set.push("0123456789abcdef0123456789abcdef", b"x"), 0);
    }
}
