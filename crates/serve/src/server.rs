//! The HTTP server: listener, worker pool, routing.
//!
//! A plain `std::net::TcpListener` with a fixed pool of worker
//! threads — no async runtime, no framework. The accept thread hands
//! connections to workers over a channel; each worker parses one
//! request, routes it, responds, and closes (the HTTP layer sends
//! `Connection: close`). Shutdown is cooperative: a flag flips, the
//! channel closes, and a self-connection unblocks `accept`.
//!
//! Routes:
//!
//! | method & path    | response                                   |
//! |------------------|--------------------------------------------|
//! | `GET /healthz`   | `200 ok`                                   |
//! | `GET /metrics`   | Prometheus text exposition                 |
//! | `GET /sweep?…`   | sweep JSON (parameters in the query)       |
//! | `POST /sweep`    | sweep JSON (parameters form-encoded body)  |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, respond, Request, RequestError};
use crate::metrics::Metrics;
use crate::service::{SweepRequest, SweepService};
use crate::store::ResultStore;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Result-store directory; `None` serves uncached.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Per-request cap on replay length (conditional branches).
    pub max_branches: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_dir: None,
            max_branches: 2_000_000,
        }
    }
}

/// The server entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and accept thread, and returns a
    /// handle. Fails if the address cannot be bound or the store
    /// cannot be opened.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultStore::open(dir)?)),
            None => None,
        };
        let metrics = Arc::new(Metrics::new());
        let service = Arc::new(SweepService::new(
            store.clone(),
            metrics.clone(),
            config.max_branches,
        ));

        let stopping = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let service = service.clone();
            let metrics = metrics.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bpred-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the take.
                        let stream = {
                            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        match stream {
                            Ok(stream) => serve_connection(stream, &service, &metrics),
                            Err(_) => return, // channel closed: shutdown
                        }
                    })?,
            );
        }

        let accept = {
            let stopping = stopping.clone();
            std::thread::Builder::new()
                .name("bpred-serve-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                // Bound how long a worker can sit in a
                                // half-read request or a stalled write.
                                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    // Dropping `tx` here closes the channel and
                    // retires the workers.
                })?
        };

        Ok(ServerHandle {
            addr,
            metrics,
            store,
            stopping,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server; dropping it without [`shutdown`](Self::shutdown)
/// detaches the threads (the process exit reaps them).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    store: Option<Arc<ResultStore>>,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The result store, when the server persists.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests finish first.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn serve_connection(mut stream: TcpStream, service: &SweepService, metrics: &Metrics) {
    Metrics::inc(&metrics.http_requests);
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return, // client went away
        Err(e) => {
            Metrics::inc(&metrics.bad_requests);
            let _ = respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                &[],
                format!("{e}\n").as_bytes(),
            );
            return;
        }
    };
    route(&mut stream, &request, service, metrics);
}

fn route(stream: &mut TcpStream, request: &Request, service: &SweepService, metrics: &Metrics) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = respond(stream, 200, "OK", "text/plain; charset=utf-8", &[], b"ok\n");
        }
        ("GET", "/metrics") => {
            let body = metrics.render_prometheus();
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/sweep") | ("POST", "/sweep") => {
            let params = if request.method == "POST" {
                String::from_utf8_lossy(&request.body).into_owned()
            } else {
                request.query.clone()
            };
            match SweepRequest::parse(&params)
                .and_then(|r| service.execute(&r).map(|answer| (r, answer)))
            {
                Ok((_, (body, provenance))) => {
                    let headers =
                        vec![format!("X-Bpred-Provenance: {}", provenance.header_value())];
                    let _ = respond(
                        stream,
                        200,
                        "OK",
                        "application/json",
                        &headers,
                        body.as_bytes(),
                    );
                }
                Err(bad) => {
                    Metrics::inc(&metrics.bad_requests);
                    let _ = respond(
                        stream,
                        bad.status,
                        "Bad Request",
                        "text/plain; charset=utf-8",
                        &[],
                        format!("{}\n", bad.message).as_bytes(),
                    );
                }
            }
        }
        _ => {
            Metrics::inc(&metrics.bad_requests);
            let _ = respond(
                stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                &[],
                b"not found\n",
            );
        }
    }
}
