//! The HTTP server: sharded event loops, keep-alive connections, a
//! bounded compute handoff with load shedding.
//!
//! The connection layer is an event-driven readiness loop on
//! nonblocking `std::net` (see [`reactor`](crate::reactor)): each
//! **shard** thread polls a cloned listener, its wake channel, and
//! its connections, and drives per-connection state machines through
//! `Reading → Computing → Writing → Reading` with HTTP/1.1
//! keep-alive and pipelining. Cheap routes (`/healthz`, `/metrics`,
//! parse failures) are answered inline on the event loop; sweep
//! requests are handed to a fixed **compute pool** over a bounded
//! queue. When the queue is full the request is **shed** with `429
//! Too Many Requests` + `Retry-After` instead of queueing
//! unboundedly — in-flight work always completes, new work is
//! refused at the door.
//!
//! Timeouts, all enforced by the shard's poll deadline:
//!
//! * **read** — a request (first byte to blank line + body) must
//!   complete within `read_timeout`; a byte-at-a-time slowloris dies
//!   here.
//! * **write** — a queued response must drain within
//!   `write_timeout`; a client that stops reading cannot pin a
//!   connection.
//! * **idle** — a keep-alive connection with no pending request is
//!   dropped after `idle_timeout`.
//!
//! Timed-out connections are closed without a response (the peer
//! has, by definition, stopped participating). Compute time is
//! exempt: a dispatched request finishes regardless of how long the
//! batch takes.
//!
//! Routes:
//!
//! | method & path       | response                                    |
//! |---------------------|---------------------------------------------|
//! | `GET /healthz`      | `200 ok`                                    |
//! | `GET /metrics`      | Prometheus text exposition                  |
//! | `GET /sweep?…`      | sweep JSON (parameters in the query)        |
//! | `POST /sweep`       | sweep JSON (parameters form-encoded body)   |
//! | `GET /cell/<digest>`| raw stored cell object (peer exchange)      |
//! | `PUT /cell/<digest>`| store a verified cell object (peer exchange)|
//!
//! The `/cell` routes are the peer protocol: a node configured with
//! `BPRED_SERVE_PEERS` fetches cells it misses from its peers by
//! digest before computing them. GETs answer from local tiers only
//! (never recursing into this node's own peers), and PUTs verify the
//! object's checksum and that its embedded key hashes to the digest
//! before storing — peers can prime a cache but never poison it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{self, parse_request, Parsed, Request};
use crate::metrics::Metrics;
use crate::reactor::{self, Entry, Interest, WakeChannel, Waker};
use crate::service::{SweepRequest, SweepService};
use crate::store::{ResultStore, StoreOptions};

/// Server construction parameters.
///
/// [`Default`] reads the env knobs: `BPRED_SERVE_QUEUE` (compute
/// queue depth), `BPRED_SERVE_TIMEOUT_MS` (read and write timeout),
/// `BPRED_SERVE_IDLE_MS` (keep-alive idle timeout). Invalid values
/// warn and fall back.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Event-loop shards (acceptor + connection reactors).
    pub shards: usize,
    /// Compute-pool threads executing sweep requests.
    pub workers: usize,
    /// Result-store directory; `None` serves uncached.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Per-request cap on replay length (conditional branches).
    pub max_branches: usize,
    /// Bounded handoff queue between shards and the compute pool;
    /// a full queue sheds with `429 + Retry-After`.
    pub queue_depth: usize,
    /// A request must arrive completely within this window.
    pub read_timeout: Duration,
    /// A response must drain completely within this window.
    pub write_timeout: Duration,
    /// Idle keep-alive connections are closed after this window.
    pub idle_timeout: Duration,
    /// Result-store tuning (tiers, seal threshold, peers); the
    /// default honours the `BPRED_STORE_*` / `BPRED_SERVE_PEERS`
    /// environment.
    pub store: StoreOptions,
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: ignoring invalid {name}={raw:?}");
            None
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        let timeout = Duration::from_millis(env_parse("BPRED_SERVE_TIMEOUT_MS").unwrap_or(10_000));
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 2,
            workers: 4,
            cache_dir: None,
            max_branches: 2_000_000,
            queue_depth: env_parse("BPRED_SERVE_QUEUE").unwrap_or(64),
            read_timeout: timeout,
            write_timeout: timeout,
            idle_timeout: Duration::from_millis(env_parse("BPRED_SERVE_IDLE_MS").unwrap_or(30_000)),
            store: StoreOptions::from_env(),
        }
    }
}

/// The server entry point.
#[derive(Debug)]
pub struct Server;

/// A sweep request in flight from a shard to the compute pool.
struct Job {
    shard: usize,
    token: usize,
    gen: u64,
    keep_alive: bool,
    sweep: SweepRequest,
}

/// A computed response on its way back to a shard.
struct Completion {
    token: usize,
    gen: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Per-shard inbox for compute completions plus the waker that
/// breaks the shard out of `poll` when one lands.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox").finish_non_exhaustive()
    }
}

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Binds, spawns the shard and compute threads, and returns a
    /// handle. Fails if the address cannot be bound or the store
    /// cannot be opened.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultStore::open_with(dir, config.store.clone())?)),
            None => None,
        };
        let metrics = Arc::new(Metrics::new());
        if let Some(store) = &store {
            metrics.attach_store(store.stats());
        }
        let service = Arc::new(SweepService::new(
            store.clone(),
            metrics.clone(),
            config.max_branches,
        ));

        let stopping = Arc::new(AtomicBool::new(false));
        let shard_count = config.shards.max(1);
        let (job_tx, job_rx): (SyncSender<Job>, Receiver<Job>) =
            sync_channel(config.queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));

        let mut mailboxes = Vec::with_capacity(shard_count);
        let mut channels = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (waker, channel) = WakeChannel::new()?;
            mailboxes.push(Mailbox {
                completions: Mutex::new(Vec::new()),
                waker,
            });
            channels.push(channel);
        }
        let mailboxes = Arc::new(mailboxes);

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let job_rx = job_rx.clone();
            let service = service.clone();
            let metrics = metrics.clone();
            let mailboxes = mailboxes.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bpred-serve-worker-{i}"))
                    .spawn(move || worker_loop(&job_rx, &service, &metrics, &mailboxes))?,
            );
        }
        drop(job_rx);

        let mut shards = Vec::with_capacity(shard_count);
        for (id, channel) in channels.into_iter().enumerate() {
            let shard = Shard {
                id,
                listener: listener.try_clone()?,
                wake: channel,
                mailboxes: mailboxes.clone(),
                jobs: job_tx.clone(),
                metrics: metrics.clone(),
                store: store.clone(),
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
                idle_timeout: config.idle_timeout,
                stopping: stopping.clone(),
                conns: Vec::new(),
                free: Vec::new(),
                next_gen: 0,
            };
            shards.push(
                std::thread::Builder::new()
                    .name(format!("bpred-serve-shard-{id}"))
                    .spawn(move || shard.run())?,
            );
        }
        drop(job_tx); // workers retire once every shard exits

        Ok(ServerHandle {
            addr,
            metrics,
            store,
            stopping,
            mailboxes,
            shards,
            workers,
        })
    }
}

/// A running server; dropping it without [`shutdown`](Self::shutdown)
/// detaches the threads (the process exit reaps them).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    store: Option<Arc<ResultStore>>,
    stopping: Arc<AtomicBool>,
    mailboxes: Arc<Vec<Mailbox>>,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The result store, when the server persists.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Stops the shards, lets queued compute finish, and joins every
    /// thread. Connections are closed; responses already queued to
    /// the compute pool are discarded at delivery.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        for mailbox in self.mailboxes.iter() {
            mailbox.waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        // Every shard has exited and dropped its job sender, so the
        // workers' `recv` returns Err and they retire.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    service: &SweepService,
    metrics: &Metrics,
    mailboxes: &[Mailbox],
) {
    loop {
        // Hold the receiver lock only for the take.
        let job = { lock_recover(job_rx).recv() };
        let Ok(job) = job else { return }; // channel closed: shutdown
        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let (status, bytes) = match service.execute(&job.sweep) {
            Ok((body, provenance)) => (
                200,
                http::response(
                    200,
                    "application/json",
                    &[format!("X-Bpred-Provenance: {}", provenance.header_value())],
                    body.as_bytes(),
                    job.keep_alive,
                ),
            ),
            Err(bad) => {
                Metrics::inc(&metrics.bad_requests);
                (
                    bad.status,
                    http::response(
                        bad.status,
                        "text/plain; charset=utf-8",
                        &[],
                        format!("{}\n", bad.message).as_bytes(),
                        job.keep_alive,
                    ),
                )
            }
        };
        metrics.observe_status(status);
        let mailbox = &mailboxes[job.shard];
        lock_recover(&mailbox.completions).push(Completion {
            token: job.token,
            gen: job.gen,
            bytes,
            close: !job.keep_alive,
        });
        mailbox.waker.wake();
    }
}

/// Per-connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// A sweep is in the compute pool; no timeout applies.
    Computing,
    /// Draining a queued response.
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unparsed inbound bytes (may hold pipelined requests).
    buf: Vec<u8>,
    /// Queued outbound bytes and the drain cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// When the current state must have made progress.
    deadline: Option<Instant>,
    /// Guards completions against token reuse.
    gen: u64,
    close_after_write: bool,
    /// Read side saw EOF (client closed or half-closed).
    peer_gone: bool,
}

const READ_CHUNK: usize = 16 * 1024;
/// Backpressure cap on buffered inbound bytes: one max-size request
/// plus pipelined follow-on headroom. Beyond this the shard stops
/// reading and TCP flow control takes over.
const MAX_BUFFER: usize = http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES + 16 * 1024;

/// What `flush` left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flush {
    /// Response fully written; connection is back in `Reading`.
    Done,
    /// Bytes remain; waiting for write readiness.
    Pending,
    /// The connection died and was closed.
    Closed,
}

struct Shard {
    id: usize,
    listener: TcpListener,
    wake: WakeChannel,
    mailboxes: Arc<Vec<Mailbox>>,
    jobs: SyncSender<Job>,
    metrics: Arc<Metrics>,
    store: Option<Arc<ResultStore>>,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeout: Duration,
    stopping: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
}

/// What a poll entry maps back to.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Wake,
    Listener,
    Conn(usize),
}

impl Shard {
    fn run(mut self) {
        let mut entries: Vec<Entry> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            entries.clear();
            slots.clear();
            entries.push(Entry::new(self.wake.fd(), Interest::READ));
            slots.push(Slot::Wake);
            entries.push(Entry::new(self.listener.as_raw_fd(), Interest::READ));
            slots.push(Slot::Listener);

            let now = Instant::now();
            let mut next_deadline: Option<Instant> = None;
            for (i, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let interest = match conn.state {
                    ConnState::Reading if !conn.peer_gone && conn.buf.len() < MAX_BUFFER => {
                        Some(Interest::READ)
                    }
                    ConnState::Writing => Some(Interest::WRITE),
                    _ => None,
                };
                if let Some(interest) = interest {
                    entries.push(Entry::new(conn.stream.as_raw_fd(), interest));
                    slots.push(Slot::Conn(i));
                }
                if let Some(d) = conn.deadline {
                    next_deadline = Some(next_deadline.map_or(d, |n: Instant| n.min(d)));
                }
            }
            let timeout = next_deadline
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(500))
                .min(Duration::from_millis(500));
            let _ = reactor::poll(&mut entries, timeout);

            self.wake.drain();
            let completions =
                std::mem::take(&mut *lock_recover(&self.mailboxes[self.id].completions));
            for completion in completions {
                self.deliver(completion);
            }

            for (slot, entry) in slots.iter().zip(entries.iter()) {
                match *slot {
                    Slot::Wake => {}
                    Slot::Listener => {
                        if entry.readiness.readable {
                            self.accept_ready();
                        }
                    }
                    Slot::Conn(i) => {
                        if self.conns.get(i).is_none_or(Option::is_none) {
                            continue;
                        }
                        if entry.readiness.readable {
                            self.on_readable(i);
                        }
                        if self.conns[i].is_some() && entry.readiness.writable {
                            self.on_writable(i);
                        }
                        if self.conns[i].is_some()
                            && entry.readiness.failed
                            && !entry.readiness.readable
                            && !entry.readiness.writable
                        {
                            self.close(i);
                        }
                    }
                }
            }

            // Deadlines: a connection that failed to make progress in
            // time is closed without ceremony.
            let now = Instant::now();
            for i in 0..self.conns.len() {
                let expired = self.conns[i]
                    .as_ref()
                    .and_then(|c| c.deadline)
                    .is_some_and(|d| d <= now);
                if expired {
                    self.close(i);
                }
            }
        }
        // Shutdown: close every connection (the gauge must land back
        // at zero) and drop the listener clone and job sender.
        for i in 0..self.conns.len() {
            if self.conns[i].is_some() {
                self.close(i);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        state: ConnState::Reading,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        deadline: Some(Instant::now() + self.read_timeout),
                        gen: self.next_gen,
                        close_after_write: false,
                        peer_gone: false,
                    };
                    let token = match self.free.pop() {
                        Some(token) => {
                            self.conns[token] = Some(conn);
                            token
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    let _ = token;
                    self.metrics
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn close(&mut self, token: usize) {
        if self.conns[token].take().is_some() {
            self.free.push(token);
            self.metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn on_readable(&mut self, token: usize) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let was_empty = conn.buf.is_empty();
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            if conn.buf.len() >= MAX_BUFFER {
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_gone = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        // A fresh request starting on an idle keep-alive connection
        // re-arms the (stricter) read deadline.
        if was_empty && !conn.buf.is_empty() && conn.state == ConnState::Reading {
            conn.deadline = Some(Instant::now() + self.read_timeout);
        }
        if conn.state == ConnState::Reading {
            self.advance(token);
        }
    }

    fn on_writable(&mut self, token: usize) {
        if self.flush(token) == Flush::Done {
            self.advance(token);
        }
    }

    /// Applies a compute completion to its connection, unless the
    /// connection died (or was recycled) in the meantime.
    fn deliver(&mut self, completion: Completion) {
        let alive = self.conns.get(completion.token).is_some_and(|slot| {
            slot.as_ref()
                .is_some_and(|c| c.gen == completion.gen && c.state == ConnState::Computing)
        });
        if !alive {
            return;
        }
        {
            let conn = self.conns[completion.token]
                .as_mut()
                .expect("checked above");
            conn.out = completion.bytes;
            conn.out_pos = 0;
            conn.close_after_write |= completion.close;
            conn.state = ConnState::Writing;
            conn.deadline = Some(Instant::now() + self.write_timeout);
        }
        if self.flush(completion.token) == Flush::Done {
            self.advance(completion.token);
        }
    }

    /// Parses and answers as many buffered requests as possible.
    /// Returns with the connection `Reading` (idle or mid-request),
    /// `Writing` (response pending write readiness), `Computing`
    /// (sweep dispatched), or closed.
    fn advance(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            if conn.state != ConnState::Reading {
                return;
            }
            match parse_request(&conn.buf) {
                Parsed::Incomplete => {
                    if conn.peer_gone {
                        // Mid-request disconnect (or clean idle EOF):
                        // nothing more will arrive.
                        self.close(token);
                    }
                    return;
                }
                Parsed::Error(error) => {
                    Metrics::inc(&self.metrics.bad_requests);
                    self.metrics.observe_status(error.status());
                    let conn = self.conns[token].as_mut().expect("checked above");
                    conn.buf.clear();
                    conn.out = http::error_response(error, false);
                    conn.out_pos = 0;
                    conn.close_after_write = true;
                    conn.state = ConnState::Writing;
                    conn.deadline = Some(Instant::now() + self.write_timeout);
                    let _ = self.flush(token);
                    return;
                }
                Parsed::Request(request, consumed) => {
                    conn.buf.drain(..consumed);
                    Metrics::inc(&self.metrics.http_requests);
                    match self.handle(token, request) {
                        Flush::Done => continue, // next pipelined request
                        Flush::Pending | Flush::Closed => return,
                    }
                }
            }
        }
    }

    /// Routes one parsed request. Inline routes queue their response
    /// and return the flush outcome; a dispatched sweep returns
    /// `Pending` (the connection is `Computing`).
    fn handle(&mut self, token: usize, request: Request) -> Flush {
        let keep_alive = request.keep_alive;
        let inline: Option<(u16, Vec<u8>)> = match (request.method.as_str(), request.path.as_str())
        {
            ("GET", "/healthz") => Some((
                200,
                http::response(200, "text/plain; charset=utf-8", &[], b"ok\n", keep_alive),
            )),
            ("GET", "/metrics") => {
                let body = self.metrics.render_prometheus();
                Some((
                    200,
                    http::response(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        &[],
                        body.as_bytes(),
                        keep_alive,
                    ),
                ))
            }
            // Peer cell exchange: raw stored objects by digest,
            // answered inline (tier reads are a map probe or one
            // small pread — far cheaper than a sweep).
            ("GET", path) if path.starts_with("/cell/") => {
                let digest = &path["/cell/".len()..];
                Some(
                    match self.store.as_deref().and_then(|s| s.get_raw(digest)) {
                        Some(bytes) => (
                            200,
                            http::response(
                                200,
                                "application/octet-stream",
                                &[],
                                &bytes,
                                keep_alive,
                            ),
                        ),
                        None => {
                            let digest_ok =
                                digest.len() == 32 && digest.bytes().all(|b| b.is_ascii_hexdigit());
                            let (status, message): (u16, &[u8]) = if self.store.is_none() {
                                (404, b"no result store\n")
                            } else if !digest_ok {
                                (400, b"digest must be 32 hex digits\n")
                            } else {
                                (404, b"cell not stored here\n")
                            };
                            if status == 400 {
                                Metrics::inc(&self.metrics.bad_requests);
                            }
                            (
                                status,
                                http::response(
                                    status,
                                    "text/plain; charset=utf-8",
                                    &[],
                                    message,
                                    keep_alive,
                                ),
                            )
                        }
                    },
                )
            }
            ("PUT", path) if path.starts_with("/cell/") => {
                let digest = &path["/cell/".len()..];
                Some(match self.store.as_deref() {
                    None => (
                        404,
                        http::response(
                            404,
                            "text/plain; charset=utf-8",
                            &[],
                            b"no result store\n",
                            keep_alive,
                        ),
                    ),
                    Some(store) => match store.put_raw(digest, &request.body) {
                        Ok(()) => (
                            200,
                            http::response(
                                200,
                                "text/plain; charset=utf-8",
                                &[],
                                b"stored\n",
                                keep_alive,
                            ),
                        ),
                        Err(message) => {
                            Metrics::inc(&self.metrics.bad_requests);
                            (
                                400,
                                http::response(
                                    400,
                                    "text/plain; charset=utf-8",
                                    &[],
                                    format!("{message}\n").as_bytes(),
                                    keep_alive,
                                ),
                            )
                        }
                    },
                })
            }
            ("GET", "/sweep") | ("POST", "/sweep") => {
                let params = if request.method == "POST" {
                    String::from_utf8_lossy(&request.body).into_owned()
                } else {
                    request.query.clone()
                };
                match SweepRequest::parse(&params) {
                    Ok(sweep) => {
                        let conn = self.conns[token].as_ref().expect("caller checked");
                        let job = Job {
                            shard: self.id,
                            token,
                            gen: conn.gen,
                            keep_alive,
                            sweep,
                        };
                        match self.jobs.try_send(job) {
                            Ok(()) => {
                                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                                let conn = self.conns[token].as_mut().expect("caller checked");
                                conn.state = ConnState::Computing;
                                conn.deadline = None;
                                return Flush::Pending;
                            }
                            Err(TrySendError::Full(_)) => {
                                // Load shed: refuse at the door, tell
                                // the client when to come back.
                                Metrics::inc(&self.metrics.shed_total);
                                Some((
                                    429,
                                    http::response(
                                        429,
                                        "text/plain; charset=utf-8",
                                        &["Retry-After: 1".to_owned()],
                                        b"compute queue full, retry shortly\n",
                                        keep_alive,
                                    ),
                                ))
                            }
                            Err(TrySendError::Disconnected(_)) => Some((
                                500,
                                http::response(
                                    500,
                                    "text/plain; charset=utf-8",
                                    &[],
                                    b"compute pool unavailable\n",
                                    false,
                                ),
                            )),
                        }
                    }
                    Err(bad) => {
                        Metrics::inc(&self.metrics.bad_requests);
                        Some((
                            bad.status,
                            http::response(
                                bad.status,
                                "text/plain; charset=utf-8",
                                &[],
                                format!("{}\n", bad.message).as_bytes(),
                                keep_alive,
                            ),
                        ))
                    }
                }
            }
            _ => {
                Metrics::inc(&self.metrics.bad_requests);
                Some((
                    404,
                    http::response(
                        404,
                        "text/plain; charset=utf-8",
                        &[],
                        b"not found\n",
                        keep_alive,
                    ),
                ))
            }
        };

        let (status, bytes) = inline.expect("dispatched sweeps returned above");
        self.metrics.observe_status(status);
        let close = !keep_alive || status == 500;
        let conn = self.conns[token].as_mut().expect("caller checked");
        conn.out = bytes;
        conn.out_pos = 0;
        conn.close_after_write |= close;
        conn.state = ConnState::Writing;
        conn.deadline = Some(Instant::now() + self.write_timeout);
        self.flush(token)
    }

    /// Drains the outbound buffer as far as the socket allows and
    /// performs the post-response transition when it empties.
    fn flush(&mut self, token: usize) -> Flush {
        let Some(conn) = self.conns[token].as_mut() else {
            return Flush::Closed;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(token);
                    return Flush::Closed;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.state = ConnState::Writing;
                    return Flush::Pending;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return Flush::Closed;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write {
            self.close(token);
            return Flush::Closed;
        }
        conn.state = ConnState::Reading;
        conn.deadline = Some(
            Instant::now() + {
                if conn.buf.is_empty() {
                    self.idle_timeout
                } else {
                    self.read_timeout
                }
            },
        );
        Flush::Done
    }
}
