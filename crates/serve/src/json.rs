//! Minimal JSON emission.
//!
//! The service's response bodies are JSON, but the workspace carries
//! no serialisation dependency — responses are small and flat, so a
//! string escaper and two tiny builders cover everything. Emission
//! is deterministic: fields appear in insertion order and numbers
//! format via Rust's shortest-round-trip `Display`, so identical
//! responses are byte-identical (the cache-correctness smoke test
//! relies on this).

use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one JSON object, fields in insertion order.
#[derive(Debug, Default)]
pub struct Object {
    body: String,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite, which JSON cannot
    /// represent).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.body.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut body = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&item);
    }
    body.push(']');
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builds_in_order() {
        let obj = Object::new()
            .str("name", "gshare")
            .u64("count", 3)
            .f64("rate", 0.125)
            .raw("tags", &array(vec!["\"a\"".to_owned()]))
            .build();
        assert_eq!(
            obj,
            "{\"name\":\"gshare\",\"count\":3,\"rate\":0.125,\"tags\":[\"a\"]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Object::new().f64("x", f64::NAN).build(), "{\"x\":null}");
    }

    #[test]
    fn empty_array_and_object() {
        assert_eq!(array(Vec::new()), "[]");
        assert_eq!(Object::new().build(), "{}");
    }
}
