//! `bpred-serve` binary: the sweep service over HTTP, plus store
//! maintenance subcommands.
//!
//! ```text
//! serve [--addr HOST:PORT] [--cache-dir DIR] [--shards N] [--workers N]
//!       [--queue N] [--max-branches N] [--peers HOST:PORT,...]
//! serve store migrate DIR     pack a legacy flat object tree into segments
//! serve store stats DIR       print tier sizes and counts
//! ```
//!
//! `--cache-dir` defaults to `BPRED_CACHE_DIR` when set; with neither,
//! the server runs uncached (every cell simulates). The bound address
//! is printed on startup — use port 0 to let the OS pick.
//!
//! Env knobs (flags win): `BPRED_SERVE_QUEUE` (compute queue depth),
//! `BPRED_SERVE_TIMEOUT_MS` (read/write timeout),
//! `BPRED_SERVE_IDLE_MS` (keep-alive idle timeout),
//! `BPRED_SERVE_PEERS` (peer nodes for cell exchange),
//! `BPRED_STORE_HOT_BYTES` / `BPRED_STORE_SEAL_BYTES` /
//! `BPRED_STORE_BACKEND` (store tuning).

use std::process::ExitCode;

use bpred_serve::peers::PeerSet;
use bpred_serve::server::{Server, ServerConfig};
use bpred_serve::store::{self, Backend, ResultStore, StoreOptions};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--cache-dir DIR] [--shards N] [--workers N]\n\
         \x20            [--queue N] [--max-branches N] [--peers HOST:PORT,...]\n\
         \x20      serve store migrate DIR\n\
         \x20      serve store stats DIR\n\
         \n\
         endpoints:\n\
         \x20 GET /healthz\n\
         \x20 GET /metrics\n\
         \x20 GET /sweep?workload=<name>&configs=<cfg>;<cfg>[&seed=N][&branches=N][&warmup=N]\n\
         \x20 GET /cell/<digest>   (peer cell exchange)\n\
         \x20 PUT /cell/<digest>\n\
         \n\
         defaults: --addr 127.0.0.1:8199, --shards 2, --workers 4, --max-branches 2000000,\n\
         --queue $BPRED_SERVE_QUEUE (64), --cache-dir $BPRED_CACHE_DIR (unset: uncached),\n\
         --peers $BPRED_SERVE_PEERS (unset: no peer fetch);\n\
         timeouts via BPRED_SERVE_TIMEOUT_MS (10000) and BPRED_SERVE_IDLE_MS (30000);\n\
         store tuning via BPRED_STORE_HOT_BYTES, BPRED_STORE_SEAL_BYTES, BPRED_STORE_BACKEND"
    );
    std::process::exit(2);
}

/// `serve store migrate DIR` — pack a legacy flat tree into segments.
fn store_migrate(dir: &str) -> ExitCode {
    // Opening the packed backend migrates any `objects/` tree it
    // finds; all this subcommand adds is the report.
    let options = StoreOptions {
        backend: Backend::Packed,
        ..StoreOptions::from_env()
    };
    match ResultStore::open_with(dir, options) {
        Ok(store) => {
            match store.migration() {
                Some(report) => println!(
                    "migrated {} objects ({} bytes) into pack segments, skipped {} corrupt",
                    report.migrated, report.bytes, report.skipped
                ),
                None => println!("no legacy objects/ tree; store is already packed"),
            }
            println!(
                "store now holds {} cells in {} segments ({} payload bytes)",
                store.len(),
                store.segments(),
                store.total_bytes()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot open store at {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `serve store stats DIR` — sizes and counts per tier, read-only
/// with respect to the legacy tree (no auto-migration).
fn store_stats(dir: &str) -> ExitCode {
    let options = StoreOptions {
        backend: Backend::Packed,
        auto_migrate: false,
        ..StoreOptions::from_env()
    };
    match ResultStore::open_with(dir, options) {
        Ok(store) => {
            println!("engine version : {}", store::engine_version());
            println!("cells          : {}", store.len());
            println!("segments       : {}", store.segments());
            println!("payload bytes  : {}", store.total_bytes());
            let legacy = std::path::Path::new(dir).join("objects");
            if legacy.is_dir() {
                let objects: usize = std::fs::read_dir(&legacy)
                    .map(|fans| {
                        fans.filter_map(|f| f.ok())
                            .filter_map(|f| std::fs::read_dir(f.path()).ok())
                            .map(|files| files.count())
                            .sum()
                    })
                    .unwrap_or(0);
                println!("legacy objects : {objects} (run `serve store migrate {dir}`)");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot open store at {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("store") {
        return match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("migrate"), Some(dir)) if args.len() == 3 => store_migrate(dir),
            (Some("stats"), Some(dir)) if args.len() == 3 => store_stats(dir),
            _ => usage(),
        };
    }

    let mut config = ServerConfig {
        addr: "127.0.0.1:8199".to_owned(),
        ..ServerConfig::default()
    };
    if let Ok(dir) = std::env::var("BPRED_CACHE_DIR") {
        if !dir.is_empty() {
            config.cache_dir = Some(dir.into());
        }
    }

    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("error: {name} needs a value");
            usage();
        })
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = value(&args, &mut i, "--addr"),
            "--cache-dir" => config.cache_dir = Some(value(&args, &mut i, "--cache-dir").into()),
            "--peers" => {
                let list = value(&args, &mut i, "--peers");
                config.store.peers = PeerSet::from_list(&list);
                if config.store.peers.is_none() {
                    eprintln!("error: --peers needs a comma-separated host:port list");
                    return ExitCode::from(2);
                }
            }
            "--workers" => {
                config.workers = match value(&args, &mut i, "--workers").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --workers needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--shards" => {
                config.shards = match value(&args, &mut i, "--shards").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --shards needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--queue" => {
                config.queue_depth = match value(&args, &mut i, "--queue").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --queue needs a positive depth");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-branches" => {
                config.max_branches = match value(&args, &mut i, "--max-branches").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --max-branches needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let cache_note = config
        .cache_dir
        .as_ref()
        .map(|d| format!("result store at {}", d.display()))
        .unwrap_or_else(|| "uncached (set BPRED_CACHE_DIR or --cache-dir)".to_owned());
    let peer_note = config
        .store
        .peers
        .as_ref()
        .map(|p| format!("peers: {}", p.addrs().join(", ")));
    match Server::start(config) {
        Ok(handle) => {
            println!("bpred-serve listening on http://{}", handle.addr());
            println!("{cache_note}");
            if let Some(note) = peer_note {
                println!("{note}");
            }
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            ExitCode::FAILURE
        }
    }
}
