//! `bpred-serve` binary: the sweep service over HTTP.
//!
//! ```text
//! serve [--addr HOST:PORT] [--cache-dir DIR] [--shards N] [--workers N]
//!       [--queue N] [--max-branches N]
//! ```
//!
//! `--cache-dir` defaults to `BPRED_CACHE_DIR` when set; with neither,
//! the server runs uncached (every cell simulates). The bound address
//! is printed on startup — use port 0 to let the OS pick.
//!
//! Env knobs (flags win): `BPRED_SERVE_QUEUE` (compute queue depth),
//! `BPRED_SERVE_TIMEOUT_MS` (read/write timeout),
//! `BPRED_SERVE_IDLE_MS` (keep-alive idle timeout).

use std::process::ExitCode;

use bpred_serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--cache-dir DIR] [--shards N] [--workers N]\n\
         \x20            [--queue N] [--max-branches N]\n\
         \n\
         endpoints:\n\
         \x20 GET /healthz\n\
         \x20 GET /metrics\n\
         \x20 GET /sweep?workload=<name>&configs=<cfg>;<cfg>[&seed=N][&branches=N][&warmup=N]\n\
         \n\
         defaults: --addr 127.0.0.1:8199, --shards 2, --workers 4, --max-branches 2000000,\n\
         --queue $BPRED_SERVE_QUEUE (64), --cache-dir $BPRED_CACHE_DIR (unset: uncached);\n\
         timeouts via BPRED_SERVE_TIMEOUT_MS (10000) and BPRED_SERVE_IDLE_MS (30000)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8199".to_owned(),
        ..ServerConfig::default()
    };
    if let Ok(dir) = std::env::var("BPRED_CACHE_DIR") {
        if !dir.is_empty() {
            config.cache_dir = Some(dir.into());
        }
    }

    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("error: {name} needs a value");
            usage();
        })
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = value(&args, &mut i, "--addr"),
            "--cache-dir" => config.cache_dir = Some(value(&args, &mut i, "--cache-dir").into()),
            "--workers" => {
                config.workers = match value(&args, &mut i, "--workers").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --workers needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--shards" => {
                config.shards = match value(&args, &mut i, "--shards").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --shards needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--queue" => {
                config.queue_depth = match value(&args, &mut i, "--queue").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --queue needs a positive depth");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-branches" => {
                config.max_branches = match value(&args, &mut i, "--max-branches").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --max-branches needs a positive count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let cache_note = config
        .cache_dir
        .as_ref()
        .map(|d| format!("result store at {}", d.display()))
        .unwrap_or_else(|| "uncached (set BPRED_CACHE_DIR or --cache-dir)".to_owned());
    match Server::start(config) {
        Ok(handle) => {
            println!("bpred-serve listening on http://{}", handle.addr());
            println!("{cache_note}");
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            ExitCode::FAILURE
        }
    }
}
