//! The replay core: one canonical per-record feed path.
//!
//! Every simulation in this workspace — serial runs, batched sweeps,
//! per-branch attribution, interference classification, the sweep
//! service — replays records through exactly one code path:
//! [`ReplayCore::feed_observed`]. For a conditional branch it runs the
//! paper's two-phase protocol (predict, score after warmup, update);
//! for any other control transfer it notifies the predictor. This is
//! the *only* place in `bpred-sim` that calls
//! [`predict`](BranchPredictor::predict) or
//! [`update`](BranchPredictor::update).
//!
//! Everything the old per-purpose loops special-cased is layered on
//! top as an [`Observer`]: a hook invoked once per record, *between*
//! predict and update, with the resolved prediction and a borrow of
//! the predictor. Observers are inert by construction — they can read
//! predictor statistics but never touch predictor state or the core's
//! own bookkeeping — so attaching any combination of them leaves the
//! [`SimResult`] bit-identical to a bare run (`tests/observers.rs` at
//! the workspace root enforces this).
//!
//! The core is generic over the predictor type. The hot sweep paths
//! instantiate it with [`PredictorKernel`] and replay through
//! [`replay_dispatched`](ReplayCore::replay_dispatched), which
//! resolves the enum variant *once per stream* and runs the whole
//! record loop monomorphized; legacy call sites instantiate the core
//! with `&mut dyn BranchPredictor` (or any concrete scheme) and keep
//! trait-object semantics. Records can arrive one at a time
//! ([`feed`](ReplayCore::feed)), as a stream, or as
//! structure-of-arrays [`TraceChunk`]s
//! ([`feed_chunk`](ReplayCore::feed_chunk) /
//! [`replay_chunks`](ReplayCore::replay_chunks) /
//! [`replay_chunk_dispatched`](ReplayCore::replay_chunk_dispatched) —
//! the chunked sweep pipeline's feed path, hoisted per chunk). Every
//! shape reassembles the same record sequence through the same feed
//! site, so the replayed bit-stream is identical — dispatch and
//! memory-layout cost are the only differences.
//!
//! Sweeps that replay *many* configurations over one chunk stream go
//! one tier further: [`replay_multilane`](crate::replay_multilane)
//! (module [`multilane`](crate::multilane)) regroups compatible lanes
//! record-major and steps their counters SWAR-packed, with this core
//! pinned underneath as the scalar fallback and bit-identity oracle.
//!
//! # Examples
//!
//! Bare replay (what [`Simulator::run`](crate::Simulator::run) does):
//!
//! ```
//! use bpred_core::PredictorConfig;
//! use bpred_sim::{ReplayCore, Simulator};
//! use bpred_trace::{BranchRecord, Outcome, Trace};
//!
//! let trace: Trace = (0..100)
//!     .map(|i| BranchRecord::conditional(0x40, 0x20, Outcome::from(i % 4 != 0)))
//!     .collect();
//! let config = PredictorConfig::Gshare { history_bits: 6, col_bits: 2 };
//! let mut core = ReplayCore::new(config.kernel(), Simulator::new());
//! core.replay(&trace);
//! let result = core.finish();
//! assert_eq!(result.conditionals, 100);
//! ```
//!
//! With an observer attached:
//!
//! ```
//! use bpred_core::PredictorConfig;
//! use bpred_sim::{BranchProfiler, ReplayCore, Simulator};
//! use bpred_trace::{BranchRecord, Outcome, Trace};
//!
//! let trace: Trace = (0..100)
//!     .map(|i| BranchRecord::conditional(0x40 + 4 * (i % 2), 0x20, Outcome::Taken))
//!     .collect();
//! let mut profiler = BranchProfiler::new();
//! let mut core = ReplayCore::new(PredictorConfig::Btfn.kernel(), Simulator::new());
//! core.replay_observed(&trace, &mut profiler);
//! assert_eq!(profiler.counts().len(), 2); // two static branches seen
//! # let _ = core.finish();
//! ```

use std::borrow::Borrow;

use bpred_core::{
    AliasStats, BhtStats, BranchPredictor, KernelVisitor, PredictorConfig, PredictorKernel,
};
use bpred_trace::{BranchRecord, Outcome, TraceChunk, TraceSource};

use crate::{SimResult, Simulator};

/// Per-record instrumentation over the canonical feed path.
///
/// For every conditional branch the core calls
/// [`on_conditional`](Observer::on_conditional) after the prediction
/// is made and scored but *before* the training update — the moment a
/// hardware pipeline would know its guess and the true outcome but has
/// not yet retrained, and the point where prediction-time statistics
/// (e.g. the aliasing-conflict delta behind
/// [`InterferenceObserver`](crate::InterferenceObserver)) are still
/// readable. Non-conditional transfers arrive through
/// [`on_control_transfer`](Observer::on_control_transfer) after the
/// predictor has been notified.
///
/// Observers receive the predictor as `&dyn BranchPredictor`: they can
/// read its statistics but cannot perturb the replay, which is what
/// makes observer attachment inert. (The *core's* predict/update calls
/// stay monomorphized — only the observer's view is virtual, and only
/// observers that actually query the predictor pay for it.)
pub trait Observer {
    /// Called once per conditional branch, between predict and update.
    /// `predicted` is the predictor's guess, `scored` is false for
    /// warmup-excluded branches.
    fn on_conditional(
        &mut self,
        record: &BranchRecord,
        predicted: Outcome,
        scored: bool,
        predictor: &dyn BranchPredictor,
    ) {
        let _ = (record, predicted, scored, predictor);
    }

    /// Called once per non-conditional control transfer, after the
    /// predictor was notified.
    fn on_control_transfer(&mut self, record: &BranchRecord, predictor: &dyn BranchPredictor) {
        let _ = (record, predictor);
    }
}

/// The no-op observer: a bare replay.
impl Observer for () {}

/// Mutable references to observers observe.
impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_conditional(
        &mut self,
        record: &BranchRecord,
        predicted: Outcome,
        scored: bool,
        predictor: &dyn BranchPredictor,
    ) {
        (**self).on_conditional(record, predicted, scored, predictor);
    }

    fn on_control_transfer(&mut self, record: &BranchRecord, predictor: &dyn BranchPredictor) {
        (**self).on_control_transfer(record, predictor);
    }
}

macro_rules! tuple_observer {
    ($($name:ident : $idx:tt),+) => {
        /// Tuples fan each record out to every member, left to right.
        impl<$($name: Observer),+> Observer for ($($name,)+) {
            fn on_conditional(
                &mut self,
                record: &BranchRecord,
                predicted: Outcome,
                scored: bool,
                predictor: &dyn BranchPredictor,
            ) {
                $(self.$idx.on_conditional(record, predicted, scored, predictor);)+
            }

            fn on_control_transfer(
                &mut self,
                record: &BranchRecord,
                predictor: &dyn BranchPredictor,
            ) {
                $(self.$idx.on_control_transfer(record, predictor);)+
            }
        }
    };
}

tuple_observer!(A: 0);
tuple_observer!(A: 0, B: 1);
tuple_observer!(A: 0, B: 1, C: 2);
tuple_observer!(A: 0, B: 1, C: 2, D: 3);

/// One predictor advancing through a record stream, with the scoring
/// and statistics bookkeeping shared by every replay flavour.
///
/// A core is built around a predictor ([`new`](ReplayCore::new) or
/// [`from_config`](ReplayCore::from_config)), fed records one at a
/// time ([`feed`](ReplayCore::feed) /
/// [`feed_observed`](ReplayCore::feed_observed), or whole sources via
/// [`replay`](ReplayCore::replay) /
/// [`replay_observed`](ReplayCore::replay_observed)), and consumed
/// with [`finish`](ReplayCore::finish) into the [`SimResult`] the old
/// engine produced. Alias/BHT statistics are reported as deltas from
/// the core's construction, so reusing a predictor across cores never
/// double-counts.
#[derive(Debug)]
pub struct ReplayCore<P: BranchPredictor> {
    predictor: P,
    warmup: usize,
    seen: usize,
    scored: u64,
    mispredictions: u64,
    alias_before: AliasStats,
    bht_before: BhtStats,
}

impl ReplayCore<PredictorKernel> {
    /// A core over the enum-dispatched kernel of `config` — the hot
    /// path the batched sweep lanes use.
    pub fn from_config(config: &PredictorConfig, simulator: Simulator) -> Self {
        ReplayCore::new(config.kernel(), simulator)
    }

    /// Replays `source` with the kernel's variant resolved *once*, so
    /// the whole record loop runs monomorphized.
    ///
    /// Per-record enum dispatch costs an indirect jump per predict and
    /// per update that the replay loop cannot hide; hoisting the match
    /// out of the loop recovers fully static dispatch for entire
    /// streams. Record-interleaved consumers (the batch lanes) cannot
    /// hoist and keep using [`feed`](ReplayCore::feed). The replayed
    /// bit-stream is identical either way.
    pub fn replay_dispatched<S: TraceSource + ?Sized>(&mut self, source: &S) {
        self.run_hoisted(FusedStreamJob { source });
    }

    /// [`replay_dispatched`](ReplayCore::replay_dispatched) with an
    /// observer attached.
    pub fn replay_observed_dispatched<S, O>(&mut self, source: &S, observer: &mut O)
    where
        S: TraceSource + ?Sized,
        O: Observer,
    {
        self.run_hoisted(StreamJob { source, observer });
    }

    /// Replays a whole chunk sequence with the kernel's variant
    /// resolved once for the entire run, iterating each chunk's
    /// structure-of-arrays storage in the monomorphized inner loop.
    ///
    /// Accepts owned chunks, references, or `Arc`s (anything
    /// [`Borrow<TraceChunk>`]), so both a [`TraceSource::chunks`] view
    /// and the sweep pipeline's shared ring chunks replay through the
    /// same path. Record semantics are identical to
    /// [`replay`](ReplayCore::replay) over the concatenated records.
    pub fn replay_chunks<I>(&mut self, chunks: I)
    where
        I: IntoIterator,
        I::Item: Borrow<TraceChunk>,
    {
        self.run_hoisted(FusedChunksJob { chunks });
    }

    /// Feeds one chunk with the kernel's variant resolved once per
    /// chunk — the batch workers' feed path, where lanes interleave at
    /// chunk granularity so a whole-stream hoist is impossible but a
    /// per-chunk hoist still amortises dispatch over thousands of
    /// records.
    #[inline]
    pub fn replay_chunk_dispatched(&mut self, chunk: &TraceChunk) {
        self.run_hoisted(FusedChunksJob {
            chunks: std::iter::once(chunk),
        });
    }

    /// Resolves the kernel's variant once and runs `job` against a
    /// concrete-typed twin of this core, folding the bookkeeping (and
    /// the trained predictor) back afterwards. Baselines stay the
    /// outer core's: `finish` must report deltas from construction,
    /// not from this call.
    fn run_hoisted<J: ReplayJob>(&mut self, job: J) {
        struct Hoisted<'a, J> {
            core: &'a mut ReplayCore<PredictorKernel>,
            job: J,
        }

        impl<J: ReplayJob> KernelVisitor for Hoisted<'_, J> {
            type Output = ();

            fn visit<P: BranchPredictor>(self, predictor: P, rewrap: fn(P) -> PredictorKernel) {
                let mut inner = ReplayCore {
                    predictor,
                    warmup: self.core.warmup,
                    seen: self.core.seen,
                    scored: self.core.scored,
                    mispredictions: self.core.mispredictions,
                    alias_before: self.core.alias_before,
                    bht_before: self.core.bht_before,
                };
                self.job.run(&mut inner);
                self.core.seen = inner.seen;
                self.core.scored = inner.scored;
                self.core.mispredictions = inner.mispredictions;
                self.core.predictor = rewrap(inner.predictor);
            }
        }

        let kernel = std::mem::replace(
            &mut self.predictor,
            PredictorKernel::AlwaysNotTaken(bpred_core::AlwaysNotTaken),
        );
        kernel.visit(Hoisted { core: self, job });
    }
}

/// A unit of replay work runnable against any concrete predictor
/// type: the bridge between the kernel visitor (which monomorphizes
/// per scheme) and the various feed shapes (record streams, chunk
/// sequences).
trait ReplayJob {
    /// Feeds the job's records through `core`.
    fn run<P: BranchPredictor>(self, core: &mut ReplayCore<P>);
}

/// Replays a full [`TraceSource`] stream with an observer.
struct StreamJob<'a, S: ?Sized, O> {
    source: &'a S,
    observer: &'a mut O,
}

impl<S: TraceSource + ?Sized, O: Observer> ReplayJob for StreamJob<'_, S, O> {
    fn run<P: BranchPredictor>(self, core: &mut ReplayCore<P>) {
        for record in self.source.stream() {
            core.feed_observed(&record, &mut *self.observer);
        }
    }
}

/// Replays a full [`TraceSource`] stream through the fused
/// no-observer [`feed`](ReplayCore::feed).
struct FusedStreamJob<'a, S: ?Sized> {
    source: &'a S,
}

impl<S: TraceSource + ?Sized> ReplayJob for FusedStreamJob<'_, S> {
    fn run<P: BranchPredictor>(self, core: &mut ReplayCore<P>) {
        for record in self.source.stream() {
            core.feed(&record);
        }
    }
}

/// Replays a chunk sequence through the fused no-observer
/// [`feed_chunk`](ReplayCore::feed_chunk) — the sweep pipeline's
/// inner loop.
struct FusedChunksJob<I> {
    chunks: I,
}

impl<I> ReplayJob for FusedChunksJob<I>
where
    I: IntoIterator,
    I::Item: Borrow<TraceChunk>,
{
    fn run<P: BranchPredictor>(self, core: &mut ReplayCore<P>) {
        for chunk in self.chunks {
            core.feed_chunk(chunk.borrow());
        }
    }
}

impl<P: BranchPredictor> ReplayCore<P> {
    /// A core that owns (or mutably borrows) `predictor`, scoring
    /// under `simulator`'s warmup policy.
    pub fn new(predictor: P, simulator: Simulator) -> Self {
        ReplayCore {
            warmup: simulator.warmup(),
            seen: 0,
            scored: 0,
            mispredictions: 0,
            alias_before: predictor.alias_stats().unwrap_or_default(),
            bht_before: predictor.bht_stats().unwrap_or_default(),
            predictor,
        }
    }

    /// The predictor being driven.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Feeds one record through the canonical path without
    /// instrumentation.
    ///
    /// With no observer to notify between predict and update, this
    /// uses the predictor's fused
    /// [`predict_then_update`](BranchPredictor::predict_then_update)
    /// path (one table walk instead of two). The trait contract makes
    /// the fused call exactly equivalent to the
    /// [`feed_observed`](ReplayCore::feed_observed) sequence, and the
    /// workspace observer tests replay both paths over the same traces
    /// and require identical results.
    #[inline]
    pub fn feed(&mut self, record: &BranchRecord) {
        if record.is_conditional() {
            let scored = self.seen >= self.warmup;
            let predicted =
                self.predictor
                    .predict_then_update(record.pc, record.target, record.outcome);
            self.scored += scored as u64;
            self.mispredictions += (scored & (predicted != record.outcome)) as u64;
            self.seen += 1;
        } else {
            self.predictor.note_control_transfer(record);
        }
    }

    /// Feeds one record through the canonical path: predict, score
    /// after warmup, notify `observer`, update. This is the single
    /// predict/update feed site of the whole simulation layer.
    #[inline]
    pub fn feed_observed<O: Observer>(&mut self, record: &BranchRecord, observer: &mut O) {
        if record.is_conditional() {
            let predicted = self.predictor.predict(record.pc, record.target);
            let scored = self.seen >= self.warmup;
            // Branch-free scoring: a mispredict-dependent branch here
            // would itself mispredict at roughly the rate being measured.
            self.scored += scored as u64;
            self.mispredictions += (scored & (predicted != record.outcome)) as u64;
            self.seen += 1;
            observer.on_conditional(record, predicted, scored, &self.predictor);
            self.predictor
                .update(record.pc, record.target, record.outcome);
        } else {
            self.predictor.note_control_transfer(record);
            observer.on_control_transfer(record, &self.predictor);
        }
    }

    /// Feeds every record of `chunk` through the canonical path,
    /// iterating the chunk's structure-of-arrays storage with a
    /// concrete (monomorphized) iterator. Uses the fused no-observer
    /// [`feed`](ReplayCore::feed) per record.
    #[inline]
    pub fn feed_chunk(&mut self, chunk: &TraceChunk) {
        for record in chunk.iter() {
            self.feed(&record);
        }
    }

    /// [`feed_chunk`](ReplayCore::feed_chunk) with an observer
    /// attached. Records are reassembled from the parallel arrays one
    /// at a time and fed through
    /// [`feed_observed`](ReplayCore::feed_observed) — the single
    /// predict/update site — so chunked and record-at-a-time replays
    /// are the same bit-stream by construction.
    #[inline]
    pub fn feed_chunk_observed<O: Observer>(&mut self, chunk: &TraceChunk, observer: &mut O) {
        for record in chunk.iter() {
            self.feed_observed(&record, observer);
        }
    }

    /// Feeds every record of `source` through the core.
    pub fn replay<S: TraceSource + ?Sized>(&mut self, source: &S) {
        for record in source.stream() {
            self.feed(&record);
        }
    }

    /// Feeds every record of `source` through the core with `observer`
    /// attached.
    pub fn replay_observed<S, O>(&mut self, source: &S, observer: &mut O)
    where
        S: TraceSource + ?Sized,
        O: Observer,
    {
        for record in source.stream() {
            self.feed_observed(&record, observer);
        }
    }

    /// Closes the run: the aggregate result, with alias/BHT statistics
    /// as deltas over the core's lifetime.
    pub fn finish(self) -> SimResult {
        let alias = self.predictor.alias_stats().map(|after| AliasStats {
            accesses: after.accesses - self.alias_before.accesses,
            conflicts: after.conflicts - self.alias_before.conflicts,
            harmless_conflicts: after.harmless_conflicts - self.alias_before.harmless_conflicts,
        });
        let bht = self.predictor.bht_stats().map(|after| BhtStats {
            accesses: after.accesses - self.bht_before.accesses,
            misses: after.misses - self.bht_before.misses,
        });
        SimResult {
            predictor: self.predictor.name(),
            state_bits: self.predictor.state_bits(),
            conditionals: self.scored,
            mispredictions: self.mispredictions,
            alias,
            bht,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::AddressIndexed;
    use bpred_trace::{Outcome, Trace};

    fn trace(n: usize) -> Trace {
        (0..n)
            .map(|i| {
                BranchRecord::conditional(
                    0x400 + 4 * (i as u64 % 8),
                    0x100,
                    Outcome::from(i % 3 != 0),
                )
            })
            .collect()
    }

    /// Counts callbacks and asserts the scored flag honours warmup.
    #[derive(Default)]
    struct Counting {
        conditionals: usize,
        scored: usize,
        transfers: usize,
    }

    impl Observer for Counting {
        fn on_conditional(
            &mut self,
            _record: &BranchRecord,
            _predicted: Outcome,
            scored: bool,
            _predictor: &dyn BranchPredictor,
        ) {
            self.conditionals += 1;
            if scored {
                self.scored += 1;
            }
        }

        fn on_control_transfer(
            &mut self,
            _record: &BranchRecord,
            _predictor: &dyn BranchPredictor,
        ) {
            self.transfers += 1;
        }
    }

    #[test]
    fn observer_sees_every_record_with_warmup_flag() {
        let mut t = trace(50);
        t.push(BranchRecord::jump(0x900, 0x40));
        let mut observer = Counting::default();
        let mut core = ReplayCore::new(AddressIndexed::new(4), Simulator::with_warmup(20));
        core.replay_observed(&t, &mut observer);
        assert_eq!(observer.conditionals, 50);
        assert_eq!(observer.scored, 30);
        assert_eq!(observer.transfers, 1);
        assert_eq!(core.finish().conditionals, 30);
    }

    #[test]
    fn observed_and_bare_replays_are_identical() {
        let t = trace(400);
        let mut bare = ReplayCore::from_config(
            &PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 2,
            },
            Simulator::new(),
        );
        bare.replay(&t);

        let mut observer = (Counting::default(), Counting::default());
        let mut observed = ReplayCore::from_config(
            &PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 2,
            },
            Simulator::new(),
        );
        observed.replay_observed(&t, &mut observer);
        assert_eq!(bare.finish(), observed.finish());
        assert_eq!(observer.0.conditionals, 400);
        assert_eq!(observer.1.conditionals, 400);
    }

    #[test]
    fn borrowed_predictor_reports_deltas() {
        let mut p = AddressIndexed::new(0);
        let t = trace(30);
        for _ in 0..2 {
            let mut core = ReplayCore::new(&mut p, Simulator::new());
            core.replay(&t);
            let result = core.finish();
            assert_eq!(result.alias.expect("instrumented").accesses, 30);
        }
    }
}
