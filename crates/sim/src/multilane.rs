//! Multi-lane replay: many predictor configurations advance through
//! one record stream with data-parallel kernels.
//!
//! The scalar batch engine replays lane-major: each lane walks a whole
//! chunk through its own serial predict/update chain, so throughput is
//! bounded by the latency of one chain. [`LaneSet`] regroups the work
//! by *dispatch tier* so independent lanes (and, for history-free
//! schemes, independent records) are stepped together:
//!
//! * **Record-parallel statics** — always-taken, always-not-taken and
//!   BTFN have no state, so whole chunks collapse into popcounts over
//!   the [`TraceChunk`] metadata words (sixteen records per `u64` op)
//!   and one branchless pass over the pc/target columns.
//! * **Lane groups** — every configuration whose lookup reduces to a
//!   [`WalkPlan`] (a first-level history read, one to three counter
//!   reads over a shared arena, and a combine/update rule) shares a
//!   monomorphic loop with the other lanes of the same [`PlanKind`]:
//!   the chunk metadata is reduced to a dense `(pc, taken)`
//!   conditional list once (sixteen records per `u64` nibble op), and
//!   up to [`cell::PACKED_LANES`] lanes step their packed cells
//!   through a shared arena. The original global-history family
//!   (address-indexed, GAg/GAs, gshare) runs the single-read *fused*
//!   loop of [`GlobalGroup`], lane-major with all lane parameters and
//!   accumulators register-resident; PAg/PAs (perfect or finite
//!   first level) and SAg/SAs add a per-address/per-set history read
//!   in front of the same counter step ([`TwoLevelGroup`]); agree,
//!   bi-mode and gskew run their dealiased combine rules
//!   ([`AgreeGroup`], [`BiModeGroup`], [`GskewGroup`]); the
//!   multi-structure schemes run their own fused loops — tournament's
//!   chooser over two component reads ([`TournamentGroup`]), YAGS's
//!   tagged exception caches over a choice bias ([`TaggedGroup`]),
//!   path-based row selection fed by every control transfer
//!   ([`PathGroup`]), and the one-bit LastTime table
//!   ([`LastTimeGroup`]). Groups iterate lanes in *row-blocked* order
//!   (descending region size, ties by configuration position — the
//!   same order the arena placer assigns bases), so consecutive lanes
//!   of a sweep walk adjacent arena regions and same-row reads land
//!   in neighbouring cache lines. Two
//!   record-major variants of the single-read loop are kept behind
//!   `BPRED_GROUP_STEP` — one stepping every gathered counter in a
//!   single [`cell::step_packed`] word op, one stepping per lane —
//!   to decompose where the speedup comes from. With the
//!   off-by-default `portable-simd` feature the single-read group
//!   instead runs eight lanes per `std::simd` gather/scatter vector.
//! * **Scalar fallback** — every scheme without a plan (today only
//!   the degenerate zero-bit gskew bank, plus everything when
//!   `BPRED_FORCE_SCALAR` is set) replays through the hoisted
//!   [`ReplayCore`] dispatch unchanged. The scalar kernel remains the
//!   oracle: multilane results are bit-identical by construction and
//!   by test (`tests/multilane.rs` at the workspace root).
//!
//! Lane grouping never straddles plan kinds: a group holds only
//! configurations whose per-record transition is structurally
//! identical (same first-level shape, same read count, same combine
//! rule), so one monomorphic loop serves the whole group.
//!
//! # Environment knobs
//!
//! * `BPRED_FORCE_SCALAR` — any value other than empty/`0` pins every
//!   lane to the scalar tier (the determinism suite runs under this in
//!   CI).
//! * `BPRED_GROUP_STEP=scalar` — single-read lane groups go
//!   record-major and step counters one lane at a time (isolates the
//!   grouping + decode-once win); `BPRED_GROUP_STEP=swar` —
//!   record-major with the packed [`cell::step_packed`] counter step
//!   (isolates the packed step). Any other value selects the fused
//!   lane-major default. Used to decompose the speedup in
//!   EXPERIMENTS.md.
//! * `BPRED_GROUP_PREFETCH=auto|on|off` — whether the single-read
//!   fused loop runs in a blocked two-phase form: a short
//!   address-generation pass touches the upcoming arena slots (the
//!   known hot gather) before the counter read-modify-write pass
//!   consumes them. The default `auto` turns the two-phase form on
//!   only for groups whose arena footprint exceeds the spill
//!   threshold (`BPRED_GROUP_PREFETCH_THRESHOLD`, bytes, default
//!   [`PREFETCH_SPILL_BYTES`]): prefetch costs ~4% while arenas stay
//!   cache-resident and only earns its keep once the gather misses.
//!   `on`/`off` (or the legacy `1`/`0`) force it either way.
//!
//! None of the knobs changes results, only the code path that computes
//! them.

use std::collections::HashMap;

use bpred_core::{
    cell, reset_pattern, AliasStats, BhtStats, HistoryTable, IndexFn, Level1Read, PlanKind,
    PredictorConfig, PredictorKernel, SetAssocBht, TableRead, TwoBitCounter, WalkPlan,
    SKEW_BANK_MULTIPLIERS,
};
use bpred_trace::{Outcome, TraceChunk, TraceSource};

use crate::{ReplayCore, SimResult, Simulator};

/// One scalar-tier lane: a [`ReplayCore`] over the enum-dispatched
/// kernel, exactly as the pre-multilane batch engine ran it.
type Lane = ReplayCore<PredictorKernel>;

/// Mask of the low bit of every 4-bit metadata field in a chunk
/// metadata word.
const NIBBLE_LO: u64 = 0x1111_1111_1111_1111;

/// Records per block of the two-phase prefetch form of the fused loop
/// (`BPRED_GROUP_PREFETCH`): long enough to cover the load latency the
/// touch pass hides, short enough that the touched lines are still
/// resident when the read-modify-write pass consumes them.
const PREFETCH_WINDOW: usize = 16;

/// `bits` low ones (0 for `bits == 0`); widths here are at most
/// [`bpred_core::TableGeometry::MAX_TOTAL_BITS`].
#[inline]
fn low_mask(bits: u32) -> u64 {
    (1u64 << bits) - 1
}

/// `bits` low ones for any width `0..=64` — [`low_mask`] is enough
/// for table geometries (≤ 30 bits), but gskew history registers may
/// be up to 64 bits wide.
#[inline]
fn wide_low_mask(bits: u32) -> u64 {
    match bits {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// The value a lane's history register equals exactly when its
/// pattern is all-taken, or the `u64::MAX` sentinel when the register
/// is absent/zero-width (the register then never leaves zero, which
/// cannot reach the sentinel; a genuine 64-bit all-ones history *is*
/// the sentinel value, consistently).
#[inline]
fn all_taken_reference(history_bits: u32) -> u64 {
    if history_bits > 0 {
        wide_low_mask(history_bits)
    } else {
        u64::MAX
    }
}

/// Whether `BPRED_FORCE_SCALAR` pins every lane to the scalar tier.
fn force_scalar() -> bool {
    matches!(std::env::var("BPRED_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0")
}

/// Default arena-footprint threshold (bytes) above which
/// [`PrefetchMode::Auto`] turns the two-phase prefetch form on: the
/// point where a group's arena has outgrown a typical L2 and the
/// gather starts missing. Overridable via
/// `BPRED_GROUP_PREFETCH_THRESHOLD`.
pub const PREFETCH_SPILL_BYTES: u64 = 4 << 20;

/// The `BPRED_GROUP_PREFETCH` policy: whether a lane group runs the
/// blocked two-phase fused loop with arena-slot prefetch (module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrefetchMode {
    /// Footprint-gated: on only when the group's arena exceeds the
    /// spill threshold. The default.
    Auto,
    /// Always on (legacy `1` accepted).
    On,
    /// Always off (legacy `0` accepted).
    Off,
}

impl PrefetchMode {
    /// Resolves the policy for one group given its arena footprint.
    fn resolve(self, arena_bytes: u64, threshold: u64) -> bool {
        match self {
            PrefetchMode::On => true,
            PrefetchMode::Off => false,
            PrefetchMode::Auto => arena_bytes > threshold,
        }
    }
}

/// The `BPRED_GROUP_PREFETCH` knob (module docs): unset/empty/`auto`
/// gate on arena footprint, `off`/`0` force off, anything else
/// (including the legacy `1`) forces on.
fn group_prefetch() -> PrefetchMode {
    match std::env::var("BPRED_GROUP_PREFETCH").as_deref() {
        Err(_) | Ok("") | Ok("auto") => PrefetchMode::Auto,
        Ok("off") | Ok("0") => PrefetchMode::Off,
        Ok(_) => PrefetchMode::On,
    }
}

/// The spill threshold (bytes) for [`PrefetchMode::Auto`]:
/// `BPRED_GROUP_PREFETCH_THRESHOLD` or [`PREFETCH_SPILL_BYTES`].
fn prefetch_threshold() -> u64 {
    std::env::var("BPRED_GROUP_PREFETCH_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PREFETCH_SPILL_BYTES)
}

/// Counter-step strategy inside a lane group (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupStep {
    /// Lane-major with register-resident parameters and a fused
    /// branch-free cell step — the default (fastest) tier.
    Fused,
    /// Record-major, all gathered counters stepped in one
    /// [`cell::step_packed`] word op (decomposition knob).
    RecordSwar,
    /// Record-major, counters stepped one lane at a time through the
    /// scalar oracle [`cell::step`] (decomposition knob).
    RecordScalar,
}

/// The `BPRED_GROUP_STEP` decomposition knob (module docs).
fn group_step() -> GroupStep {
    match std::env::var("BPRED_GROUP_STEP").as_deref() {
        Ok("swar") => GroupStep::RecordSwar,
        Ok("scalar") => GroupStep::RecordScalar,
        _ => GroupStep::Fused,
    }
}

/// The dispatch tier the next [`LaneSet`] will use for groupable
/// configurations: `"scalar"` under `BPRED_FORCE_SCALAR`, `"simd"`
/// when the `portable-simd` feature is compiled in, `"swar"`
/// otherwise. Exported (with this label) as the
/// `bpred_replay_pairs_per_sec` gauge's `tier` by `bpred-serve`.
pub fn dispatch_tier() -> &'static str {
    if force_scalar() {
        "scalar"
    } else if cfg!(feature = "portable-simd") {
        "simd"
    } else {
        "swar"
    }
}

/// Stable labels of every dispatch tier / plan family a lane can land
/// on, in [`LaneSet::lane_tier_counts`] order. Exported as the
/// `plan` label values of the `bpred_replay_group_lanes` gauge.
pub const LANE_TIER_LABELS: [&str; 13] = [
    "direct",
    "pas-perfect",
    "pas-finite",
    "per-set",
    "agree",
    "bimode",
    "gskew",
    "tournament",
    "yags",
    "path",
    "last-time",
    "static",
    "scalar",
];

/// Conditional/taken-conditional counts of a chunk, sixteen records
/// per word op: a record is conditional when its three kind bits are
/// zero, and the taken bit sits below them.
fn conditional_counts(chunk: &TraceChunk) -> (u64, u64) {
    let len = chunk.len();
    let words = chunk.meta_words();
    let tail = len % TraceChunk::META_RECORDS_PER_WORD;
    let mut conditionals = 0u64;
    let mut taken = 0u64;
    for (i, &word) in words.iter().enumerate() {
        // Zeroed high fields of the final word would read as
        // conditional-not-taken; mask them off.
        let valid = if i + 1 == words.len() && tail != 0 {
            (1u64 << (4 * tail)) - 1
        } else {
            !0
        };
        let word = word & valid;
        let kind = (word >> 1) | (word >> 2) | (word >> 3);
        let cond = !kind & NIBBLE_LO & valid;
        conditionals += cond.count_ones() as u64;
        taken += (cond & word).count_ones() as u64;
    }
    (conditionals, taken)
}

/// Extracts a chunk's dense conditional stream into the reused
/// scratch column: element `i` is `(pc << 1) | taken` of the i-th
/// conditional (addresses fit 62 bits, see [`cell::EMPTY_OWNER`]).
/// Decoded once per chunk and shared by every lane group, so the
/// group kernels stream a single dense column with no metadata
/// re-decoding and no branch on record kind.
fn collect_conditionals(chunk: &TraceChunk, stream_out: &mut Vec<u64>) {
    stream_out.clear();
    let mut meta = chunk.meta_words().iter();
    let mut word_bits = 0u64;
    let mut in_word = 0u32;
    for &pc in chunk.pcs() {
        if in_word == 0 {
            word_bits = meta.next().copied().unwrap_or(0);
            in_word = TraceChunk::META_RECORDS_PER_WORD as u32;
        }
        let bits = word_bits & 0xF;
        word_bits >>= TraceChunk::META_BITS_PER_RECORD;
        in_word -= 1;
        if bits & 0b1110 == 0 {
            stream_out.push((pc << 1) | (bits & 1));
        }
    }
}

/// The three stateless schemes the record-parallel tier covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StaticScheme {
    AlwaysTaken,
    AlwaysNotTaken,
    Btfn,
}

/// One record-parallel static lane.
#[derive(Debug)]
struct StaticUnit {
    /// Result slot in the caller's configuration order.
    index: usize,
    scheme: StaticScheme,
    mispredictions: u64,
}

impl StaticUnit {
    /// Scores a whole chunk. `conditionals`/`taken` are the chunk's
    /// shared counts; the bulk word paths apply once the warmup prefix
    /// is consumed, with a per-record fallback for the (rare) chunk
    /// that crosses the warmup boundary.
    fn replay_chunk(
        &mut self,
        chunk: &TraceChunk,
        seen: u64,
        warmup: u64,
        conditionals: u64,
        taken: u64,
    ) {
        if seen >= warmup {
            self.mispredictions += match self.scheme {
                StaticScheme::AlwaysTaken => conditionals - taken,
                StaticScheme::AlwaysNotTaken => taken,
                StaticScheme::Btfn => btfn_wrong(chunk),
            };
        } else {
            self.replay_chunk_scalar(chunk, seen, warmup);
        }
    }

    /// Per-record path for chunks that straddle the warmup boundary.
    fn replay_chunk_scalar(&mut self, chunk: &TraceChunk, mut seen: u64, warmup: u64) {
        for record in chunk.iter() {
            if !record.is_conditional() {
                continue;
            }
            let scored = seen >= warmup;
            seen += 1;
            if !scored {
                continue;
            }
            let predicted = match self.scheme {
                StaticScheme::AlwaysTaken => Outcome::Taken,
                StaticScheme::AlwaysNotTaken => Outcome::NotTaken,
                StaticScheme::Btfn => Outcome::from(record.target < record.pc),
            };
            self.mispredictions += (predicted != record.outcome) as u64;
        }
    }

    fn finish(self, scored: u64) -> SimResult {
        SimResult {
            predictor: match self.scheme {
                StaticScheme::AlwaysTaken => "always-taken".to_owned(),
                StaticScheme::AlwaysNotTaken => "always-not-taken".to_owned(),
                StaticScheme::Btfn => "btfn".to_owned(),
            },
            state_bits: 0,
            conditionals: scored,
            mispredictions: self.mispredictions,
            alias: None,
            bht: None,
        }
    }
}

/// BTFN mispredictions over a whole chunk: one branchless pass over
/// the pc/target columns with the conditional/outcome flags decoded
/// straight from the metadata nibbles.
fn btfn_wrong(chunk: &TraceChunk) -> u64 {
    let pcs = chunk.pcs();
    let targets = chunk.targets();
    let words = chunk.meta_words();
    let mut wrong = 0u64;
    for i in 0..pcs.len() {
        let bits = (words[i / TraceChunk::META_RECORDS_PER_WORD]
            >> (TraceChunk::META_BITS_PER_RECORD * (i % TraceChunk::META_RECORDS_PER_WORD)))
            & 0xF;
        let conditional = (bits & 0b1110 == 0) as u64;
        let predicted_taken = (targets[i] < pcs[i]) as u64;
        wrong += conditional & (predicted_taken ^ (bits & 1));
    }
    wrong
}

/// Per-lane parameters of one groupable configuration, before arena
/// placement.
struct GroupSpec {
    index: usize,
    name: String,
    state_bits: u64,
    row_bits: u32,
    col_bits: u32,
    /// gshare XORs row-address bits into the history row.
    xor: bool,
    /// Whether the scheme keeps a history register at all
    /// (address-indexed does not).
    history: bool,
}

impl GroupSpec {
    fn cells(&self) -> u64 {
        1u64 << (self.row_bits + self.col_bits)
    }
}

/// A lane group: up to [`cell::PACKED_LANES`] global-family lanes
/// stepping record-major through a shared cell arena.
///
/// Lane parameters and accumulators are structure-of-arrays so the
/// inner loop (and its `portable-simd` twin) reads them as flat
/// vectors. Each lane owns a power-of-two region of the arena at a
/// base offset aligned to its size (lanes are placed in descending
/// size order), so `base | idx` is the lane's slot and regions never
/// overlap — which also makes the SIMD scatter safe.
#[derive(Debug)]
struct GlobalGroup {
    /// Result slot per lane in the caller's configuration order.
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    // Per-lane parameters (structure-of-arrays).
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    /// Value `hist` equals exactly when the history pattern is
    /// all-taken; `u64::MAX` sentinel when the scheme has no (or a
    /// zero-width) history register, which `hist` can never reach.
    all_taken_ref: Vec<u64>,
    xor_mask: Vec<u64>,
    row_mask: Vec<u64>,
    col_shift: Vec<u64>,
    col_mask: Vec<u64>,
    base: Vec<u64>,
    // Per-lane accumulators.
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    /// Per-record slot scratch for the two-phase SWAR step.
    slots: Vec<usize>,
    /// All lanes' packed counter cells.
    arena: Vec<u64>,
    /// `arena.len() - 1` (length is a power of two): slots are already
    /// in range, but masking lets the compiler drop the bounds check.
    arena_mask: u64,
    /// Which group step to run (`BPRED_GROUP_STEP`). The explicit-SIMD
    /// tier supersedes all three, so the knob is inert under
    /// `portable-simd`.
    #[cfg_attr(feature = "portable-simd", allow(dead_code))]
    step: GroupStep,
    /// Whether the fused loop runs its blocked two-phase prefetch form
    /// (`BPRED_GROUP_PREFETCH`). Inert for the record-major and SIMD
    /// paths.
    #[cfg_attr(feature = "portable-simd", allow(dead_code))]
    prefetch: bool,
}

impl GlobalGroup {
    fn new(mut specs: Vec<GroupSpec>, step: GroupStep, prefetch: PrefetchMode) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        // Descending size order: every earlier region is a multiple of
        // each later size, so each base is aligned to its lane's size
        // and `base | idx` is exact addition.
        specs.sort_by(|a, b| b.cells().cmp(&a.cells()).then(a.index.cmp(&b.index)));
        let lanes = specs.len();
        let mut group = GlobalGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            xor_mask: Vec::with_capacity(lanes),
            row_mask: Vec::with_capacity(lanes),
            col_shift: Vec::with_capacity(lanes),
            col_mask: Vec::with_capacity(lanes),
            base: Vec::with_capacity(lanes),
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            slots: vec![0; lanes],
            arena: Vec::new(),
            arena_mask: 0,
            step,
            prefetch: false,
        };
        let mut next_base = 0u64;
        for spec in specs {
            let row_mask = low_mask(spec.row_bits);
            let cells = spec.cells();
            group.indices.push(spec.index);
            group.state_bits.push(spec.state_bits);
            group.names.push(spec.name);
            group
                .hist_mask
                .push(if spec.history { row_mask } else { 0 });
            group
                .all_taken_ref
                .push(if spec.history && spec.row_bits > 0 {
                    row_mask
                } else {
                    u64::MAX
                });
            group.xor_mask.push(if spec.xor { row_mask } else { 0 });
            group.row_mask.push(row_mask);
            group.col_shift.push(u64::from(spec.col_bits));
            group.col_mask.push(low_mask(spec.col_bits));
            group.base.push(next_base);
            next_base += cells;
        }
        let arena_len = next_base.next_power_of_two().max(1) as usize;
        let fresh = cell::fresh(TwoBitCounter::default().state().bits());
        group.arena = vec![fresh; arena_len];
        group.arena_mask = (arena_len - 1) as u64;
        // Footprint-gate the two-phase prefetch form now that the
        // arena size is known (8 bytes per packed cell).
        group.prefetch = prefetch.resolve(8 * arena_len as u64, prefetch_threshold());
        group
    }

    /// Feeds a chunk's dense conditional stream (elements
    /// `(pc << 1) | taken`, non-conditionals already dropped — a no-op
    /// for this family) through all lanes. `seen`/`warmup` reproduce
    /// the scalar core's warmup scoring exactly.
    fn replay_conditionals(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        #[cfg(feature = "portable-simd")]
        {
            self.replay_record_major(stream, seen, warmup, Self::step_record_simd);
        }
        #[cfg(not(feature = "portable-simd"))]
        match self.step {
            GroupStep::Fused if self.prefetch => self.replay_fused_prefetch(stream, seen, warmup),
            GroupStep::Fused => self.replay_fused(stream, seen, warmup),
            GroupStep::RecordSwar => {
                self.replay_record_major(stream, seen, warmup, |group, w, t, tk, s| {
                    group.step_record_swar(w, t, tk, s, 0)
                })
            }
            GroupStep::RecordScalar => {
                self.replay_record_major(stream, seen, warmup, Self::step_record_scalar)
            }
        }
    }

    /// Drives one of the record-major step kernels over the
    /// conditional stream.
    fn replay_record_major(
        &mut self,
        stream: &[u64],
        seen: u64,
        warmup: u64,
        mut step: impl FnMut(&mut Self, u64, u64, u64, u64),
    ) {
        for (i, &packed) in stream.iter().enumerate() {
            let scored = (seen + i as u64 >= warmup) as u64;
            let pc = packed >> 1;
            step(self, pc >> 2, cell::tag(pc), packed & 1, scored);
        }
    }

    /// The default group kernel (superseded by the vector kernel when
    /// `portable-simd` is compiled in): lane-major over the conditional
    /// stream with every lane parameter, the history register, and all
    /// three accumulators held in locals, so the inner loop touches
    /// memory only for the (shared, cache-hot) conditional columns and
    /// the lane's own arena region. The cell step is fused and
    /// branch-free, semantically [`cell::step`].
    #[cfg_attr(feature = "portable-simd", allow(dead_code))]
    fn replay_fused(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.hist.len() {
            let col_shift = self.col_shift[lane];
            let xor_mask = self.xor_mask[lane];
            let row_mask = self.row_mask[lane];
            let col_mask = self.col_mask[lane];
            let base = self.base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            // Masking by `len - 1` (a power of two) also elides the
            // bounds check.
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                let row = (hist ^ ((word >> col_shift) & xor_mask)) & row_mask;
                let idx = (row << col_shift) | (word & col_mask);
                let slot = ((base | idx) as usize) & mask;
                let cell_word = arena[slot];
                let owner = cell_word >> 2;
                let bits = cell_word & 0b11;
                let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                conflicts += conflict;
                harmless += conflict & ((hist == all_taken_ref) as u64);
                wrong += scored & ((bits >= 2) as u64 ^ taken);
                hist = ((hist << 1) | taken) & hist_mask;
                // Saturating two-bit step: +1 below strong taken when
                // taken, -1 above strong not-taken otherwise.
                let inc = ((bits < 3) as u64) & taken;
                let dec = ((bits > 0) as u64) & (1 - taken);
                arena[slot] = (tag << 2) | (bits + inc - dec);
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    /// The fused loop in blocked two-phase form
    /// (`BPRED_GROUP_PREFETCH`): per window of [`PREFETCH_WINDOW`]
    /// records, an address-generation pass runs the (arena-independent)
    /// index and history recurrence, touches each upcoming arena slot —
    /// the gather is the loop's one data-dependent load — and parks
    /// `(slot << 1) | all_taken` in scratch; the second pass then
    /// performs the identical counter read-modify-write and scoring.
    /// Bit-identical to [`replay_fused`](Self::replay_fused) (the
    /// in-window touch reads are value-discarded, and the RMW pass is
    /// sequential).
    #[cfg_attr(feature = "portable-simd", allow(dead_code))]
    fn replay_fused_prefetch(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.hist.len() {
            let col_shift = self.col_shift[lane];
            let xor_mask = self.xor_mask[lane];
            let row_mask = self.row_mask[lane];
            let col_mask = self.col_mask[lane];
            let base = self.base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            let mut scratch = [0u64; PREFETCH_WINDOW];
            let mut start = 0usize;
            while start < stream.len() {
                let end = stream.len().min(start + PREFETCH_WINDOW);
                let block = &stream[start..end];
                let mut h = hist;
                for (j, &packed) in block.iter().enumerate() {
                    let taken = packed & 1;
                    let word = packed >> 3;
                    let row = (h ^ ((word >> col_shift) & xor_mask)) & row_mask;
                    let idx = (row << col_shift) | (word & col_mask);
                    let slot = ((base | idx) as usize) & mask;
                    scratch[j] = ((slot as u64) << 1) | ((h == all_taken_ref) as u64);
                    // Safe-code prefetch: pull the cell's line now, drop
                    // the value.
                    std::hint::black_box(arena[slot]);
                    h = ((h << 1) | taken) & hist_mask;
                }
                for (j, &packed) in block.iter().enumerate() {
                    let scored = (seen + (start + j) as u64 >= warmup) as u64;
                    let taken = packed & 1;
                    let tag = (packed >> 1) & cell::EMPTY_OWNER;
                    let slot = (scratch[j] >> 1) as usize;
                    let all_taken = scratch[j] & 1;
                    let cell_word = arena[slot];
                    let owner = cell_word >> 2;
                    let bits = cell_word & 0b11;
                    let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                    conflicts += conflict;
                    harmless += conflict & all_taken;
                    wrong += scored & ((bits >= 2) as u64 ^ taken);
                    let inc = ((bits < 3) as u64) & taken;
                    let dec = ((bits > 0) as u64) & (1 - taken);
                    arena[slot] = (tag << 2) | (bits + inc - dec);
                }
                hist = h;
                start = end;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    /// Two-phase record step over lanes `[first, K)`: per-lane slot
    /// computation, gather, score and history push, then one
    /// [`cell::step_packed`] word op advances every gathered counter
    /// at once and the second loop scatters the re-tagged cells back.
    fn step_record_swar(&mut self, word: u64, tag: u64, taken: u64, scored: u64, first: usize) {
        let lanes = self.hist.len();
        let mut packed = 0u64;
        for lane in first..lanes {
            let row = (self.hist[lane] ^ ((word >> self.col_shift[lane]) & self.xor_mask[lane]))
                & self.row_mask[lane];
            let idx = (row << self.col_shift[lane]) | (word & self.col_mask[lane]);
            let slot = ((self.base[lane] | idx) & self.arena_mask) as usize;
            self.slots[lane] = slot;
            let cell_word = self.arena[slot];
            let owner = cell_word >> 2;
            let bits = cell_word & 0b11;
            packed |= bits << (2 * (lane - first));
            let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
            let all_taken = (self.hist[lane] == self.all_taken_ref[lane]) as u64;
            self.conflicts[lane] += conflict;
            self.harmless[lane] += conflict & all_taken;
            self.mispredictions[lane] += scored & ((bits >= 2) as u64 ^ taken);
            self.hist[lane] = ((self.hist[lane] << 1) | taken) & self.hist_mask[lane];
        }
        let stepped = cell::step_packed(packed, Outcome::from_bit(taken));
        let owner_bits = tag << 2;
        for lane in first..lanes {
            self.arena[self.slots[lane]] = owner_bits | ((stepped >> (2 * (lane - first))) & 0b11);
        }
    }

    /// Record-major step with per-lane counter transitions through the
    /// scalar oracle [`cell::step`] — the `BPRED_GROUP_STEP=scalar`
    /// decomposition path (lane grouping without SWAR).
    #[cfg_attr(feature = "portable-simd", allow(dead_code))]
    fn step_record_scalar(&mut self, word: u64, tag: u64, taken: u64, scored: u64) {
        let outcome = Outcome::from_bit(taken);
        for lane in 0..self.hist.len() {
            let row = (self.hist[lane] ^ ((word >> self.col_shift[lane]) & self.xor_mask[lane]))
                & self.row_mask[lane];
            let idx = (row << self.col_shift[lane]) | (word & self.col_mask[lane]);
            let slot = ((self.base[lane] | idx) & self.arena_mask) as usize;
            let (predicted, conflict, next) = cell::step(self.arena[slot], tag, outcome);
            self.arena[slot] = next;
            let all_taken = (self.hist[lane] == self.all_taken_ref[lane]) as u64;
            self.conflicts[lane] += conflict as u64;
            self.harmless[lane] += conflict as u64 & all_taken;
            self.mispredictions[lane] += scored & ((predicted.is_taken() as u64) ^ taken);
            self.hist[lane] = ((self.hist[lane] << 1) | taken) & self.hist_mask[lane];
        }
    }

    /// Explicit-SIMD record step: eight lanes per `std::simd` vector
    /// gather/score/scatter, with the SWAR path covering the
    /// remainder. Semantics are identical to
    /// [`step_record_swar`](Self::step_record_swar) over all lanes.
    #[cfg(feature = "portable-simd")]
    fn step_record_simd(&mut self, word: u64, tag: u64, taken: u64, scored: u64) {
        use std::simd::cmp::{SimdPartialEq, SimdPartialOrd};
        use std::simd::num::SimdUint;
        use std::simd::{Select, Simd};

        const N: usize = 8;
        let lanes = self.hist.len();
        let blocks = lanes / N * N;
        let word_v = Simd::<u64, N>::splat(word);
        let tag_v = Simd::<u64, N>::splat(tag);
        let taken_v = Simd::<u64, N>::splat(taken);
        let scored_v = Simd::<u64, N>::splat(scored);
        let zero = Simd::<u64, N>::splat(0);
        let one = Simd::<u64, N>::splat(1);
        for b in (0..blocks).step_by(N) {
            let hist = Simd::from_slice(&self.hist[b..b + N]);
            let col_shift = Simd::from_slice(&self.col_shift[b..b + N]);
            let row = (hist ^ ((word_v >> col_shift) & Simd::from_slice(&self.xor_mask[b..b + N])))
                & Simd::from_slice(&self.row_mask[b..b + N]);
            let idx = (row << col_shift) | (word_v & Simd::from_slice(&self.col_mask[b..b + N]));
            let slot = ((Simd::from_slice(&self.base[b..b + N]) | idx)
                & Simd::splat(self.arena_mask))
            .cast::<usize>();
            let cells = Simd::gather_or_default(&self.arena, slot);
            let owner = cells >> Simd::splat(2u64);
            let bits = cells & Simd::splat(3u64);
            let conflict = (!(owner.simd_eq(Simd::splat(cell::EMPTY_OWNER))
                | owner.simd_eq(tag_v)))
            .select(one, zero);
            let all_taken = hist
                .simd_eq(Simd::from_slice(&self.all_taken_ref[b..b + N]))
                .select(one, zero);
            (Simd::from_slice(&self.conflicts[b..b + N]) + conflict)
                .copy_to_slice(&mut self.conflicts[b..b + N]);
            (Simd::from_slice(&self.harmless[b..b + N]) + (conflict & all_taken))
                .copy_to_slice(&mut self.harmless[b..b + N]);
            let predicted = bits.simd_ge(Simd::splat(2)).select(one, zero);
            (Simd::from_slice(&self.mispredictions[b..b + N]) + (scored_v & (predicted ^ taken_v)))
                .copy_to_slice(&mut self.mispredictions[b..b + N]);
            // Saturating two-bit step, element-wise: +1 below strong
            // taken when taken, -1 above strong not-taken otherwise.
            let inc = bits.simd_lt(Simd::splat(3)).select(one, zero);
            let dec = bits.simd_gt(zero).select(one, zero);
            let next_bits = bits + (inc & taken_v) - (dec & (one - taken_v));
            // Lane regions are disjoint, so the scatter targets are too.
            ((tag_v << Simd::splat(2u64)) | next_bits).scatter(&mut self.arena, slot);
            (((hist << one) | taken_v) & Simd::from_slice(&self.hist_mask[b..b + N]))
                .copy_to_slice(&mut self.hist[b..b + N]);
        }
        self.step_record_swar(word, tag, taken, scored, blocks);
    }

    /// Drains the group into per-lane results. `seen` is the shared
    /// access count (every conditional fed), `scored` the shared
    /// post-warmup count.
    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// One groupable lane beyond the single-read family: its result slot,
/// the display name and *static* state cost captured from the kernel
/// at build time (dynamic per-branch state — perfect-BHT histories,
/// agree bias bits — is added at finish from the shared distinct-pc
/// count), and its [`WalkPlan`].
struct PlanSpec {
    index: usize,
    name: String,
    state_bits: u64,
    plan: WalkPlan,
}

/// Places power-of-two regions into one arena: regions are assigned
/// bases in descending size order (ties by original position), so each
/// base is aligned to its own region's size and `base | idx` is exact
/// addition, exactly as [`GlobalGroup::new`] lays out its lanes.
/// Returns the bases in original order plus the (power-of-two) arena
/// length.
fn place_regions(sizes: &[u64]) -> (Vec<u64>, usize) {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
    let mut bases = vec![0u64; sizes.len()];
    let mut next = 0u64;
    for i in order {
        bases[i] = next;
        next += sizes[i];
    }
    (bases, next.next_power_of_two().max(1) as usize)
}

/// A fresh arena of `len` packed cells in the workspace default
/// counter state (weakly taken), shared by every group kind.
fn fresh_arena(len: usize) -> Vec<u64> {
    vec![cell::fresh(TwoBitCounter::default().state().bits()); len]
}

/// Row-blocked lane order: sorts plan specs by descending arena
/// footprint (ties by configuration position) *before* group split —
/// the exact order [`place_regions`] assigns bases in. Groups then
/// iterate lanes in placement order, so consecutive lanes of a sweep
/// walk adjacent arena regions and same-row reads of the shared arena
/// land in neighbouring cache lines instead of striding the whole
/// footprint. Pure iteration-order change: lanes are independent and
/// results are written through `indices`, so output order (and every
/// result bit) is unchanged.
fn row_block_plans(specs: &mut [PlanSpec]) {
    specs.sort_by(|a, b| {
        b.plan
            .cells()
            .cmp(&a.plan.cells())
            .then(a.index.cmp(&b.index))
    });
}

/// Splits groupable specs into group-sized chunks, preserving order:
/// the first [`cell::PACKED_LANES`] lanes form the first group, and so
/// on (the same first-k policy [`LaneSet::new`] always used).
fn split_at_lane_limit<T>(mut specs: Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    while !specs.is_empty() {
        let rest = specs.split_off(specs.len().min(cell::PACKED_LANES));
        out.push(std::mem::replace(&mut specs, rest));
    }
    out
}

/// The first-level row source of a [`TwoLevelGroup`] — the part of a
/// per-address/per-set plan that differs between PAs(inf), finite PAs
/// and SAs while the counter step stays shared.
///
/// The protocol per conditional record mirrors the scalar
/// [`RowSelector`](bpred_core::RowSelector): one
/// [`row`](RowSource::row) before the counter read-modify-write, one
/// [`advance`](RowSource::advance) after it.
trait RowSource {
    /// Whether [`row`](RowSource::row)/[`advance`](RowSource::advance)
    /// consume the dense per-record branch ids the [`LaneSet`]
    /// pre-pass assigns (first-appearance order over the conditional
    /// stream).
    const NEEDS_IDS: bool;

    /// The history pattern selecting this record's row.
    fn row(&mut self, lane: usize, pc: u64, id: u32) -> u64;

    /// Shifts the outcome into the first level after the counter step.
    fn advance(&mut self, lane: usize, pc: u64, id: u32, row: u64, taken: u64);

    /// First-level access statistics, when the scheme reports them
    /// (`seen` is the shared conditional count — one lookup each).
    fn bht_stats(&self, lane: usize, seen: u64) -> Option<BhtStats>;

    /// Dynamic first-level state to add to the lane's static cost at
    /// finish (`distinct` is the shared distinct-conditional-pc
    /// count).
    fn extra_state_bits(&self, lane: usize, distinct: u64) -> u64;
}

/// Unbounded per-address histories ([`bpred_core::PerfectBht`]):
/// id-indexed dense vectors instead of hash lookups, grown lazily in
/// first-appearance order — ids are assigned sequentially, so a new id
/// always equals the vector's length, exactly when the scalar table
/// would insert the reset pattern.
#[derive(Debug)]
struct PerfectRows {
    widths: Vec<u32>,
    masks: Vec<u64>,
    hists: Vec<Vec<u64>>,
}

impl PerfectRows {
    fn new(specs: &[PlanSpec]) -> Self {
        let widths: Vec<u32> = specs.iter().map(|s| s.plan.history_bits).collect();
        PerfectRows {
            masks: widths.iter().map(|&w| wide_low_mask(w)).collect(),
            hists: specs.iter().map(|_| Vec::new()).collect(),
            widths,
        }
    }
}

impl RowSource for PerfectRows {
    const NEEDS_IDS: bool = true;

    #[inline]
    fn row(&mut self, lane: usize, _pc: u64, id: u32) -> u64 {
        let v = &mut self.hists[lane];
        if id as usize == v.len() {
            v.push(reset_pattern(self.widths[lane]));
        }
        v[id as usize]
    }

    #[inline]
    fn advance(&mut self, lane: usize, _pc: u64, id: u32, row: u64, taken: u64) {
        // Width-0 masks to zero, matching the scalar no-op record.
        self.hists[lane][id as usize] = ((row << 1) | taken) & self.masks[lane];
    }

    fn bht_stats(&self, _lane: usize, seen: u64) -> Option<BhtStats> {
        Some(BhtStats {
            accesses: seen,
            misses: 0,
        })
    }

    fn extra_state_bits(&self, lane: usize, distinct: u64) -> u64 {
        distinct * u64::from(self.widths[lane])
    }
}

/// Finite tagged per-address histories: each lane embeds the real
/// [`SetAssocBht`] and drives it through the same lookup/record calls
/// the scalar selector makes, so LRU clocks, evictions and miss
/// statistics are exact by construction.
#[derive(Debug)]
struct FiniteRows {
    bhts: Vec<SetAssocBht>,
}

impl FiniteRows {
    fn new(specs: &[PlanSpec]) -> Self {
        FiniteRows {
            bhts: specs
                .iter()
                .map(|s| match s.plan.level1 {
                    Level1Read::SetAssocBht { entries, ways } => {
                        SetAssocBht::new(entries, ways, s.plan.history_bits)
                    }
                    ref other => unreachable!("finite rows from {other:?}"),
                })
                .collect(),
        }
    }
}

impl RowSource for FiniteRows {
    const NEEDS_IDS: bool = false;

    #[inline]
    fn row(&mut self, lane: usize, pc: u64, _id: u32) -> u64 {
        self.bhts[lane].lookup(pc)
    }

    #[inline]
    fn advance(&mut self, lane: usize, pc: u64, _id: u32, _row: u64, taken: u64) {
        self.bhts[lane].record(pc, Outcome::from_bit(taken));
    }

    fn bht_stats(&self, lane: usize, _seen: u64) -> Option<BhtStats> {
        Some(self.bhts[lane].stats())
    }

    fn extra_state_bits(&self, _lane: usize, _distinct: u64) -> u64 {
        0 // entries x width is static, already in the kernel's cost
    }
}

/// Per-set histories ([`bpred_core::SetSelector`]): a flat register
/// file per lane indexed by low word-address bits. Registers start at
/// zero (not the reset pattern — set registers are never "missing").
#[derive(Debug)]
struct SetRows {
    set_masks: Vec<u64>,
    width_masks: Vec<u64>,
    sets: Vec<Vec<u64>>,
}

impl SetRows {
    fn new(specs: &[PlanSpec]) -> Self {
        let mut rows = SetRows {
            set_masks: Vec::with_capacity(specs.len()),
            width_masks: Vec::with_capacity(specs.len()),
            sets: Vec::with_capacity(specs.len()),
        };
        for spec in specs {
            let set_bits = match spec.plan.level1 {
                Level1Read::SetHistories { set_bits } => set_bits,
                ref other => unreachable!("set rows from {other:?}"),
            };
            rows.set_masks.push(wide_low_mask(set_bits));
            rows.width_masks.push(wide_low_mask(spec.plan.history_bits));
            rows.sets.push(vec![0u64; 1usize << set_bits]);
        }
        rows
    }
}

impl RowSource for SetRows {
    const NEEDS_IDS: bool = false;

    #[inline]
    fn row(&mut self, lane: usize, pc: u64, _id: u32) -> u64 {
        self.sets[lane][((pc >> 2) & self.set_masks[lane]) as usize]
    }

    #[inline]
    fn advance(&mut self, lane: usize, pc: u64, _id: u32, row: u64, taken: u64) {
        let set = ((pc >> 2) & self.set_masks[lane]) as usize;
        self.sets[lane][set] = ((row << 1) | taken) & self.width_masks[lane];
    }

    fn bht_stats(&self, _lane: usize, _seen: u64) -> Option<BhtStats> {
        None
    }

    fn extra_state_bits(&self, _lane: usize, _distinct: u64) -> u64 {
        0 // 2^set_bits x width is static, already in the kernel's cost
    }
}

/// A lane group for the per-address/per-set two-level plans
/// ([`PlanKind::PerAddressPerfect`], [`PlanKind::PerAddressFinite`],
/// [`PlanKind::PerSet`]): the [`GlobalGroup`] counter step with a
/// [`RowSource`] first-level read in front, lane-major over the shared
/// conditional stream.
#[derive(Debug)]
struct TwoLevelGroup<R> {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    all_taken_ref: Vec<u64>,
    row_mask: Vec<u64>,
    col_shift: Vec<u64>,
    col_mask: Vec<u64>,
    base: Vec<u64>,
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    rows: R,
    arena: Vec<u64>,
}

impl<R: RowSource> TwoLevelGroup<R> {
    fn new(specs: Vec<PlanSpec>, rows: R) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        let sizes: Vec<u64> = specs.iter().map(|s| s.plan.cells()).collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = TwoLevelGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            row_mask: Vec::with_capacity(lanes),
            col_shift: Vec::with_capacity(lanes),
            col_mask: Vec::with_capacity(lanes),
            base: bases,
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            rows,
            arena: fresh_arena(arena_len),
        };
        for spec in specs {
            let read = spec.plan.reads[0];
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group.row_mask.push(wide_low_mask(read.row_bits));
            group.col_shift.push(u64::from(read.col_bits));
            group.col_mask.push(wide_low_mask(read.col_bits));
        }
        group
    }

    /// Feeds the chunk's dense conditional stream through every lane.
    /// `ids` is the per-record dense branch-id column (read only when
    /// the row source asks for it). Per record and lane this is the
    /// scalar sequence select → fused counter access-train → selector
    /// train, branch-free.
    fn replay(&mut self, stream: &[u64], ids: &[u32], seen: u64, warmup: u64) {
        debug_assert!(!R::NEEDS_IDS || ids.len() == stream.len());
        for lane in 0..self.indices.len() {
            let col_shift = self.col_shift[lane];
            let col_mask = self.col_mask[lane];
            let row_mask = self.row_mask[lane];
            let base = self.base[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let rows = &mut self.rows;
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let pc = packed >> 1;
                let word = packed >> 3;
                let tag = pc & cell::EMPTY_OWNER;
                let id = if R::NEEDS_IDS { ids[i] } else { 0 };
                let row = rows.row(lane, pc, id);
                let idx = ((row & row_mask) << col_shift) | (word & col_mask);
                let slot = ((base | idx) as usize) & mask;
                let cell_word = arena[slot];
                let owner = cell_word >> 2;
                let bits = cell_word & 0b11;
                let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                conflicts += conflict;
                harmless += conflict & ((row == all_taken_ref) as u64);
                wrong += scored & ((bits >= 2) as u64 ^ taken);
                let inc = ((bits < 3) as u64) & taken;
                let dec = ((bits > 0) as u64) & (1 - taken);
                arena[slot] = (tag << 2) | (bits + inc - dec);
                rows.advance(lane, pc, id, row, taken);
            }
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, distinct: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane] + self.rows.extra_state_bits(lane, distinct),
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: self.rows.bht_stats(lane, seen),
            });
        }
    }
}

/// A lane group for [`PlanKind::AgreeBias`]: counters predict
/// *agreement* with a per-branch bias bit latched at first execution.
/// The bias latch sequence depends only on the shared (pc, outcome)
/// stream — identical across every agree lane — so the [`LaneSet`]
/// pre-pass latches it once, record-major, and parks each record's
/// pre/post-latch bias in the shared `bias_bits` column the lane-major
/// loop here reads (a naive shared latch array would corrupt pre-latch
/// reads once the first lane had latched).
#[derive(Debug)]
struct AgreeGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    all_taken_ref: Vec<u64>,
    row_mask: Vec<u64>,
    base: Vec<u64>,
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl AgreeGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        let sizes: Vec<u64> = specs.iter().map(|s| s.plan.cells()).collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = AgreeGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            row_mask: Vec::with_capacity(lanes),
            base: bases,
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for spec in specs {
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.hist_mask.push(wide_low_mask(spec.plan.history_bits));
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group
                .row_mask
                .push(wide_low_mask(spec.plan.reads[0].row_bits));
        }
        group
    }

    /// `bias_bits[i]` carries the shared pre-latch (bit 0) and
    /// post-latch (bit 1) bias-is-taken flags of conditional `i`.
    fn replay(&mut self, stream: &[u64], bias_bits: &[u8], seen: u64, warmup: u64) {
        debug_assert_eq!(bias_bits.len(), stream.len());
        for lane in 0..self.indices.len() {
            let row_mask = self.row_mask[lane];
            let base = self.base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                let pre = u64::from(bias_bits[i] & 1);
                let post = u64::from((bias_bits[i] >> 1) & 1);
                let row = (hist ^ (word & row_mask)) & row_mask;
                let slot = ((base | row) as usize) & mask;
                let cell_word = arena[slot];
                let owner = cell_word >> 2;
                let bits = cell_word & 0b11;
                let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                conflicts += conflict;
                harmless += conflict & ((hist == all_taken_ref) as u64);
                // Prediction: bias if the counter says "agree", its
                // complement otherwise — an XNOR of the two bits.
                let agree = (bits >= 2) as u64;
                wrong += scored & ((1 ^ agree ^ pre) ^ taken);
                // Training direction is agreement with the
                // *post-latch* bias, not the raw outcome.
                let agreement = 1 ^ taken ^ post;
                let inc = ((bits < 3) as u64) & agreement;
                let dec = ((bits > 0) as u64) & (1 - agreement);
                arena[slot] = (tag << 2) | (bits + inc - dec);
                hist = ((hist << 1) | taken) & hist_mask;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, distinct: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                // One BTB-resident bias bit per distinct branch.
                state_bits: self.state_bits[lane] + distinct,
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::BiModeChoice`]: a peeked choice read
/// steers each record to one of two direction regions; the selected
/// counter trains toward the outcome and the choice counter trains too
/// unless the bi-mode exception holds (choice disagreed but the
/// selected counter was right). The choice cells are only ever peeked
/// and retrained, so their owner tags stay empty and they contribute
/// no alias accounting — exactly the scalar tables' split.
#[derive(Debug)]
struct BiModeGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    all_taken_ref: Vec<u64>,
    dir_mask: Vec<u64>,
    choice_mask: Vec<u64>,
    taken_base: Vec<u64>,
    not_taken_base: Vec<u64>,
    choice_base: Vec<u64>,
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl BiModeGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        // Three regions per lane: taken, not-taken, choice.
        let sizes: Vec<u64> = specs
            .iter()
            .flat_map(|s| s.plan.reads.iter().map(TableRead::cells))
            .collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = BiModeGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            dir_mask: Vec::with_capacity(lanes),
            choice_mask: Vec::with_capacity(lanes),
            taken_base: Vec::with_capacity(lanes),
            not_taken_base: Vec::with_capacity(lanes),
            choice_base: Vec::with_capacity(lanes),
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for (lane, spec) in specs.into_iter().enumerate() {
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.hist_mask.push(wide_low_mask(spec.plan.history_bits));
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group
                .dir_mask
                .push(wide_low_mask(spec.plan.reads[0].row_bits));
            group
                .choice_mask
                .push(wide_low_mask(spec.plan.reads[2].col_bits));
            group.taken_base.push(bases[3 * lane]);
            group.not_taken_base.push(bases[3 * lane + 1]);
            group.choice_base.push(bases[3 * lane + 2]);
        }
        group
    }

    fn replay(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.indices.len() {
            let dir_mask = self.dir_mask[lane];
            let choice_mask = self.choice_mask[lane];
            let taken_base = self.taken_base[lane];
            let not_taken_base = self.not_taken_base[lane];
            let choice_base = self.choice_base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                let row = (hist ^ (word & dir_mask)) & dir_mask;
                let choice_slot = ((choice_base | (word & choice_mask)) as usize) & mask;
                let choice_cell = arena[choice_slot];
                let ch_bits = choice_cell & 0b11;
                let use_taken = (ch_bits >= 2) as u64;
                // Branchless region select between the two direction
                // tables.
                let dir_base =
                    not_taken_base ^ ((taken_base ^ not_taken_base) & use_taken.wrapping_neg());
                let slot = ((dir_base | row) as usize) & mask;
                let cell_word = arena[slot];
                let owner = cell_word >> 2;
                let bits = cell_word & 0b11;
                let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                conflicts += conflict;
                harmless += conflict & ((hist == all_taken_ref) as u64);
                let predicted = (bits >= 2) as u64;
                wrong += scored & (predicted ^ taken);
                // Selected direction counter trains toward the outcome.
                let inc = ((bits < 3) as u64) & taken;
                let dec = ((bits > 0) as u64) & (1 - taken);
                arena[slot] = (tag << 2) | (bits + inc - dec);
                // Choice trains toward the outcome except on the
                // bi-mode exception; its owner (empty) is preserved —
                // peek and retrain never tag.
                let exception = (use_taken ^ taken) & (1 - (predicted ^ taken));
                let train = 1 - exception;
                let cinc = ((ch_bits < 3) as u64) & taken & train;
                let cdec = ((ch_bits > 0) as u64) & (1 - taken) & train;
                arena[choice_slot] = (choice_cell & !0b11u64) | (ch_bits + cinc - cdec);
                hist = ((hist << 1) | taken) & hist_mask;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                // Direction tables only; the choice table is peeked,
                // never accessed, in the paper's accounting.
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::SkewedMajority`]: three skewed bank
/// reads per record, majority vote, total-update training. Each lane
/// owns three disjoint bank regions, so the scalar
/// access-access-access / train-train-train sequence fuses into one
/// read-modify-write per bank.
#[derive(Debug)]
struct GskewGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    all_taken_ref: Vec<u64>,
    /// `64 - bank_bits`, the hash down-shift (bank_bits ≥ 1 is
    /// guaranteed by [`WalkPlan::of`]).
    shift: Vec<u64>,
    bank_base: [Vec<u64>; 3],
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl GskewGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        let sizes: Vec<u64> = specs
            .iter()
            .flat_map(|s| s.plan.reads.iter().map(TableRead::cells))
            .collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = GskewGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            shift: Vec::with_capacity(lanes),
            bank_base: [
                Vec::with_capacity(lanes),
                Vec::with_capacity(lanes),
                Vec::with_capacity(lanes),
            ],
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for (lane, spec) in specs.into_iter().enumerate() {
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.hist_mask.push(wide_low_mask(spec.plan.history_bits));
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group
                .shift
                .push(u64::from(64 - spec.plan.reads[0].row_bits));
            for bank in 0..3 {
                group.bank_base[bank].push(bases[3 * lane + bank]);
            }
        }
        group
    }

    fn replay(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.indices.len() {
            let shift = self.shift[lane];
            let base0 = self.bank_base[0][lane];
            let base1 = self.bank_base[1][lane];
            let base2 = self.bank_base[2][lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                let key = (word << 20) ^ hist;
                let all_taken = (hist == all_taken_ref) as u64;
                // Unrolled banks, all three loads issued before any
                // store: the bank regions are disjoint, but an
                // interleaved read-modify-write would force the
                // compiler to order every load after the previous
                // bank's store (it cannot prove the slots don't
                // alias). The scalar predict-all-banks-then-train-
                // all-banks sequence is equivalent to one fused RMW
                // per bank either way.
                let slot0 = ((base0 | (key.wrapping_mul(SKEW_BANK_MULTIPLIERS[0]) >> shift))
                    as usize)
                    & mask;
                let slot1 = ((base1 | (key.wrapping_mul(SKEW_BANK_MULTIPLIERS[1]) >> shift))
                    as usize)
                    & mask;
                let slot2 = ((base2 | (key.wrapping_mul(SKEW_BANK_MULTIPLIERS[2]) >> shift))
                    as usize)
                    & mask;
                let (cell0, cell1, cell2) = (arena[slot0], arena[slot1], arena[slot2]);
                let step = |cell_word: u64| {
                    let owner = cell_word >> 2;
                    let bits = cell_word & 0b11;
                    let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                    let vote = (bits >= 2) as u64;
                    let inc = ((bits < 3) as u64) & taken;
                    let dec = ((bits > 0) as u64) & (1 - taken);
                    ((tag << 2) | (bits + inc - dec), conflict, vote)
                };
                let (next0, conflict0, vote0) = step(cell0);
                let (next1, conflict1, vote1) = step(cell1);
                let (next2, conflict2, vote2) = step(cell2);
                arena[slot0] = next0;
                arena[slot1] = next1;
                arena[slot2] = next2;
                let conflict = conflict0 + conflict1 + conflict2;
                conflicts += conflict;
                harmless += conflict & all_taken.wrapping_neg();
                wrong += scored & ((vote0 + vote1 + vote2 >= 2) as u64 ^ taken);
                hist = ((hist << 1) | taken) & hist_mask;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: Some(AliasStats {
                    // Three bank accesses per conditional.
                    accesses: 3 * seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::TournamentChooser`]: a per-address
/// chooser read steers between two component reads — an
/// address-indexed table (read 0) and a gshare table (read 1) — per
/// the [`Combining`](bpred_core::Combining) kernel. Both components
/// access-then-train exactly like the scalar [`cell::step`]; the
/// chooser is the scalar kernel's bare counter vector, so its cells
/// are peeked and retrained with their owner preserved (never tagged,
/// no alias accounting) and train toward "the second component was
/// right" only when the components disagreed.
#[derive(Debug)]
struct TournamentGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    all_taken_ref: Vec<u64>,
    addr_mask: Vec<u64>,
    gshare_mask: Vec<u64>,
    chooser_mask: Vec<u64>,
    addr_base: Vec<u64>,
    gshare_base: Vec<u64>,
    chooser_base: Vec<u64>,
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl TournamentGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        // Three regions per lane: address-indexed, gshare, chooser.
        let sizes: Vec<u64> = specs
            .iter()
            .flat_map(|s| s.plan.reads.iter().map(TableRead::cells))
            .collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = TournamentGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            addr_mask: Vec::with_capacity(lanes),
            gshare_mask: Vec::with_capacity(lanes),
            chooser_mask: Vec::with_capacity(lanes),
            addr_base: Vec::with_capacity(lanes),
            gshare_base: Vec::with_capacity(lanes),
            chooser_base: Vec::with_capacity(lanes),
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for (lane, spec) in specs.into_iter().enumerate() {
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.hist_mask.push(wide_low_mask(spec.plan.history_bits));
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group
                .addr_mask
                .push(wide_low_mask(spec.plan.reads[0].col_bits));
            group
                .gshare_mask
                .push(wide_low_mask(spec.plan.reads[1].row_bits));
            group
                .chooser_mask
                .push(wide_low_mask(spec.plan.reads[2].col_bits));
            group.addr_base.push(bases[3 * lane]);
            group.gshare_base.push(bases[3 * lane + 1]);
            let chooser_base = bases[3 * lane + 2];
            group.chooser_base.push(chooser_base);
            // The scalar chooser starts weakly-not-taken ("trust the
            // first component"), unlike the arena's weakly-taken
            // default.
            let chooser_cells = spec.plan.reads[2].cells();
            for slot in chooser_base..chooser_base + chooser_cells {
                group.arena[slot as usize] = cell::fresh(1);
            }
        }
        group
    }

    fn replay(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.indices.len() {
            let addr_mask = self.addr_mask[lane];
            let gshare_mask = self.gshare_mask[lane];
            let chooser_mask = self.chooser_mask[lane];
            let addr_base = self.addr_base[lane];
            let gshare_base = self.gshare_base[lane];
            let chooser_base = self.chooser_base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                // Component 0: address-indexed (row always zero, so
                // never an all-taken pattern).
                let a_slot = ((addr_base | (word & addr_mask)) as usize) & mask;
                let a_cell = arena[a_slot];
                let a_owner = a_cell >> 2;
                let a_bits = a_cell & 0b11;
                let a_conflict = ((a_owner != cell::EMPTY_OWNER) & (a_owner != tag)) as u64;
                // Component 1: gshare (column-free — the read is
                // `history_bits` rows wide).
                let g_row = (hist ^ (word & gshare_mask)) & gshare_mask;
                let g_slot = ((gshare_base | g_row) as usize) & mask;
                let g_cell = arena[g_slot];
                let g_owner = g_cell >> 2;
                let g_bits = g_cell & 0b11;
                let g_conflict = ((g_owner != cell::EMPTY_OWNER) & (g_owner != tag)) as u64;
                conflicts += a_conflict + g_conflict;
                harmless += g_conflict & ((hist == all_taken_ref) as u64);
                let a_pred = (a_bits >= 2) as u64;
                let g_pred = (g_bits >= 2) as u64;
                let chooser_slot = ((chooser_base | (word & chooser_mask)) as usize) & mask;
                let chooser_cell = arena[chooser_slot];
                let ch_bits = chooser_cell & 0b11;
                let use_second = (ch_bits >= 2) as u64;
                let predicted = a_pred ^ ((a_pred ^ g_pred) & use_second.wrapping_neg());
                wrong += scored & (predicted ^ taken);
                // Chooser trains toward "the second component was
                // right", only on disagreement; its owner (empty) is
                // preserved — the scalar chooser is untagged.
                let train = a_pred ^ g_pred;
                let toward_second = 1 ^ g_pred ^ taken;
                let cinc = ((ch_bits < 3) as u64) & toward_second & train;
                let cdec = ((ch_bits > 0) as u64) & (1 - toward_second) & train;
                arena[chooser_slot] = (chooser_cell & !0b11u64) | (ch_bits + cinc - cdec);
                // Both components train toward the outcome, owner
                // re-tagged — the scalar access-then-retrain pair,
                // fused as in [`cell::step`].
                let a_inc = ((a_bits < 3) as u64) & taken;
                let a_dec = ((a_bits > 0) as u64) & (1 - taken);
                arena[a_slot] = (tag << 2) | (a_bits + a_inc - a_dec);
                let g_inc = ((g_bits < 3) as u64) & taken;
                let g_dec = ((g_bits > 0) as u64) & (1 - taken);
                arena[g_slot] = (tag << 2) | (g_bits + g_inc - g_dec);
                hist = ((hist << 1) | taken) & hist_mask;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                // Both components access per conditional (the scalar
                // kernel sums its components' stats); the chooser is
                // never an access.
                alias: Some(AliasStats {
                    accesses: 2 * seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::TaggedChoice`] (YAGS): an untagged
/// choice read gives the bias; the opposite direction cache — a
/// tagged exception store — is probed at `history ^ address`, and a
/// tag hit overrides the bias. Training steps the probed entry on a
/// hit, allocates (unconditional eviction, tag + weak counter) on a
/// wrong-bias miss, and retrains the choice unless a hit already
/// captured the anti-bias outcome — exactly the
/// [`Yags`](bpred_core::Yags) sequence. Cache entries live in the
/// shared arena with the partial tag in the owner bits and the
/// `u16::MAX` empty sentinel (partial tags are at most 8 bits, so the
/// sentinel is unreachable).
#[derive(Debug)]
struct TaggedGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    hist: Vec<u64>,
    hist_mask: Vec<u64>,
    all_taken_ref: Vec<u64>,
    choice_mask: Vec<u64>,
    cache_mask: Vec<u64>,
    tag_mask: Vec<u64>,
    choice_base: Vec<u64>,
    taken_base: Vec<u64>,
    not_taken_base: Vec<u64>,
    conflicts: Vec<u64>,
    harmless: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl TaggedGroup {
    /// The empty-entry tag of a direction-cache cell, matching the
    /// scalar cache's `u16::MAX` sentinel.
    const EMPTY_TAG: u64 = u16::MAX as u64;

    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        // Three regions per lane: choice, taken-cache, not-taken-cache.
        let sizes: Vec<u64> = specs
            .iter()
            .flat_map(|s| s.plan.reads.iter().map(TableRead::cells))
            .collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = TaggedGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            hist: vec![0; lanes],
            hist_mask: Vec::with_capacity(lanes),
            all_taken_ref: Vec::with_capacity(lanes),
            choice_mask: Vec::with_capacity(lanes),
            cache_mask: Vec::with_capacity(lanes),
            tag_mask: Vec::with_capacity(lanes),
            choice_base: Vec::with_capacity(lanes),
            taken_base: Vec::with_capacity(lanes),
            not_taken_base: Vec::with_capacity(lanes),
            conflicts: vec![0; lanes],
            harmless: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for (lane, spec) in specs.into_iter().enumerate() {
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.hist_mask.push(wide_low_mask(spec.plan.history_bits));
            group
                .all_taken_ref
                .push(all_taken_reference(spec.plan.history_bits));
            group
                .choice_mask
                .push(wide_low_mask(spec.plan.reads[0].col_bits));
            group
                .cache_mask
                .push(wide_low_mask(spec.plan.reads[1].row_bits));
            group
                .tag_mask
                .push(wide_low_mask(spec.plan.reads[1].tag_bits));
            group.choice_base.push(bases[3 * lane]);
            let (t_base, nt_base) = (bases[3 * lane + 1], bases[3 * lane + 2]);
            group.taken_base.push(t_base);
            group.not_taken_base.push(nt_base);
            // Empty cache entries: sentinel tag, weakly-taken counter
            // in the taken cache / weakly-not-taken in the not-taken
            // cache (the scalar caches' initial counters — never
            // observable before an allocation overwrites them, kept
            // identical anyway).
            let cache_cells = spec.plan.reads[1].cells();
            for slot in t_base..t_base + cache_cells {
                group.arena[slot as usize] = (Self::EMPTY_TAG << 2) | 2;
            }
            for slot in nt_base..nt_base + cache_cells {
                group.arena[slot as usize] = (Self::EMPTY_TAG << 2) | 1;
            }
        }
        group
    }

    fn replay(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.indices.len() {
            let choice_mask = self.choice_mask[lane];
            let cache_mask = self.cache_mask[lane];
            let tag_mask = self.tag_mask[lane];
            let choice_base = self.choice_base[lane];
            let taken_base = self.taken_base[lane];
            let not_taken_base = self.not_taken_base[lane];
            let hist_mask = self.hist_mask[lane];
            let all_taken_ref = self.all_taken_ref[lane];
            let mut hist = self.hist[lane];
            let (mut conflicts, mut harmless, mut wrong) = (0u64, 0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            for (i, &packed) in stream.iter().enumerate() {
                let scored = (seen + i as u64 >= warmup) as u64;
                let taken = packed & 1;
                let word = packed >> 3;
                let tag = (packed >> 1) & cell::EMPTY_OWNER;
                let all_taken = (hist == all_taken_ref) as u64;
                // The choice access: bias prediction plus the lane's
                // only alias accounting (the scalar caches are
                // uninstrumented).
                let choice_slot = ((choice_base | (word & choice_mask)) as usize) & mask;
                let choice_cell = arena[choice_slot];
                let owner = choice_cell >> 2;
                let c_bits = choice_cell & 0b11;
                let conflict = ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                conflicts += conflict;
                harmless += conflict & all_taken;
                let bias = (c_bits >= 2) as u64;
                // Probe the cache opposite the bias for an exception.
                let cache_base = taken_base ^ ((not_taken_base ^ taken_base) & bias.wrapping_neg());
                let entry_slot = ((cache_base | ((hist ^ word) & cache_mask)) as usize) & mask;
                let entry = arena[entry_slot];
                let entry_tag = entry >> 2;
                let entry_bits = entry & 0b11;
                let partial = word & tag_mask;
                let hit = (entry_tag == partial) as u64;
                let entry_pred = (entry_bits >= 2) as u64;
                let predicted = bias ^ ((bias ^ entry_pred) & hit.wrapping_neg());
                wrong += scored & (predicted ^ taken);
                // Cache entry: train on a hit, allocate (evict) on a
                // wrong-bias miss, leave untouched otherwise.
                let inc = ((entry_bits < 3) as u64) & taken;
                let dec = ((entry_bits > 0) as u64) & (1 - taken);
                let trained = (entry_tag << 2) | (entry_bits + inc - dec);
                let allocated = (partial << 2) | (1 + taken);
                let hit_m = hit.wrapping_neg();
                let alloc_m = ((1 - hit) & (taken ^ bias)).wrapping_neg();
                arena[entry_slot] =
                    (trained & hit_m) | (allocated & alloc_m) | (entry & !(hit_m | alloc_m));
                // Choice: retrain toward the outcome unless a hit
                // already captured the anti-bias outcome; owner is
                // re-tagged either way (the scalar access touched it).
                let train = 1 - (hit & (taken ^ bias));
                let cinc = ((c_bits < 3) as u64) & taken & train;
                let cdec = ((c_bits > 0) as u64) & (1 - taken) & train;
                arena[choice_slot] = (tag << 2) | (c_bits + cinc - cdec);
                hist = ((hist << 1) | taken) & hist_mask;
            }
            self.hist[lane] = hist;
            self.conflicts[lane] += conflicts;
            self.harmless[lane] += harmless;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                // Choice table only, as in the scalar kernel.
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: self.harmless[lane],
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::PathHistory`]: the unified counter
/// read with its row selected by a global path register of hashed
/// control-transfer targets. The register shifts on *every* control
/// transfer (conditionals push their resolved destination,
/// non-conditionals their target), so this group consumes the
/// [`LaneSet`] per-chunk *event* column — one element per record —
/// alongside the conditional stream. Path row selections never count
/// as all-taken patterns, so harmless conflicts are structurally
/// zero, as in the scalar selector.
#[derive(Debug)]
struct PathGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    /// The path register, kept masked to its width.
    reg: Vec<u64>,
    reg_mask: Vec<u64>,
    /// Bits contributed per control transfer (the `q` parameter).
    bpt: Vec<u64>,
    bpt_mask: Vec<u64>,
    row_mask: Vec<u64>,
    col_shift: Vec<u64>,
    col_mask: Vec<u64>,
    base: Vec<u64>,
    conflicts: Vec<u64>,
    mispredictions: Vec<u64>,
    arena: Vec<u64>,
}

impl PathGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        let sizes: Vec<u64> = specs.iter().map(|s| s.plan.cells()).collect();
        let (bases, arena_len) = place_regions(&sizes);
        let lanes = specs.len();
        let mut group = PathGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            reg: vec![0; lanes],
            reg_mask: Vec::with_capacity(lanes),
            bpt: Vec::with_capacity(lanes),
            bpt_mask: Vec::with_capacity(lanes),
            row_mask: Vec::with_capacity(lanes),
            col_shift: Vec::with_capacity(lanes),
            col_mask: Vec::with_capacity(lanes),
            base: bases,
            conflicts: vec![0; lanes],
            mispredictions: vec![0; lanes],
            arena: fresh_arena(arena_len),
        };
        for spec in specs {
            let read = spec.plan.reads[0];
            let bits_per_target = match spec.plan.level1 {
                Level1Read::PathHistory { bits_per_target } => bits_per_target,
                ref other => unreachable!("path group from {other:?}"),
            };
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            // A zero-width register is inert: the mask pins it to
            // zero, matching the scalar push's width-0 no-op.
            group.reg_mask.push(wide_low_mask(spec.plan.history_bits));
            group.bpt.push(u64::from(bits_per_target));
            group.bpt_mask.push(wide_low_mask(bits_per_target));
            group.row_mask.push(wide_low_mask(read.row_bits));
            group.col_shift.push(u64::from(read.col_bits));
            group.col_mask.push(wide_low_mask(read.col_bits));
        }
        group
    }

    /// Walks the per-record event column (`(dest_word << 1) |
    /// is_conditional`) with a cursor into the dense conditional
    /// stream: conditionals read-modify-write their counter before
    /// the register shifts in their destination; every record shifts.
    fn replay(&mut self, stream: &[u64], events: &[u64], seen: u64, warmup: u64) {
        for lane in 0..self.indices.len() {
            let reg_mask = self.reg_mask[lane];
            let bpt = self.bpt[lane];
            let bpt_mask = self.bpt_mask[lane];
            let row_mask = self.row_mask[lane];
            let col_shift = self.col_shift[lane];
            let col_mask = self.col_mask[lane];
            let base = self.base[lane];
            let mut reg = self.reg[lane];
            let (mut conflicts, mut wrong) = (0u64, 0u64);
            let arena = self.arena.as_mut_slice();
            let mask = arena.len() - 1;
            let mut ci = 0usize;
            for &event in events {
                if event & 1 == 1 {
                    let packed = stream[ci];
                    let scored = (seen + ci as u64 >= warmup) as u64;
                    ci += 1;
                    let taken = packed & 1;
                    let word = packed >> 3;
                    let tag = (packed >> 1) & cell::EMPTY_OWNER;
                    let idx = ((reg & row_mask) << col_shift) | (word & col_mask);
                    let slot = ((base | idx) as usize) & mask;
                    let cell_word = arena[slot];
                    let owner = cell_word >> 2;
                    let bits = cell_word & 0b11;
                    conflicts += ((owner != cell::EMPTY_OWNER) & (owner != tag)) as u64;
                    wrong += scored & ((bits >= 2) as u64 ^ taken);
                    let inc = ((bits < 3) as u64) & taken;
                    let dec = ((bits > 0) as u64) & (1 - taken);
                    arena[slot] = (tag << 2) | (bits + inc - dec);
                }
                reg = ((reg << bpt) | ((event >> 1) & bpt_mask)) & reg_mask;
            }
            debug_assert_eq!(ci, stream.len());
            self.reg[lane] = reg;
            self.conflicts[lane] += conflicts;
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, seen: u64, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: Some(AliasStats {
                    accesses: seen,
                    conflicts: self.conflicts[lane],
                    harmless_conflicts: 0,
                }),
                bht: None,
            });
        }
    }
}

/// A lane group for [`PlanKind::LastOutcome`]: LastTime's degenerate
/// one-bit table, predicting whatever outcome the indexed entry last
/// stored. No shared-arena cells (there are no counters to pack and
/// no owner tags to account) — each lane is a flat byte-per-entry
/// table, updated with a blind store so no read-modify-write chain
/// serializes the walk.
#[derive(Debug)]
struct LastTimeGroup {
    indices: Vec<usize>,
    names: Vec<String>,
    state_bits: Vec<u64>,
    addr_mask: Vec<u64>,
    /// Per-lane last-outcome table, one byte per entry (0 =
    /// not-taken, the initial state, 1 = taken).
    table: Vec<Vec<u8>>,
    mispredictions: Vec<u64>,
}

impl LastTimeGroup {
    fn new(specs: Vec<PlanSpec>) -> Self {
        debug_assert!(!specs.is_empty() && specs.len() <= cell::PACKED_LANES);
        let lanes = specs.len();
        let mut group = LastTimeGroup {
            indices: Vec::with_capacity(lanes),
            names: Vec::with_capacity(lanes),
            state_bits: Vec::with_capacity(lanes),
            addr_mask: Vec::with_capacity(lanes),
            table: Vec::with_capacity(lanes),
            mispredictions: vec![0; lanes],
        };
        for spec in specs {
            let read = spec.plan.reads[0];
            group.indices.push(spec.index);
            group.names.push(spec.name);
            group.state_bits.push(spec.state_bits);
            group.addr_mask.push(wide_low_mask(read.col_bits));
            group.table.push(vec![0u8; read.cells() as usize]);
        }
        group
    }

    fn replay(&mut self, stream: &[u64], seen: u64, warmup: u64) {
        // Split the chunk at the warmup boundary once instead of
        // testing `seen >= warmup` per record: warmup records update
        // the table without scoring, scored records pay one load +
        // xor + blind store each. Lanes walk the stream in quads so
        // the shared record decode amortizes and same-entry
        // store-to-load chains from different lanes overlap.
        let boundary = warmup.saturating_sub(seen).min(stream.len() as u64) as usize;
        let (unscored, rest) = stream.split_at(boundary);
        let mut lane = 0;
        while lane + 8 <= self.indices.len() {
            let masks: [u64; 8] = std::array::from_fn(|k| self.addr_mask[lane + k]);
            let mut wrong = [0u64; 8];
            if let [t0, t1, t2, t3, t4, t5, t6, t7] = &mut self.table[lane..lane + 8] {
                let tables: [&mut [u8]; 8] = [
                    &mut t0[..=(masks[0] as usize)],
                    &mut t1[..=(masks[1] as usize)],
                    &mut t2[..=(masks[2] as usize)],
                    &mut t3[..=(masks[3] as usize)],
                    &mut t4[..=(masks[4] as usize)],
                    &mut t5[..=(masks[5] as usize)],
                    &mut t6[..=(masks[6] as usize)],
                    &mut t7[..=(masks[7] as usize)],
                ];
                for &packed in unscored {
                    let taken = (packed & 1) as u8;
                    let key = packed >> 3;
                    for k in 0..8 {
                        tables[k][(key & masks[k]) as usize] = taken;
                    }
                }
                for &packed in rest {
                    let taken = (packed & 1) as u8;
                    let key = packed >> 3;
                    for k in 0..8 {
                        let idx = (key & masks[k]) as usize;
                        wrong[k] += (tables[k][idx] ^ taken) as u64;
                        tables[k][idx] = taken;
                    }
                }
            }
            for (k, wrong) in wrong.into_iter().enumerate() {
                self.mispredictions[lane + k] += wrong;
            }
            lane += 8;
        }
        while lane + 4 <= self.indices.len() {
            let [m0, m1, m2, m3] = [
                self.addr_mask[lane],
                self.addr_mask[lane + 1],
                self.addr_mask[lane + 2],
                self.addr_mask[lane + 3],
            ];
            let mut wrong = [0u64; 4];
            if let [t0, t1, t2, t3] = &mut self.table[lane..lane + 4] {
                // Reslice each table to exactly `mask + 1` entries (its
                // full length) so the masked index is provably in
                // bounds and the inner loops stay check-free.
                let (t0, t1, t2, t3) = (
                    &mut t0[..=(m0 as usize)],
                    &mut t1[..=(m1 as usize)],
                    &mut t2[..=(m2 as usize)],
                    &mut t3[..=(m3 as usize)],
                );
                for &packed in unscored {
                    let taken = (packed & 1) as u8;
                    let key = packed >> 3;
                    t0[(key & m0) as usize] = taken;
                    t1[(key & m1) as usize] = taken;
                    t2[(key & m2) as usize] = taken;
                    t3[(key & m3) as usize] = taken;
                }
                for &packed in rest {
                    let taken = (packed & 1) as u8;
                    let key = packed >> 3;
                    let (i0, i1, i2, i3) = (
                        (key & m0) as usize,
                        (key & m1) as usize,
                        (key & m2) as usize,
                        (key & m3) as usize,
                    );
                    wrong[0] += (t0[i0] ^ taken) as u64;
                    t0[i0] = taken;
                    wrong[1] += (t1[i1] ^ taken) as u64;
                    t1[i1] = taken;
                    wrong[2] += (t2[i2] ^ taken) as u64;
                    t2[i2] = taken;
                    wrong[3] += (t3[i3] ^ taken) as u64;
                    t3[i3] = taken;
                }
            }
            for (k, wrong) in wrong.into_iter().enumerate() {
                self.mispredictions[lane + k] += wrong;
            }
            lane += 4;
        }
        for lane in lane..self.indices.len() {
            let addr_mask = self.addr_mask[lane];
            let table = &mut self.table[lane][..=(addr_mask as usize)];
            let mut wrong = 0u64;
            for &packed in unscored {
                table[((packed >> 3) & addr_mask) as usize] = (packed & 1) as u8;
            }
            for &packed in rest {
                let taken = (packed & 1) as u8;
                let idx = ((packed >> 3) & addr_mask) as usize;
                wrong += (table[idx] ^ taken) as u64;
                table[idx] = taken;
            }
            self.mispredictions[lane] += wrong;
        }
    }

    fn finish(self, scored: u64, results: &mut [Option<SimResult>]) {
        for lane in 0..self.indices.len() {
            results[self.indices[lane]] = Some(SimResult {
                predictor: self.names[lane].clone(),
                state_bits: self.state_bits[lane],
                conditionals: scored,
                mispredictions: self.mispredictions[lane],
                alias: None,
                bht: None,
            });
        }
    }
}

/// A set of predictor lanes advancing together through one chunk
/// stream, each on its fastest applicable dispatch tier.
///
/// Build one over a configuration list, feed it chunks in stream
/// order with [`replay_chunk`](LaneSet::replay_chunk), and close it
/// with [`finish`](LaneSet::finish); results come back in
/// configuration order and are bit-identical to running
/// [`Simulator::run`] per configuration (the workspace determinism
/// and multilane suites enforce this).
///
/// # Examples
///
/// ```
/// use bpred_core::PredictorConfig;
/// use bpred_sim::{LaneSet, Simulator};
/// use bpred_trace::{BranchRecord, Outcome, TraceChunk};
///
/// let chunk: TraceChunk = (0..100)
///     .map(|i| BranchRecord::conditional(0x40 + 4 * (i % 8), 0x20, Outcome::from(i % 3 != 0)))
///     .collect();
/// let configs = [
///     PredictorConfig::AlwaysTaken,
///     PredictorConfig::Gshare { history_bits: 6, col_bits: 2 },
/// ];
/// let mut lanes = LaneSet::new(&configs, Simulator::new());
/// lanes.replay_chunk(&chunk);
/// let results = lanes.finish();
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].conditionals, 100);
/// ```
#[derive(Debug)]
pub struct LaneSet {
    len: usize,
    warmup: u64,
    /// Conditionals fed so far (the shared table-access count).
    seen: u64,
    /// Conditionals scored so far (past the warmup prefix).
    scored: u64,
    groups: Vec<GlobalGroup>,
    pas_groups: Vec<TwoLevelGroup<PerfectRows>>,
    finite_groups: Vec<TwoLevelGroup<FiniteRows>>,
    sas_groups: Vec<TwoLevelGroup<SetRows>>,
    agree_groups: Vec<AgreeGroup>,
    bimode_groups: Vec<BiModeGroup>,
    gskew_groups: Vec<GskewGroup>,
    tournament_groups: Vec<TournamentGroup>,
    yags_groups: Vec<TaggedGroup>,
    path_groups: Vec<PathGroup>,
    last_groups: Vec<LastTimeGroup>,
    statics: Vec<StaticUnit>,
    scalars: Vec<(usize, Lane)>,
    /// Per-chunk scratch: the dense conditional stream shared by every
    /// lane group (`(pc << 1) | taken`, non-conditionals dropped).
    conditionals: Vec<u64>,
    /// Per-chunk scratch for path lanes: one element per record,
    /// `(dest_word << 1) | is_conditional` — the resolved destination
    /// word every control transfer shifts into a path register.
    events: Vec<u64>,
    /// Persistent dense branch ids (first-appearance order), shared by
    /// the perfect-BHT row source and the agree bias column.
    id_map: HashMap<u64, u32>,
    /// Per-chunk scratch: `conditionals[i]`'s dense id.
    ids: Vec<u32>,
    /// Shared agree bias latch per dense id: 0 unset (reads as taken,
    /// the scalar default), 1 latched taken, 2 latched not-taken.
    bias: Vec<u8>,
    /// Per-chunk scratch: pre-latch (bit 0) / post-latch (bit 1)
    /// bias-is-taken flags per conditional.
    bias_bits: Vec<u8>,
    needs_ids: bool,
    needs_bias: bool,
    needs_events: bool,
}

impl LaneSet {
    /// Partitions `configs` into dispatch tiers (honouring
    /// `BPRED_FORCE_SCALAR`) and builds the lanes. Scoring follows
    /// `simulator`'s warmup policy, shared by every tier.
    pub fn new(configs: &[PredictorConfig], simulator: Simulator) -> Self {
        let force_scalar = force_scalar();
        let step = group_step();
        let mut specs: Vec<GroupSpec> = Vec::new();
        let mut pas_specs: Vec<PlanSpec> = Vec::new();
        let mut finite_specs: Vec<PlanSpec> = Vec::new();
        let mut sas_specs: Vec<PlanSpec> = Vec::new();
        let mut agree_specs: Vec<PlanSpec> = Vec::new();
        let mut bimode_specs: Vec<PlanSpec> = Vec::new();
        let mut gskew_specs: Vec<PlanSpec> = Vec::new();
        let mut tournament_specs: Vec<PlanSpec> = Vec::new();
        let mut yags_specs: Vec<PlanSpec> = Vec::new();
        let mut path_specs: Vec<PlanSpec> = Vec::new();
        let mut last_specs: Vec<PlanSpec> = Vec::new();
        let mut statics = Vec::new();
        let mut scalars = Vec::new();
        for (index, config) in configs.iter().enumerate() {
            let scheme = match config {
                _ if force_scalar => None,
                PredictorConfig::AlwaysTaken => Some(StaticScheme::AlwaysTaken),
                PredictorConfig::AlwaysNotTaken => Some(StaticScheme::AlwaysNotTaken),
                PredictorConfig::Btfn => Some(StaticScheme::Btfn),
                _ => None,
            };
            if let Some(scheme) = scheme {
                statics.push(StaticUnit {
                    index,
                    scheme,
                    mispredictions: 0,
                });
                continue;
            }
            let plan = if force_scalar {
                None
            } else {
                WalkPlan::of(config)
            };
            match plan {
                Some(plan) => {
                    // Name and state cost come from the kernel itself
                    // — the single source of the describe() rules —
                    // captured once at build and the kernel dropped.
                    let kernel = config.kernel();
                    let (name, state_bits) = (kernel.name(), kernel.state_bits());
                    if plan.kind() == PlanKind::Direct {
                        let read = plan.reads[0];
                        specs.push(GroupSpec {
                            index,
                            name,
                            state_bits,
                            row_bits: read.row_bits,
                            col_bits: read.col_bits,
                            xor: matches!(read.index, IndexFn::Unified { xor: true }),
                            history: plan.level1 == Level1Read::GlobalHistory,
                        });
                    } else {
                        let bucket = match plan.kind() {
                            PlanKind::PerAddressPerfect => &mut pas_specs,
                            PlanKind::PerAddressFinite => &mut finite_specs,
                            PlanKind::PerSet => &mut sas_specs,
                            PlanKind::AgreeBias => &mut agree_specs,
                            PlanKind::BiModeChoice => &mut bimode_specs,
                            PlanKind::SkewedMajority => &mut gskew_specs,
                            PlanKind::TournamentChooser => &mut tournament_specs,
                            PlanKind::TaggedChoice => &mut yags_specs,
                            PlanKind::PathHistory => &mut path_specs,
                            PlanKind::LastOutcome => &mut last_specs,
                            PlanKind::Direct => unreachable!(),
                        };
                        bucket.push(PlanSpec {
                            index,
                            name,
                            state_bits,
                            plan,
                        });
                    }
                }
                None => scalars.push((index, ReplayCore::from_config(config, simulator))),
            }
        }
        let prefetch = group_prefetch();
        // Row-blocked lane order (see `row_block_plans`): sort every
        // bucket by descending footprint before the group split so
        // iteration order matches arena placement order. The Direct
        // specs get the same treatment with `GlobalGroup::new`'s own
        // sort key, making its internal re-sort a no-op.
        specs.sort_by(|a, b| b.cells().cmp(&a.cells()).then(a.index.cmp(&b.index)));
        row_block_plans(&mut pas_specs);
        row_block_plans(&mut finite_specs);
        row_block_plans(&mut sas_specs);
        row_block_plans(&mut agree_specs);
        row_block_plans(&mut bimode_specs);
        row_block_plans(&mut gskew_specs);
        row_block_plans(&mut tournament_specs);
        row_block_plans(&mut yags_specs);
        row_block_plans(&mut path_specs);
        row_block_plans(&mut last_specs);
        let groups = split_at_lane_limit(specs)
            .into_iter()
            .map(|chunk| GlobalGroup::new(chunk, step, prefetch))
            .collect();
        let pas_groups: Vec<_> = split_at_lane_limit(pas_specs)
            .into_iter()
            .map(|chunk| {
                let rows = PerfectRows::new(&chunk);
                TwoLevelGroup::new(chunk, rows)
            })
            .collect();
        let finite_groups = split_at_lane_limit(finite_specs)
            .into_iter()
            .map(|chunk| {
                let rows = FiniteRows::new(&chunk);
                TwoLevelGroup::new(chunk, rows)
            })
            .collect();
        let sas_groups = split_at_lane_limit(sas_specs)
            .into_iter()
            .map(|chunk| {
                let rows = SetRows::new(&chunk);
                TwoLevelGroup::new(chunk, rows)
            })
            .collect();
        let agree_groups: Vec<_> = split_at_lane_limit(agree_specs)
            .into_iter()
            .map(AgreeGroup::new)
            .collect();
        let bimode_groups = split_at_lane_limit(bimode_specs)
            .into_iter()
            .map(BiModeGroup::new)
            .collect();
        let gskew_groups = split_at_lane_limit(gskew_specs)
            .into_iter()
            .map(GskewGroup::new)
            .collect();
        let tournament_groups = split_at_lane_limit(tournament_specs)
            .into_iter()
            .map(TournamentGroup::new)
            .collect();
        let yags_groups = split_at_lane_limit(yags_specs)
            .into_iter()
            .map(TaggedGroup::new)
            .collect();
        let path_groups: Vec<_> = split_at_lane_limit(path_specs)
            .into_iter()
            .map(PathGroup::new)
            .collect();
        let last_groups = split_at_lane_limit(last_specs)
            .into_iter()
            .map(LastTimeGroup::new)
            .collect();
        let needs_ids = !pas_groups.is_empty() || !agree_groups.is_empty();
        let needs_bias = !agree_groups.is_empty();
        let needs_events = !path_groups.is_empty();
        LaneSet {
            len: configs.len(),
            warmup: simulator.warmup() as u64,
            seen: 0,
            scored: 0,
            groups,
            pas_groups,
            finite_groups,
            sas_groups,
            agree_groups,
            bimode_groups,
            gskew_groups,
            tournament_groups,
            yags_groups,
            path_groups,
            last_groups,
            statics,
            scalars,
            conditionals: Vec::new(),
            events: Vec::new(),
            id_map: HashMap::new(),
            ids: Vec::new(),
            bias: Vec::new(),
            bias_bits: Vec::new(),
            needs_ids,
            needs_bias,
            needs_events,
        }
    }

    /// Number of lanes (configurations) in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lanes on the scalar fallback tier.
    pub fn scalar_lanes(&self) -> usize {
        self.scalars.len()
    }

    /// Lane counts per dispatch tier / plan family, aligned with
    /// [`LANE_TIER_LABELS`] — the raw material of the
    /// `bpred_replay_group_lanes{plan=...}` gauge.
    pub fn lane_tier_counts(&self) -> [u64; LANE_TIER_LABELS.len()] {
        fn lanes_of<T>(groups: &[T], len: impl Fn(&T) -> usize) -> u64 {
            groups.iter().map(len).sum::<usize>() as u64
        }
        [
            lanes_of(&self.groups, |g| g.indices.len()),
            lanes_of(&self.pas_groups, |g| g.indices.len()),
            lanes_of(&self.finite_groups, |g| g.indices.len()),
            lanes_of(&self.sas_groups, |g| g.indices.len()),
            lanes_of(&self.agree_groups, |g| g.indices.len()),
            lanes_of(&self.bimode_groups, |g| g.indices.len()),
            lanes_of(&self.gskew_groups, |g| g.indices.len()),
            lanes_of(&self.tournament_groups, |g| g.indices.len()),
            lanes_of(&self.yags_groups, |g| g.indices.len()),
            lanes_of(&self.path_groups, |g| g.indices.len()),
            lanes_of(&self.last_groups, |g| g.indices.len()),
            self.statics.len() as u64,
            self.scalars.len() as u64,
        ]
    }

    /// Number of single-read groups whose footprint gate resolved the
    /// two-phase prefetch form on (see `BPRED_GROUP_PREFETCH`).
    pub fn prefetch_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.prefetch).count()
    }

    /// Feeds one chunk through every lane. Chunks must arrive in
    /// stream order; record semantics per lane are identical to
    /// [`ReplayCore::feed`] over the same records.
    pub fn replay_chunk(&mut self, chunk: &TraceChunk) {
        let (conditionals, taken) = conditional_counts(chunk);
        let any_groups = !self.groups.is_empty()
            || !self.pas_groups.is_empty()
            || !self.finite_groups.is_empty()
            || !self.sas_groups.is_empty()
            || !self.agree_groups.is_empty()
            || !self.bimode_groups.is_empty()
            || !self.gskew_groups.is_empty()
            || !self.tournament_groups.is_empty()
            || !self.yags_groups.is_empty()
            || !self.path_groups.is_empty()
            || !self.last_groups.is_empty();
        if any_groups {
            collect_conditionals(chunk, &mut self.conditionals);
            if self.needs_events {
                // Path lanes shift on every record: build the shared
                // per-record event column once — the destination a
                // path register would hash (conditionals resolve to
                // target or fall-through by outcome, everything else
                // to its target) plus the is-conditional flag.
                self.events.clear();
                let pcs = chunk.pcs();
                let targets = chunk.targets();
                let words = chunk.meta_words();
                for i in 0..pcs.len() {
                    let bits = (words[i / TraceChunk::META_RECORDS_PER_WORD]
                        >> (TraceChunk::META_BITS_PER_RECORD
                            * (i % TraceChunk::META_RECORDS_PER_WORD)))
                        & 0xF;
                    let cond = (bits & 0b1110 == 0) as u64;
                    let fallthrough = cond & (1 - (bits & 1));
                    let dest = if fallthrough == 1 {
                        pcs[i].wrapping_add(4)
                    } else {
                        targets[i]
                    };
                    self.events.push(((dest >> 2) << 1) | cond);
                }
            }
            if self.needs_ids {
                // One shared pre-pass: dense ids in first-appearance
                // order (serving the perfect-BHT allocation and the
                // agree bias store) and, when agree lanes exist, the
                // record-major bias latch column.
                self.ids.clear();
                self.bias_bits.clear();
                for &packed in &self.conditionals {
                    let pc = packed >> 1;
                    let next = self.id_map.len() as u32;
                    let id = *self.id_map.entry(pc).or_insert(next);
                    self.ids.push(id);
                    if self.needs_bias {
                        let taken = (packed & 1) as u8;
                        if id as usize == self.bias.len() {
                            self.bias.push(0);
                        }
                        let b = &mut self.bias[id as usize];
                        let pre = (*b != 2) as u8;
                        if *b == 0 {
                            *b = 2 - taken;
                        }
                        let post = (*b != 2) as u8;
                        self.bias_bits.push(pre | (post << 1));
                    }
                }
            }
            for group in &mut self.groups {
                group.replay_conditionals(&self.conditionals, self.seen, self.warmup);
            }
            for group in &mut self.pas_groups {
                group.replay(&self.conditionals, &self.ids, self.seen, self.warmup);
            }
            for group in &mut self.finite_groups {
                group.replay(&self.conditionals, &self.ids, self.seen, self.warmup);
            }
            for group in &mut self.sas_groups {
                group.replay(&self.conditionals, &self.ids, self.seen, self.warmup);
            }
            for group in &mut self.agree_groups {
                group.replay(&self.conditionals, &self.bias_bits, self.seen, self.warmup);
            }
            for group in &mut self.bimode_groups {
                group.replay(&self.conditionals, self.seen, self.warmup);
            }
            for group in &mut self.gskew_groups {
                group.replay(&self.conditionals, self.seen, self.warmup);
            }
            for group in &mut self.tournament_groups {
                group.replay(&self.conditionals, self.seen, self.warmup);
            }
            for group in &mut self.yags_groups {
                group.replay(&self.conditionals, self.seen, self.warmup);
            }
            for group in &mut self.path_groups {
                group.replay(&self.conditionals, &self.events, self.seen, self.warmup);
            }
            for group in &mut self.last_groups {
                group.replay(&self.conditionals, self.seen, self.warmup);
            }
        }
        for unit in &mut self.statics {
            unit.replay_chunk(chunk, self.seen, self.warmup, conditionals, taken);
        }
        for (_, lane) in &mut self.scalars {
            lane.replay_chunk_dispatched(chunk);
        }
        let unscored = conditionals.min(self.warmup.saturating_sub(self.seen));
        self.scored += conditionals - unscored;
        self.seen += conditionals;
    }

    /// Closes every lane into its [`SimResult`], in configuration
    /// order.
    pub fn finish(self) -> Vec<SimResult> {
        let mut results: Vec<Option<SimResult>> = (0..self.len).map(|_| None).collect();
        let distinct = self.id_map.len() as u64;
        for group in self.groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.pas_groups {
            group.finish(self.seen, self.scored, distinct, &mut results);
        }
        for group in self.finite_groups {
            group.finish(self.seen, self.scored, distinct, &mut results);
        }
        for group in self.sas_groups {
            group.finish(self.seen, self.scored, distinct, &mut results);
        }
        for group in self.agree_groups {
            group.finish(self.seen, self.scored, distinct, &mut results);
        }
        for group in self.bimode_groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.gskew_groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.tournament_groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.yags_groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.path_groups {
            group.finish(self.seen, self.scored, &mut results);
        }
        for group in self.last_groups {
            group.finish(self.scored, &mut results);
        }
        for unit in self.statics {
            let slot = unit.index;
            results[slot] = Some(unit.finish(self.scored));
        }
        for (index, lane) in self.scalars {
            results[index] = Some(lane.finish());
        }
        results
            .into_iter()
            .map(|r| r.expect("every lane finished"))
            .collect()
    }
}

/// Replays `source` against every configuration through the tiered
/// multilane kernels, one decode pass over the stream. Results come
/// back in configuration order, bit-identical to [`Simulator::run`]
/// per configuration.
pub fn replay_multilane<S>(
    configs: &[PredictorConfig],
    source: &S,
    simulator: Simulator,
) -> Vec<SimResult>
where
    S: TraceSource + ?Sized,
{
    let mut lanes = LaneSet::new(configs, simulator);
    let mut feeder = source.chunk_feeder();
    let mut chunk = TraceChunk::with_capacity(TraceChunk::DEFAULT_LEN);
    while feeder.refill(&mut chunk, TraceChunk::DEFAULT_LEN) > 0 {
        lanes.replay_chunk(&chunk);
    }
    lanes.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::{BranchRecord, Trace};

    fn trace(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n as u64 {
            if i % 17 == 0 {
                t.push(BranchRecord::jump(0x900 + 4 * (i % 5), 0x40));
            }
            t.push(BranchRecord::conditional(
                0x400 + 4 * (i % 23),
                if i % 4 == 0 { 0x100 } else { 0x900 },
                Outcome::from((i * 7) % 5 < 3),
            ));
        }
        t
    }

    fn grouped_configs() -> Vec<PredictorConfig> {
        vec![
            PredictorConfig::AlwaysTaken,
            PredictorConfig::AlwaysNotTaken,
            PredictorConfig::Btfn,
            PredictorConfig::AddressIndexed { addr_bits: 4 },
            PredictorConfig::AddressIndexed { addr_bits: 0 },
            PredictorConfig::Gas {
                history_bits: 0,
                col_bits: 3,
            },
            PredictorConfig::Gas {
                history_bits: 5,
                col_bits: 0,
            },
            PredictorConfig::Gas {
                history_bits: 4,
                col_bits: 3,
            },
            PredictorConfig::Gshare {
                history_bits: 0,
                col_bits: 4,
            },
            PredictorConfig::Gshare {
                history_bits: 6,
                col_bits: 2,
            },
            PredictorConfig::Gshare {
                history_bits: 8,
                col_bits: 0,
            },
        ]
    }

    fn assert_matches_serial(configs: &[PredictorConfig], t: &Trace, simulator: Simulator) {
        let multilane = replay_multilane(configs, t, simulator);
        for (config, got) in configs.iter().zip(&multilane) {
            let want = simulator.run(&mut config.kernel(), t);
            assert_eq!(&want, got, "{config}");
        }
    }

    #[test]
    fn grouped_tiers_match_serial_replay() {
        assert_matches_serial(&grouped_configs(), &trace(3_000), Simulator::new());
    }

    #[test]
    fn warmup_is_honoured_on_every_tier() {
        for warmup in [1, 100, 2_999, 3_000, 10_000] {
            assert_matches_serial(
                &grouped_configs(),
                &trace(3_000),
                Simulator::with_warmup(warmup),
            );
        }
    }

    #[test]
    fn scalar_tier_configs_match_serial_replay() {
        // The families that used to pin lanes to the scalar fallback
        // (multi-structure schemes) now all group; the mix still
        // replays bit-identically alongside every other tier.
        let configs = vec![
            PredictorConfig::LastTime { addr_bits: 4 },
            PredictorConfig::Path {
                row_bits: 5,
                col_bits: 2,
                bits_per_target: 2,
            },
            PredictorConfig::Tournament {
                addr_bits: 4,
                history_bits: 4,
                chooser_bits: 4,
            },
            PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 1,
            },
        ];
        let lanes = LaneSet::new(&configs, Simulator::new());
        if !force_scalar() {
            assert_eq!(lanes.scalar_lanes(), 0);
        }
        assert_matches_serial(&configs, &trace(2_000), Simulator::new());
    }

    #[test]
    fn zero_bit_gskew_banks_stay_on_the_scalar_tier() {
        // The one remaining plan-less shape: a zero-bit gskew bank
        // would need a 64-bit shift in the skew hash, so it keeps the
        // scalar fallback alive (bucket-level check only — the scalar
        // oracle itself rejects the degenerate shift in debug builds).
        let configs = vec![
            PredictorConfig::Gskew {
                history_bits: 4,
                bank_bits: 0,
            },
            PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 1,
            },
        ];
        let lanes = LaneSet::new(&configs, Simulator::new());
        assert_eq!(lanes.scalar_lanes(), if force_scalar() { 2 } else { 1 });
    }

    #[test]
    fn groups_split_at_the_packed_lane_limit() {
        // More groupable lanes than fit one packed word.
        let configs: Vec<PredictorConfig> = (0..(cell::PACKED_LANES as u32 + 9))
            .map(|i| PredictorConfig::Gshare {
                history_bits: 2 + (i % 7),
                col_bits: i % 4,
            })
            .collect();
        let lanes = LaneSet::new(&configs, Simulator::new());
        if force_scalar() {
            // The CI matrix re-runs this suite under
            // BPRED_FORCE_SCALAR=1, where every lane is scalar-tier.
            assert!(lanes.groups.is_empty());
            assert_eq!(lanes.scalar_lanes(), configs.len());
        } else {
            assert_eq!(lanes.groups.len(), 2);
            assert_eq!(lanes.scalar_lanes(), 0);
        }
        assert_matches_serial(&configs, &trace(1_500), Simulator::new());
    }

    #[test]
    fn duplicate_configs_get_independent_lanes() {
        let configs = vec![
            PredictorConfig::Gshare {
                history_bits: 5,
                col_bits: 2,
            };
            3
        ];
        let results = replay_multilane(&configs, &trace(1_000), Simulator::new());
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    /// The table-walk-plan families (everything groupable beyond the
    /// single-read Direct shape), with degenerate shapes included.
    fn plan_configs() -> Vec<PredictorConfig> {
        vec![
            PredictorConfig::PasInfinite {
                history_bits: 5,
                col_bits: 2,
            },
            PredictorConfig::PasInfinite {
                history_bits: 1,
                col_bits: 0,
            },
            PredictorConfig::PasFinite {
                history_bits: 5,
                col_bits: 2,
                entries: 64,
                ways: 2,
            },
            PredictorConfig::PasFinite {
                history_bits: 3,
                col_bits: 1,
                entries: 8,
                ways: 8,
            },
            PredictorConfig::Sas {
                history_bits: 5,
                set_bits: 3,
                col_bits: 2,
            },
            PredictorConfig::Sas {
                history_bits: 1,
                set_bits: 0,
                col_bits: 0,
            },
            PredictorConfig::Agree {
                history_bits: 6,
                index_bits: 8,
            },
            PredictorConfig::Agree {
                history_bits: 0,
                index_bits: 3,
            },
            PredictorConfig::BiMode {
                history_bits: 6,
                direction_bits: 7,
                choice_bits: 7,
            },
            PredictorConfig::BiMode {
                history_bits: 0,
                direction_bits: 2,
                choice_bits: 0,
            },
            PredictorConfig::Gskew {
                history_bits: 6,
                bank_bits: 7,
            },
            PredictorConfig::Gskew {
                history_bits: 40,
                bank_bits: 9,
            },
            PredictorConfig::Tournament {
                addr_bits: 5,
                history_bits: 6,
                chooser_bits: 4,
            },
            PredictorConfig::Tournament {
                addr_bits: 0,
                history_bits: 0,
                chooser_bits: 0,
            },
            PredictorConfig::Yags {
                choice_bits: 6,
                cache_bits: 5,
                tag_bits: 4,
            },
            PredictorConfig::Yags {
                choice_bits: 0,
                cache_bits: 0,
                tag_bits: 1,
            },
            PredictorConfig::Path {
                row_bits: 6,
                col_bits: 2,
                bits_per_target: 3,
            },
            PredictorConfig::Path {
                row_bits: 0,
                col_bits: 2,
                bits_per_target: 1,
            },
            PredictorConfig::LastTime { addr_bits: 5 },
            PredictorConfig::LastTime { addr_bits: 0 },
        ]
    }

    #[test]
    fn plan_families_replay_on_the_grouped_tier() {
        let configs = plan_configs();
        let lanes = LaneSet::new(&configs, Simulator::new());
        if force_scalar() {
            assert_eq!(lanes.scalar_lanes(), configs.len());
        } else {
            // Every family must land on its plan group, not the
            // scalar fallback.
            assert_eq!(lanes.scalar_lanes(), 0);
            assert_eq!(lanes.pas_groups.len(), 1);
            assert_eq!(lanes.finite_groups.len(), 1);
            assert_eq!(lanes.sas_groups.len(), 1);
            assert_eq!(lanes.agree_groups.len(), 1);
            assert_eq!(lanes.bimode_groups.len(), 1);
            assert_eq!(lanes.gskew_groups.len(), 1);
            assert_eq!(lanes.tournament_groups.len(), 1);
            assert_eq!(lanes.yags_groups.len(), 1);
            assert_eq!(lanes.path_groups.len(), 1);
            assert_eq!(lanes.last_groups.len(), 1);
        }
        assert_matches_serial(&configs, &trace(3_000), Simulator::new());
    }

    #[test]
    fn plan_families_honour_warmup() {
        for warmup in [1, 100, 2_999, 3_000] {
            assert_matches_serial(
                &plan_configs(),
                &trace(3_000),
                Simulator::with_warmup(warmup),
            );
        }
    }

    #[test]
    fn gskew_zero_bank_bits_stays_on_the_scalar_tier() {
        // A zero-bit bank has no plan (the skew hash would shift by
        // 64); it must classify to the scalar fallback, not a group.
        let configs = vec![PredictorConfig::Gskew {
            history_bits: 4,
            bank_bits: 0,
        }];
        let lanes = LaneSet::new(&configs, Simulator::new());
        assert_eq!(lanes.scalar_lanes(), 1);
        assert!(lanes.gskew_groups.is_empty());
    }

    #[test]
    fn duplicate_plan_configs_get_independent_lanes() {
        let mut configs = vec![
            PredictorConfig::Agree {
                history_bits: 5,
                index_bits: 7,
            };
            3
        ];
        configs.extend(vec![
            PredictorConfig::PasInfinite {
                history_bits: 4,
                col_bits: 1,
            };
            3
        ]);
        let results = replay_multilane(&configs, &trace(1_200), Simulator::new());
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[3], results[4]);
        assert_eq!(results[4], results[5]);
    }

    #[test]
    fn duplicate_multi_structure_configs_get_independent_lanes() {
        let mut configs = vec![
            PredictorConfig::Yags {
                choice_bits: 5,
                cache_bits: 4,
                tag_bits: 3,
            };
            3
        ];
        configs.extend(vec![
            PredictorConfig::Tournament {
                addr_bits: 4,
                history_bits: 5,
                chooser_bits: 3,
            };
            3
        ]);
        configs.extend(vec![
            PredictorConfig::Path {
                row_bits: 4,
                col_bits: 1,
                bits_per_target: 2,
            };
            3
        ]);
        let results = replay_multilane(&configs, &trace(1_200), Simulator::new());
        for k in [0, 3, 6] {
            assert_eq!(results[k], results[k + 1]);
            assert_eq!(results[k + 1], results[k + 2]);
        }
    }

    #[test]
    fn lane_tier_counts_label_every_lane() {
        let mut configs = plan_configs();
        configs.extend(grouped_configs());
        let lanes = LaneSet::new(&configs, Simulator::new());
        let counts = lanes.lane_tier_counts();
        assert_eq!(counts.iter().sum::<u64>() as usize, configs.len());
        let of = |label: &str| {
            counts[LANE_TIER_LABELS
                .iter()
                .position(|&l| l == label)
                .expect("known label")]
        };
        if force_scalar() {
            assert_eq!(of("scalar") as usize, configs.len());
            assert_eq!(of("static"), 0, "statics force-scalar too");
        } else {
            assert_eq!(of("scalar"), 0);
            assert_eq!(of("static"), 3);
            for label in ["tournament", "yags", "path", "last-time"] {
                assert_eq!(of(label), 2, "{label}");
            }
        }
    }

    #[test]
    fn prefetch_auto_gates_on_arena_footprint() {
        let at = PREFETCH_SPILL_BYTES;
        assert!(!PrefetchMode::Auto.resolve(at, at));
        assert!(PrefetchMode::Auto.resolve(at + 1, at));
        assert!(PrefetchMode::On.resolve(0, at));
        assert!(!PrefetchMode::Off.resolve(u64::MAX, at));
    }

    #[test]
    fn prefetch_path_is_bit_identical() {
        // Flip the prefetch flag directly (instead of racing the env
        // var across test threads) and compare against the default
        // fused path over the same chunk stream.
        let configs = grouped_configs();
        let t = trace(2_500);
        let mut plain = LaneSet::new(&configs, Simulator::new());
        let mut prefetched = LaneSet::new(&configs, Simulator::new());
        for group in &mut prefetched.groups {
            group.prefetch = true;
        }
        for chunk in t.chunks(256) {
            plain.replay_chunk(&chunk);
            prefetched.replay_chunk(&chunk);
        }
        assert_eq!(plain.finish(), prefetched.finish());
    }

    #[test]
    fn empty_inputs_are_empty_results() {
        assert!(replay_multilane(&[], &trace(10), Simulator::new()).is_empty());
        let results = replay_multilane(&grouped_configs(), &Trace::new(), Simulator::new());
        assert!(results.iter().all(|r| r.conditionals == 0));
    }

    #[test]
    fn conditional_counts_match_record_decode() {
        let t = trace(501);
        for chunk_len in [1, 7, 16, 500, 501, 502] {
            for chunk in t.chunks(chunk_len) {
                let (cond, taken) = conditional_counts(&chunk);
                let want_cond = chunk.iter().filter(|r| r.is_conditional()).count() as u64;
                let want_taken = chunk
                    .iter()
                    .filter(|r| r.is_conditional() && r.outcome.is_taken())
                    .count() as u64;
                assert_eq!((cond, taken), (want_cond, want_taken));
            }
        }
    }
}
